"""Figure 5 — commit latency at five replicas, imbalanced workload.

One run per origin site (only that site's clients issue requests), leader of
Paxos/Paxos-bcast at CA.  Expected shape: Paxos variants are unchanged vs the
balanced workload; Clock-RSM stays close to its balanced latency thanks to
PREPAREOK/CLOCKTIME messages carrying clock promises; Mencius-bcast becomes
markedly worse because committing requires acknowledgements (with skips) from
every replica — a full round trip to the farthest one.
"""

from __future__ import annotations

from repro.bench.latency_experiments import FIVE_SITES, run_imbalanced_comparison
from repro.bench.reporting import format_latency_table
from repro.types import seconds_to_micros


def test_bench_fig5_imbalanced_five_replicas(benchmark, report_sink):
    overrides = dict(
        duration=seconds_to_micros(5.0),
        warmup=seconds_to_micros(1.0),
        clients_per_replica=10,
    )
    results = benchmark.pedantic(
        run_imbalanced_comparison,
        kwargs=dict(sites=FIVE_SITES, leader_site="CA", **overrides),
        rounds=1,
        iterations=1,
    )
    report_sink(
        "fig5_imbalanced_5",
        format_latency_table(results, FIVE_SITES, "Figure 5 (imbalanced, leader CA)"),
    )

    clock = results["clock-rsm"]
    mencius = results["mencius-bcast"]
    paxos_bcast = results["paxos-bcast"]

    for site in FIVE_SITES:
        # Mencius-bcast needs a round trip to the farthest replica; Clock-RSM
        # only needs max(majority round trip, farthest one-way), so it is
        # strictly better at every origin in this placement.
        assert clock.mean_ms(site) < mencius.mean_ms(site)
    # Clock-RSM beats Paxos-bcast at non-leader origins in most cases.
    non_leader = [s for s in FIVE_SITES if s != "CA"]
    wins = sum(1 for s in non_leader if clock.mean_ms(s) < paxos_bcast.mean_ms(s))
    assert wins >= 3
