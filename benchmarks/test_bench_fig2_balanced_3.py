"""Figure 2 — commit latency at three replicas, balanced workload.

Three replicas at CA/VA/IR.  Expected shape (paper Section VI-B1): the
three-replica placement is a special case where Paxos-bcast with the best
leader is optimal; Clock-RSM is similar or slightly (~6%) higher, and both
beat Mencius-bcast and plain Paxos at non-leader sites.
"""

from __future__ import annotations

import pytest

from repro.bench.latency_experiments import THREE_SITES, figure2_config, run_latency_comparison
from repro.bench.reporting import format_latency_table

from conftest import quick_overrides


@pytest.mark.parametrize("leader", ["CA", "VA"])
def test_bench_fig2_balanced_three_replicas(benchmark, report_sink, leader):
    config = figure2_config(leader, **quick_overrides())
    results = benchmark.pedantic(
        run_latency_comparison, args=(config,), rounds=1, iterations=1
    )
    report_sink(
        f"fig2_balanced_3_leader_{leader}",
        format_latency_table(results, THREE_SITES, f"Figure 2 (leader {leader})"),
    )

    clock = results["clock-rsm"]
    paxos_bcast = results["paxos-bcast"]

    if leader == "VA":
        # Best leader: Paxos-bcast is optimal, and Clock-RSM tracks it within
        # a few percent (the paper reports ~6% higher on average).
        for site in THREE_SITES:
            assert clock.mean_ms(site) >= paxos_bcast.mean_ms(site) - 5.0
        ratio = clock.average_over_sites() / paxos_bcast.average_over_sites()
        assert ratio == pytest.approx(1.06, abs=0.12)
    else:
        # Leader CA (Figure 2a): CA and VA are similar for both protocols,
        # but Paxos-bcast's other non-leader replica (IR) must use the
        # longest path and is much slower than Clock-RSM there.
        assert clock.mean_ms("CA") == pytest.approx(paxos_bcast.mean_ms("CA"), abs=15.0)
        assert clock.mean_ms("VA") == pytest.approx(paxos_bcast.mean_ms("VA"), abs=15.0)
        assert clock.mean_ms("IR") < paxos_bcast.mean_ms("IR") - 40.0
    # Mencius-bcast's 95th percentile shows the delayed-commit spread.
    mencius = results["mencius-bcast"]
    spread = sum(mencius.p95_ms(s) - mencius.mean_ms(s) for s in THREE_SITES)
    clock_spread = sum(clock.p95_ms(s) - clock.mean_ms(s) for s in THREE_SITES)
    assert spread > clock_spread
