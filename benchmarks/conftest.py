"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one table or figure of the paper.  Results are
printed and also written to ``benchmarks/results/<name>.txt`` so they remain
inspectable after a captured pytest run; EXPERIMENTS.md records the
paper-vs-measured comparison.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Allow running the benchmarks from a source checkout without installation.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

RESULTS_DIR = Path(__file__).resolve().parent / "results"


@pytest.fixture
def report_sink():
    """Returns a function that records a named experiment report."""

    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text)
        print(f"\n===== {name} =====\n{text}")

    return write


def quick_overrides() -> dict:
    """Simulation sizes used by the benchmark targets.

    Chosen so the whole benchmark suite completes in minutes while keeping
    enough samples per site for stable means and 95th percentiles.
    """
    from repro.types import seconds_to_micros

    return dict(
        duration=seconds_to_micros(8.0),
        warmup=seconds_to_micros(2.0),
        clients_per_replica=12,
    )
