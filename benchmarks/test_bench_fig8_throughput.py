"""Figure 8 — throughput on a local cluster for 10/100/1000-byte commands.

Five replicas on a simulated LAN with the CPU/batching cost model, saturated
by window-based clients.  Reproduced shape (see EXPERIMENTS.md for the full
discussion): Clock-RSM and Mencius-bcast deliver similar throughput at every
command size, and both clearly beat Paxos and Paxos-bcast for large (1000 B)
commands, where the Paxos leader's per-byte work makes it the bottleneck.
The paper additionally measures Paxos ahead for small commands, an effect of
leader-side batching in its pipelined C++ implementation that the symmetric
cost model here does not reproduce (documented deviation).
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import format_throughput
from repro.bench.throughput import run_throughput_comparison
from repro.types import ms_to_micros


def test_bench_fig8_throughput(benchmark, report_sink):
    results = benchmark.pedantic(
        run_throughput_comparison,
        kwargs=dict(window=400_000, warmup=ms_to_micros(150.0), outstanding_per_replica=96),
        rounds=1,
        iterations=1,
    )
    report_sink("fig8_throughput", format_throughput(results, "Figure 8: throughput (kop/s)"))

    indexed = {(r.protocol, r.command_size): r.throughput_kops for r in results}

    for size in (10, 100, 1000):
        clock = indexed[("clock-rsm", size)]
        mencius = indexed[("mencius-bcast", size)]
        # Clock-RSM and Mencius-bcast are similar (same communication pattern;
        # Clock-RSM additionally broadcasts its own PREPAREOK, costing ~20%).
        assert clock == pytest.approx(mencius, rel=0.35)

    # Large commands: the Paxos leader is the bottleneck; Clock-RSM wins by
    # roughly the factor the paper reports (~2-3x).
    assert indexed[("clock-rsm", 1000)] > 1.8 * indexed[("paxos", 1000)]
    assert indexed[("clock-rsm", 1000)] > 1.8 * indexed[("paxos-bcast", 1000)]

    # Throughput decreases with command size for every protocol.
    for protocol in ("clock-rsm", "mencius-bcast", "paxos", "paxos-bcast"):
        assert indexed[(protocol, 10)] >= indexed[(protocol, 100)] >= indexed[(protocol, 1000)]
