"""Ablation — the CLOCKTIME broadcast extension (Algorithm 2).

The paper argues the periodic clock broadcast only helps in one case: a
single replica serving *light* traffic, where previous commands' PREPAREOKs
are too infrequent to advance the stable-order condition.  Without the
extension the origin needs a full round trip to the farthest replica
(2 * max); with it, max + Δ suffices (bounded below by the majority round
trip).  This ablation runs a single very lightly loaded client at CA with the
extension disabled and enabled.
"""

from __future__ import annotations

import pytest

from repro.analysis.ec2 import ec2_latency_matrix
from repro.analysis.latency_model import clock_rsm_light_imbalanced
from repro.bench.latency_experiments import FIVE_SITES, LatencyExperimentConfig, latency_experiment
from repro.bench.reporting import format_table
from repro.types import micros_to_ms, ms_to_micros, seconds_to_micros


def _config(clocktime_interval):
    return LatencyExperimentConfig(
        sites=FIVE_SITES,
        leader_site="CA",
        balanced=False,
        origin_site="CA",
        duration=seconds_to_micros(6.0),
        warmup=seconds_to_micros(1.0),
        clients_per_replica=1,          # a single client...
        clocktime_interval=clocktime_interval,
        jitter_fraction=0.0,
        seed=17,
    )


def _run_pair():
    # "Disabled" is approximated by a Δ far larger than any command interval,
    # so the broadcast never helps within a command's lifetime.
    disabled = latency_experiment("clock-rsm", _config(ms_to_micros(10_000.0)))
    enabled = latency_experiment("clock-rsm", _config(ms_to_micros(5.0)))
    return disabled, enabled


def test_bench_ablation_clocktime_extension(benchmark, report_sink):
    disabled, enabled = benchmark.pedantic(_run_pair, rounds=1, iterations=1)
    matrix = ec2_latency_matrix(FIVE_SITES)
    predicted_without = micros_to_ms(clock_rsm_light_imbalanced(matrix, 0))
    predicted_with = micros_to_ms(
        clock_rsm_light_imbalanced(matrix, 0, clocktime_interval=ms_to_micros(5.0))
    )
    rows = [
        {
            "variant": "without CLOCKTIME",
            "measured_ms": round(disabled.mean_ms("CA"), 1),
            "predicted_ms": round(predicted_without, 1),
        },
        {
            "variant": "with CLOCKTIME (Δ=5ms)",
            "measured_ms": round(enabled.mean_ms("CA"), 1),
            "predicted_ms": round(predicted_with, 1),
        },
    ]
    report_sink("ablation_clocktime", format_table(rows, "Ablation: Algorithm 2 extension"))

    # The extension removes the extra round trip for a lightly loaded origin.
    assert enabled.mean_ms("CA") < disabled.mean_ms("CA") - 20.0
    assert enabled.mean_ms("CA") == pytest.approx(predicted_with, abs=12.0)
    assert disabled.mean_ms("CA") == pytest.approx(predicted_without, abs=15.0)
