"""Figure 1 — commit latency at five replicas, balanced workload.

Five replicas at CA/VA/IR/JP/SG, 40-client-per-site closed-loop workload
(scaled down), Paxos/Paxos-bcast leader at CA (Fig. 1a) and VA (Fig. 1b).
Expected shape (paper Section VI-B1): Clock-RSM is lower than Paxos-bcast at
every non-leader replica, similar or slightly higher at the leader, and lower
than Mencius-bcast everywhere.
"""

from __future__ import annotations

import pytest

from repro.bench.latency_experiments import FIVE_SITES, figure1_config, run_latency_comparison
from repro.bench.reporting import format_latency_table

from conftest import quick_overrides


@pytest.mark.parametrize("leader", ["CA", "VA"])
def test_bench_fig1_balanced_five_replicas(benchmark, report_sink, leader):
    config = figure1_config(leader, **quick_overrides())

    results = benchmark.pedantic(
        run_latency_comparison, args=(config,), rounds=1, iterations=1
    )
    report_sink(
        f"fig1_balanced_5_leader_{leader}",
        format_latency_table(results, FIVE_SITES, f"Figure 1 (leader {leader})"),
    )

    clock = results["clock-rsm"]
    paxos_bcast = results["paxos-bcast"]
    mencius = results["mencius-bcast"]
    non_leader_sites = [s for s in FIVE_SITES if s != leader]

    # Clock-RSM beats Paxos-bcast at (most) non-leader replicas.
    wins = sum(1 for s in non_leader_sites if clock.mean_ms(s) < paxos_bcast.mean_ms(s))
    assert wins >= 3
    # At the leader it is similar or somewhat higher (the paper's Figure 1
    # shows ~0-35 ms extra, from the stable-order step's farthest replica).
    assert clock.mean_ms(leader) <= paxos_bcast.mean_ms(leader) + 40.0
    # Clock-RSM never loses to Mencius-bcast (small tolerance for sampling).
    for site in FIVE_SITES:
        assert clock.mean_ms(site) <= mencius.mean_ms(site) + 5.0
    # The highest per-site latency of Clock-RSM is below Paxos/Paxos-bcast's.
    assert clock.highest_over_sites() < results["paxos"].highest_over_sites()
    assert clock.highest_over_sites() <= paxos_bcast.highest_over_sites() + 5.0
