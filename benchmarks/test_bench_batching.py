"""Batching benchmark: ops/s vs batch size on both backends.

Without batching, one protocol round (and at least one wire message per
replica pair) is spent per command, so the asyncio backend's throughput is
capped by per-message overhead rather than by the protocol — exactly the
effect the paper's implementation avoids by batching commands (Fig. 8
assumes replicas amortize per-message cost).  This benchmark sweeps
``[batching] max_batch`` over 1 → 8 → 64 for clock-rsm and mencius under a
saturating window workload:

* **async** (the acceptance series): live event-loop throughput must be
  *strictly increasing* in batch size — the per-command Python/framing work
  is the bottleneck, and batching amortizes it;
* **sim** (trend parity): the same sweep under the CPU cost model must show
  the same monotone trend, confirming the discrete-event model and the live
  runtime agree on what batching buys.

Results go to ``benchmarks/results/BENCH_batching.json``.
"""

from __future__ import annotations

import json
import time

from repro.experiment import (
    BatchingSpec,
    CpuSpec,
    Deployment,
    ExperimentSpec,
    WorkloadSpec,
)

from conftest import RESULTS_DIR

SITES = ("S0", "S1", "S2")
BATCH_SIZES = (1, 8, 64)
PROTOCOLS = ("clock-rsm", "mencius")

#: Same heavier-than-default costs as the shard benchmark: a CPU-bound
#: saturation shape at a manageable simulated event volume.
CPU = CpuSpec(
    recv_fixed=12.0,
    recv_per_byte=0.012,
    send_fixed=12.0,
    send_per_byte=0.012,
    client_fixed=4.0,
)


def batched_spec(protocol: str, batch: int, backend: str) -> ExperimentSpec:
    """The sweep spec: saturating window, null app, tiny uniform delays."""
    sim = backend == "sim"
    return ExperimentSpec(
        name=f"batch-sweep-{backend}-{protocol}-{batch}",
        protocol=protocol,
        sites=SITES,
        latency="uniform",
        one_way_ms=0.1 if sim else 0.05,
        jitter_fraction=0.02 if sim else 0.0,
        workload=WorkloadSpec(
            scenario="saturating",
            outstanding_per_site=64,
            payload_size=64,
            app="null",
        ),
        cpu=CPU if sim else None,
        duration_s=0.15 if sim else 2.0,
        warmup_s=0.04 if sim else 0.5,
        seed=11,
        batching=BatchingSpec(max_batch=batch, window_us=0) if batch > 1 else None,
    )


def _sweep(backend: str, **options) -> dict[str, list[dict]]:
    series: dict[str, list[dict]] = {}
    for protocol in PROTOCOLS:
        points = []
        for batch in BATCH_SIZES:
            result = Deployment(
                batched_spec(protocol, batch, backend), backend=backend, **options
            ).run()
            points.append(
                {
                    "max_batch": batch,
                    "kops": round(result.throughput_kops, 1),
                    "total_committed": result.total_committed,
                }
            )
        for point in points:
            point["speedup"] = round(point["kops"] / points[0]["kops"], 2)
        series[protocol] = points
    return series


def test_bench_batching(report_sink):
    wall_start = time.perf_counter()

    async_series = _sweep("async", time_scale=1.0)
    sim_series = _sweep("sim")

    # The acceptance claim: live throughput strictly increases with batch
    # size (1 -> 8 -> 64) for both protocols ...
    for protocol, points in async_series.items():
        kops = {point["max_batch"]: point["kops"] for point in points}
        assert kops[1] < kops[8] < kops[64], (protocol, kops)

    # ... and the sim cost model shows the same monotone trend (parity with
    # its opportunistic-batching assumptions).
    for protocol, points in sim_series.items():
        kops = {point["max_batch"]: point["kops"] for point in points}
        assert kops[1] < kops[8] < kops[64], (protocol, kops)

    payload = {
        "name": "batching",
        "workload": "saturating, window 64/site, 64 B null ops",
        "batch_sizes": list(BATCH_SIZES),
        "series": {
            "async": async_series,
            "sim": sim_series,
        },
        "wall_s": round(time.perf_counter() - wall_start, 1),
    }
    (RESULTS_DIR / "BENCH_batching.json").write_text(json.dumps(payload, indent=2))

    lines = []
    for backend, series in (("async", async_series), ("sim", sim_series)):
        for protocol, points in series.items():
            row = "  ".join(
                f"b{point['max_batch']}:{point['kops']:.0f}kops(x{point['speedup']})"
                for point in points
            )
            lines.append(f"{backend:5s} {protocol:12s} {row}")
    report_sink("BENCH_batching", "\n".join(lines))
