"""Batching benchmark: ops/s vs batch size on both backends.

Without batching, one protocol round (and at least one wire message per
replica pair) is spent per command, so the asyncio backend's throughput is
capped by per-message overhead rather than by the protocol — exactly the
effect the paper's implementation avoids by batching commands (Fig. 8
assumes replicas amortize per-message cost).  This benchmark sweeps
``[batching] max_batch`` over 1 → 8 → 64 for clock-rsm and mencius under a
saturating window workload:

* **async** (the acceptance series): live event-loop throughput must be
  *strictly increasing* in batch size — the per-command Python/framing work
  is the bottleneck, and batching amortizes it;
* **sim** (trend parity): the same sweep under the CPU cost model must show
  the same monotone trend, confirming the discrete-event model and the live
  runtime agree on what batching buys.

Results go to ``benchmarks/results/BENCH_batching.json``.
"""

from __future__ import annotations

import json
import time

from repro.experiment import (
    BatchingSpec,
    CpuSpec,
    Deployment,
    ExperimentSpec,
    WorkloadSpec,
)

from conftest import RESULTS_DIR

SITES = ("S0", "S1", "S2")
BATCH_SIZES = (1, 8, 64)
PROTOCOLS = ("clock-rsm", "mencius")

#: The async batch-64 kops committed before the zero-copy wire hot path
#: landed (memoryview decode, fused frame assembly, deadline-heap timeouts)
#: — the "before" of the tracked before/after.  Update when re-baselining.
BASELINE_B64_KOPS = {"clock-rsm": 39.3, "mencius": 43.0}

#: Same heavier-than-default costs as the shard benchmark: a CPU-bound
#: saturation shape at a manageable simulated event volume.
CPU = CpuSpec(
    recv_fixed=12.0,
    recv_per_byte=0.012,
    send_fixed=12.0,
    send_per_byte=0.012,
    client_fixed=4.0,
)


def batched_spec(protocol: str, batch: int, backend: str) -> ExperimentSpec:
    """The sweep spec: saturating window, null app, tiny uniform delays."""
    sim = backend == "sim"
    return ExperimentSpec(
        name=f"batch-sweep-{backend}-{protocol}-{batch}",
        protocol=protocol,
        sites=SITES,
        latency="uniform",
        one_way_ms=0.1 if sim else 0.05,
        jitter_fraction=0.02 if sim else 0.0,
        workload=WorkloadSpec(
            scenario="saturating",
            outstanding_per_site=64,
            payload_size=64,
            app="null",
        ),
        cpu=CPU if sim else None,
        duration_s=0.15 if sim else 2.0,
        warmup_s=0.04 if sim else 0.5,
        seed=11,
        batching=BatchingSpec(max_batch=batch, window_us=0) if batch > 1 else None,
    )


def _sweep(backend: str, **options) -> dict[str, list[dict]]:
    series: dict[str, list[dict]] = {}
    for protocol in PROTOCOLS:
        points = []
        for batch in BATCH_SIZES:
            result = Deployment(
                batched_spec(protocol, batch, backend), backend=backend, **options
            ).run()
            point = {
                "max_batch": batch,
                "kops": round(result.throughput_kops, 1),
                "total_committed": result.total_committed,
            }
            # The driver's queue-wait/protocol split (async backend only):
            # sample-weighted means across replicas, attributing throughput
            # changes to time spent waiting for a batch slot vs. in rounds.
            splits = [
                m
                for m in result.replica_metrics.values()
                if "queue_wait_mean_us" in m
            ]
            if splits:
                samples = sum(m["split_samples"] for m in splits)
                point["queue_wait_us"] = round(
                    sum(m["queue_wait_mean_us"] * m["split_samples"] for m in splits)
                    / samples,
                    1,
                )
                point["protocol_us"] = round(
                    sum(m["protocol_mean_us"] * m["split_samples"] for m in splits)
                    / samples,
                    1,
                )
            points.append(point)
        for point in points:
            point["speedup"] = round(point["kops"] / points[0]["kops"], 2)
        series[protocol] = points
    return series


def test_bench_batching(report_sink):
    wall_start = time.perf_counter()

    async_series = _sweep("async", time_scale=1.0)
    sim_series = _sweep("sim")

    # The acceptance claim: live throughput strictly increases with batch
    # size (1 -> 8 -> 64) for both protocols ...
    for protocol, points in async_series.items():
        kops = {point["max_batch"]: point["kops"] for point in points}
        assert kops[1] < kops[8] < kops[64], (protocol, kops)

    # ... and the sim cost model shows the same monotone trend (parity with
    # its opportunistic-batching assumptions).
    for protocol, points in sim_series.items():
        kops = {point["max_batch"]: point["kops"] for point in points}
        assert kops[1] < kops[8] < kops[64], (protocol, kops)

    # Before/after tracking for the zero-copy wire hot path: async batch-64
    # throughput against the committed pre-optimization baseline.
    hot_path = {}
    for protocol, points in async_series.items():
        after = next(p["kops"] for p in points if p["max_batch"] == 64)
        before = BASELINE_B64_KOPS[protocol]
        hot_path[protocol] = {
            "before_kops": before,
            "after_kops": after,
            "speedup": round(after / before, 2),
        }

    payload = {
        "name": "batching",
        "workload": "saturating, window 64/site, 64 B null ops",
        "batch_sizes": list(BATCH_SIZES),
        "series": {
            "async": async_series,
            "sim": sim_series,
        },
        "hot_path": hot_path,
        "wall_s": round(time.perf_counter() - wall_start, 1),
    }
    (RESULTS_DIR / "BENCH_batching.json").write_text(json.dumps(payload, indent=2))

    lines = []
    for backend, series in (("async", async_series), ("sim", sim_series)):
        for protocol, points in series.items():
            row = "  ".join(
                f"b{point['max_batch']}:{point['kops']:.0f}kops(x{point['speedup']})"
                for point in points
            )
            lines.append(f"{backend:5s} {protocol:12s} {row}")
    report_sink("BENCH_batching", "\n".join(lines))
