"""Figure 6 — latency distribution at SG, five replicas, imbalanced workload.

Only SG's clients issue requests; the Paxos/Paxos-bcast leader is at CA.
Expected shape: every protocol's CDF is fairly sharp (no concurrent commands
means no delayed-commit variance for Mencius-bcast), but Mencius-bcast is
centred at a much higher latency (round trip to the farthest replica), while
Clock-RSM sits at the majority round trip.
"""

from __future__ import annotations

from repro.bench.latency_experiments import figure6_config, latency_cdf_experiment
from repro.bench.reporting import format_cdf
from repro.types import seconds_to_micros


def _median(points):
    for value, cumulative in points:
        if cumulative >= 0.5:
            return value
    return points[-1][0]


def test_bench_fig6_latency_cdf_at_sg(benchmark, report_sink):
    config = figure6_config(
        duration=seconds_to_micros(6.0),
        warmup=seconds_to_micros(1.0),
        clients_per_replica=10,
    )
    cdfs = benchmark.pedantic(
        latency_cdf_experiment, args=(config, "SG"), rounds=1, iterations=1
    )
    report_sink("fig6_cdf_sg", format_cdf(cdfs, "Figure 6: latency CDF at SG (imbalanced)"))

    for protocol, points in cdfs.items():
        assert points, f"no samples collected for {protocol}"

    # Ordering of the distributions' centres at SG (paper Figure 6):
    # Clock-RSM is lowest; Paxos-bcast beats plain Paxos; Mencius-bcast is
    # pushed up by the skip round trip to the farthest replica.
    assert _median(cdfs["clock-rsm"]) < _median(cdfs["paxos-bcast"])
    assert _median(cdfs["paxos-bcast"]) < _median(cdfs["paxos"])
    assert _median(cdfs["clock-rsm"]) < _median(cdfs["mencius-bcast"])
    assert _median(cdfs["paxos-bcast"]) < _median(cdfs["mencius-bcast"])
