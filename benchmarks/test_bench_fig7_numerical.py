"""Figure 7 — numerical comparison over all EC2 replica placements.

Plugs the measured Table III delays into the Table II formulas for every
combination of three, five and seven data centers; Paxos-bcast always gets
its best leader.  Expected shape: Clock-RSM has the lower average latency for
five and seven replicas (with a larger gap on the per-group worst replica)
and is slightly worse for three replicas.
"""

from __future__ import annotations

from repro.bench.numerical import figure7_data
from repro.bench.reporting import format_table


def test_bench_fig7_numerical_comparison(benchmark, report_sink):
    rows = benchmark.pedantic(figure7_data, rounds=1, iterations=1)
    report_sink("fig7_numerical", format_table(rows, "Figure 7: average latency by group size"))

    by_size = {row["group_size"]: row for row in rows}
    assert set(by_size) == {3, 5, 7}
    assert by_size[3]["groups"] == 35
    assert by_size[5]["groups"] == 21
    assert by_size[7]["groups"] == 1

    # Three replicas: Paxos-bcast (best leader) is the optimal special case.
    assert by_size[3]["clock_rsm_all_ms"] >= by_size[3]["paxos_bcast_all_ms"]
    # Five and seven replicas: Clock-RSM wins on both averages, with a larger
    # margin on the per-group highest latency.
    for size in (5, 7):
        row = by_size[size]
        assert row["clock_rsm_all_ms"] < row["paxos_bcast_all_ms"]
        assert row["clock_rsm_highest_ms"] < row["paxos_bcast_highest_ms"]
        all_gap = row["paxos_bcast_all_ms"] - row["clock_rsm_all_ms"]
        highest_gap = row["paxos_bcast_highest_ms"] - row["clock_rsm_highest_ms"]
        assert highest_gap > all_gap
