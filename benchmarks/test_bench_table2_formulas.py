"""Table II — analytical commit latency per protocol.

Instantiates the closed-form latency model for the paper's three- and
five-replica placements (Table III delays) and prints one row per
(site, protocol).
"""

from __future__ import annotations

from repro.bench.numerical import table2_rows
from repro.bench.reporting import format_table


def test_bench_table2_formulas(benchmark, report_sink):
    def run():
        return {
            "five_leader_va": table2_rows(["CA", "VA", "IR", "JP", "SG"], "VA"),
            "five_leader_ca": table2_rows(["CA", "VA", "IR", "JP", "SG"], "CA"),
            "three_leader_va": table2_rows(["CA", "VA", "IR"], "VA"),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    text = ""
    for name, rows in results.items():
        text += format_table(rows, f"Table II ({name})") + "\n"
    report_sink("table2_formulas", text)

    for rows in results.values():
        for row in rows:
            # Paxos-bcast never exceeds plain Paxos, and Clock-RSM's balanced
            # latency never beats its imbalanced latency (they are maxima of
            # supersets of the same terms).
            assert row["paxos_bcast_ms"] <= row["paxos_ms"] + 1e-9
            assert row["clock_rsm_balanced_ms"] >= row["clock_rsm_imbalanced_ms"] - 1e-9
