"""Table IV — latency reduction of Clock-RSM over Paxos-bcast.

For every replica of every 3/5/7-site placement, compares the analytical
Clock-RSM latency with best-leader Paxos-bcast and buckets the replicas into
"Clock-RSM lower" / "Clock-RSM higher".  Expected shape (paper Table IV):
0% / 100% for three replicas (ties and small losses, ≈ -10 ms), roughly
two-thirds winners at ≈ +30 ms for five replicas, and ≈ 86% winners at
≈ +50 ms for seven replicas.
"""

from __future__ import annotations

import pytest

from repro.bench.numerical import table4_rows
from repro.bench.reporting import format_table


def test_bench_table4_latency_reduction(benchmark, report_sink):
    rows = benchmark.pedantic(table4_rows, rounds=1, iterations=1)
    report_sink("table4_reduction", format_table(rows, "Table IV: latency reduction"))

    indexed = {(row["group_size"], row["bucket"]): row for row in rows}

    three_lower = indexed[(3, "clock-rsm lower")]
    three_higher = indexed[(3, "clock-rsm higher")]
    assert three_lower["replica_percentage"] == 0.0
    assert three_higher["replica_percentage"] == 100.0
    assert three_higher["absolute_reduction_ms"] == pytest.approx(-9.9, abs=3.0)

    five_lower = indexed[(5, "clock-rsm lower")]
    assert five_lower["replica_percentage"] == pytest.approx(68.6, abs=6.0)
    assert five_lower["absolute_reduction_ms"] == pytest.approx(31.9, abs=8.0)

    seven_lower = indexed[(7, "clock-rsm lower")]
    assert seven_lower["replica_percentage"] == pytest.approx(85.7, abs=0.5)
    assert seven_lower["absolute_reduction_ms"] == pytest.approx(50.2, abs=10.0)
