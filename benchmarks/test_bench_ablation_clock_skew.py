"""Ablation — sensitivity of Clock-RSM latency to clock synchronization error.

The paper claims correctness never depends on clock synchronization, and its
latency analysis ignores clock skew because NTP keeps it far below the
wide-area delays.  This ablation sweeps the skew of one replica's clock (CA
runs ahead) from 0 to well above the wide-area delays and verifies:

* correctness (identical execution orders) holds at every skew;
* replicas with accurate clocks are unaffected;
* the skewed replica's own commands pay a stable-order penalty that grows
  with the skew — NTP-grade errors (a few ms) are negligible, skews beyond
  the network delays degrade latency roughly one-for-one, which is exactly
  why the protocol wants loosely synchronized clocks.
"""

from __future__ import annotations

from repro.analysis.ec2 import ec2_latency_matrix
from repro.bench.latency_experiments import THREE_SITES
from repro.bench.reporting import format_table
from repro.config import ClusterSpec, ProtocolConfig
from repro.kvstore.commands import random_update
from repro.kvstore.kv import KVStateMachine
from repro.sim.cluster import SimulatedCluster
from repro.workload.generator import WorkloadOptions
from repro.workload.scenarios import balanced_workload
from repro.types import ms_to_micros, seconds_to_micros

SKEWS_MS = (0.0, 5.0, 20.0, 100.0, 300.0)


def _run_skew(skew_ms: float):
    spec = ClusterSpec.from_sites(list(THREE_SITES))
    cluster = SimulatedCluster(
        spec,
        ec2_latency_matrix(THREE_SITES),
        "clock-rsm",
        ProtocolConfig(),
        seed=19,
        clock_offsets={0: ms_to_micros(skew_ms)},  # CA's clock runs ahead
        state_machine_factory=lambda _rid: KVStateMachine(),
    )
    handle = balanced_workload(
        cluster,
        WorkloadOptions(
            clients_per_replica=8,
            payload_factory=lambda rng: random_update(rng, value_size=64),
        ),
        warmup=seconds_to_micros(1.0),
    )
    cluster.run_for(seconds_to_micros(6.0))
    handle.stop()
    cluster.assert_consistent_order()
    return {
        site: handle.collector.summary(spec.by_site(site).replica_id).mean_ms
        for site in THREE_SITES
    }


def _sweep():
    return {skew: _run_skew(skew) for skew in SKEWS_MS}


def test_bench_ablation_clock_skew(benchmark, report_sink):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = [
        {"skew_ms": skew, **{f"{site}_ms": round(latency, 1) for site, latency in by_site.items()}}
        for skew, by_site in results.items()
    ]
    report_sink("ablation_clock_skew", format_table(rows, "Ablation: clock skew at CA"))

    baseline = results[0.0]
    # Replicas with accurate clocks are unaffected at every skew level.
    for skew in SKEWS_MS:
        for site in ("VA", "IR"):
            assert abs(results[skew][site] - baseline[site]) < 10.0
    # NTP-grade skew (5 ms) is negligible at the skewed replica itself.
    assert abs(results[5.0]["CA"] - baseline["CA"]) < 15.0
    # The penalty at CA grows monotonically with the skew...
    ca_latencies = [results[skew]["CA"] for skew in SKEWS_MS]
    assert ca_latencies == sorted(ca_latencies)
    # ...and a skew far beyond the network delays degrades latency roughly
    # one-for-one (300 ms skew => ~300 ms extra).
    assert results[300.0]["CA"] - baseline["CA"] > 200.0
