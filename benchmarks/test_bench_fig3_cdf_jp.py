"""Figure 3 — latency distribution at JP, five replicas, leader CA, balanced.

Expected shape: Paxos and Paxos-bcast have near-vertical CDFs (predictable
latency), Mencius-bcast spreads over roughly a one-way delay because of the
delayed-commit problem, and Clock-RSM shows moderate variance at JP (prefix
replication sometimes dominates with this layout).
"""

from __future__ import annotations

from repro.bench.latency_experiments import figure1_config, latency_cdf_experiment
from repro.bench.reporting import format_cdf

from conftest import quick_overrides


def _spread(points, low=0.05, high=0.95):
    values = [v for v, _ in points]
    fractions = [f for _, f in points]
    def at(fraction):
        for value, cumulative in points:
            if cumulative >= fraction:
                return value
        return values[-1]
    return at(high) - at(low)


def test_bench_fig3_latency_cdf_at_jp(benchmark, report_sink):
    config = figure1_config("CA", **quick_overrides())
    cdfs = benchmark.pedantic(
        latency_cdf_experiment, args=(config, "JP"), rounds=1, iterations=1
    )
    report_sink("fig3_cdf_jp", format_cdf(cdfs, "Figure 3: latency CDF at JP (leader CA)"))

    for protocol, points in cdfs.items():
        assert points, f"no samples collected for {protocol}"
        assert points[-1][1] == 1.0

    # Paxos variants are tightly concentrated; Mencius-bcast is the widest.
    assert _spread(cdfs["paxos"]) < 20.0
    assert _spread(cdfs["paxos-bcast"]) < 20.0
    assert _spread(cdfs["mencius-bcast"]) > _spread(cdfs["paxos-bcast"])
    assert _spread(cdfs["mencius-bcast"]) > _spread(cdfs["clock-rsm"])
