"""Multi-process deployment benchmark: aggregate throughput vs worker count.

The proc backend runs each replica — and, sharded, each shard group's
replicas — as its own OS process over real TCP.  This benchmark measures
the weak-scaling shape of that deployment: the per-shard client population
is held constant (4 clients per site per shard), so adding shard groups
adds both offered load and worker processes, 3 → 6 → 12.  Aggregate
committed ops/s must grow monotonically for both clock-rsm and mencius.

The comparison point runs the *same* 4-shard batched spec on the async
backend, which hosts all four groups in a single process and emulates the
spec's EC2 latency matrix with timers.  The proc backend does not inject
the matrix — its network is the real loopback stack — so the comparison is
deliberate and documented: a deployment commits at the speed of the wire
it actually has, while the single-process backend commits at the speed of
the WAN it emulates.  Multi-process must win on both protocols.

Honesty notes, because this host shapes the numbers:

* ``cpu_count`` goes into the JSON.  On a single-core host (the CI box)
  worker processes time-share one core, so the sweep is latency-bound by
  design (think-time clients against WAN-scale commit latencies); a
  CPU-bound saturating workload would show process overhead, not scaling.
* The sweep is *weak* scaling — offered load grows with the fleet.  A
  fixed total population split across more groups measures latency, not
  capacity, and would stay flat here.

Results go to ``benchmarks/results/BENCH_proc.json``.
"""

from __future__ import annotations

import json
import os
import time

from repro.experiment import (
    BatchingSpec,
    Deployment,
    ExperimentSpec,
    ShardingSpec,
    WorkloadSpec,
)

from conftest import RESULTS_DIR

SITES = ("CA", "VA", "IR")
SHARD_COUNTS = (1, 2, 4)
PROTOCOLS = ("clock-rsm", "mencius")
CLIENTS_PER_SITE_PER_SHARD = 4


def proc_spec(protocol: str, shards: int) -> ExperimentSpec:
    return ExperimentSpec(
        name=f"proc-sweep-{protocol}-{shards}",
        protocol=protocol,
        sites=SITES,
        latency="ec2",
        jitter_fraction=0.02,
        workload=WorkloadSpec(
            clients_per_site=CLIENTS_PER_SITE_PER_SHARD * shards,
            payload_size=32,
            app="kv",
            think_time_min_ms=20.0,
            think_time_max_ms=40.0,
        ),
        batching=BatchingSpec(max_batch=8, window_us=0, pipeline_depth=2),
        duration_s=1.0,
        warmup_s=0.25,
        seed=23,
        sharding=ShardingSpec(shards=shards) if shards > 1 else None,
    )


def test_bench_proc(report_sink):
    series: dict[str, dict] = {}
    wall_start = time.perf_counter()
    for protocol in PROTOCOLS:
        points = []
        for shards in SHARD_COUNTS:
            result = Deployment(
                proc_spec(protocol, shards), backend="proc", time_scale=1.0
            ).run()
            points.append(
                {
                    "shards": shards,
                    "workers": shards * len(SITES),
                    "kops": round(result.throughput_kops, 3),
                    "total_committed": result.total_committed,
                }
            )
        for point in points:
            point["speedup"] = round(point["kops"] / points[0]["kops"], 2)

        async_result = Deployment(
            proc_spec(protocol, SHARD_COUNTS[-1]), backend="async", time_scale=1.0
        ).run()
        series[protocol] = {
            "proc": points,
            "async_single_process": {
                "shards": SHARD_COUNTS[-1],
                "kops": round(async_result.throughput_kops, 3),
                "total_committed": async_result.total_committed,
            },
        }

        # Acceptance: aggregate ops/s is monotone in the worker count, and
        # the multi-process deployment beats the same spec hosted in one
        # async process.
        kops = {point["shards"]: point["kops"] for point in points}
        assert kops[1] < kops[2] < kops[4], (protocol, kops)
        assert kops[4] > async_result.throughput_kops, (
            protocol,
            kops[4],
            async_result.throughput_kops,
        )

    payload = {
        "name": "proc",
        "backend": "proc vs async",
        "sites": list(SITES),
        "workload": (
            "balanced kv, 4 think-time clients/site/shard (weak scaling), "
            "32 B payloads, batching max_batch=8 pipeline_depth=2"
        ),
        "network": "proc: real loopback TCP; async: emulated EC2 matrix",
        "shard_counts": list(SHARD_COUNTS),
        "cpu_count": os.cpu_count(),
        "series": series,
        "wall_s": round(time.perf_counter() - wall_start, 1),
    }
    (RESULTS_DIR / "BENCH_proc.json").write_text(json.dumps(payload, indent=2))

    lines = []
    for protocol, data in series.items():
        row = "  ".join(
            f"{p['workers']}w:{p['kops'] * 1000:.0f}ops(x{p['speedup']})"
            for p in data["proc"]
        )
        async_ops = data["async_single_process"]["kops"] * 1000
        lines.append(f"{protocol:12s} {row}  vs async-1proc:{async_ops:.0f}ops")
    report_sink("BENCH_proc", "\n".join(lines))
