"""Scale-out benchmark: aggregate throughput vs shard count.

One replica group totally orders every command, so its throughput saturates
at one core per site no matter the offered load — the single-total-order
bottleneck the paper defers to state partitioning.  This benchmark measures
the escape hatch: the same saturating workload (fixed total window,
partitioned across shards) against 1/2/4/8 independent protocol groups over
the same three sites, with the CPU cost model giving each shard process its
own core.  Aggregate committed ops/s must grow monotonically from 1 to 4
shards for both clock-rsm and mencius; the sweep goes to
``benchmarks/results/BENCH_shard.json``.

The workload is CPU-bound by construction (uniform 0.1 ms one-way delay,
window 96 per site): a single group saturates its cores, so added shards
add capacity rather than idle on network latency.
"""

from __future__ import annotations

import json
import time

from repro.experiment import (
    CpuSpec,
    Deployment,
    ExperimentSpec,
    ShardingSpec,
    WorkloadSpec,
)

from conftest import RESULTS_DIR

SITES = ("S0", "S1", "S2")
SHARD_COUNTS = (1, 2, 4, 8)
PROTOCOLS = ("clock-rsm", "mencius")

#: Heavier-than-default per-message costs: the same CPU-bound saturation
#: shape at roughly half the simulated event volume (suite wall time).
CPU = CpuSpec(
    recv_fixed=12.0,
    recv_per_byte=0.012,
    send_fixed=12.0,
    send_per_byte=0.012,
    client_fixed=4.0,
)


def sharded_spec(protocol: str, shards: int) -> ExperimentSpec:
    return ExperimentSpec(
        name=f"shard-sweep-{protocol}-{shards}",
        protocol=protocol,
        sites=SITES,
        latency="uniform",
        one_way_ms=0.1,
        jitter_fraction=0.02,
        workload=WorkloadSpec(
            scenario="saturating",
            outstanding_per_site=96,  # total window, partitioned across shards
            payload_size=64,
            app="null",
        ),
        cpu=CPU,
        duration_s=0.15,
        warmup_s=0.04,
        seed=11,
        sharding=ShardingSpec(shards=shards) if shards > 1 else None,
    )


def test_bench_shard(report_sink):
    series: dict[str, list[dict]] = {}
    wall_start = time.perf_counter()
    for protocol in PROTOCOLS:
        points = []
        for shards in SHARD_COUNTS:
            result = Deployment(sharded_spec(protocol, shards)).run()
            points.append(
                {
                    "shards": shards,
                    "kops": round(result.throughput_kops, 1),
                    "total_committed": result.total_committed,
                    "per_shard_kops": (
                        [
                            round(shard.throughput_kops, 1)
                            for shard in result.shards
                        ]
                        if result.shards is not None
                        else [round(result.throughput_kops, 1)]
                    ),
                }
            )
        for point in points:
            point["speedup"] = round(point["kops"] / points[0]["kops"], 2)
        series[protocol] = points

        # The acceptance claim: scaling out is monotone through 4 shards
        # (and does not regress at 8).
        kops = {point["shards"]: point["kops"] for point in points}
        assert kops[1] < kops[2] < kops[4], (protocol, kops)
        assert kops[8] >= 0.98 * kops[4], (protocol, kops)

    payload = {
        "name": "shard",
        "backend": "sim",
        "sites": list(SITES),
        "workload": "saturating, window 96/site total, 64 B null ops, CPU-bound",
        "shard_counts": list(SHARD_COUNTS),
        "series": series,
        "wall_s": round(time.perf_counter() - wall_start, 1),
    }
    (RESULTS_DIR / "BENCH_shard.json").write_text(json.dumps(payload, indent=2))

    lines = []
    for protocol, points in series.items():
        row = "  ".join(
            f"{point['shards']}sh:{point['kops']:.0f}kops(x{point['speedup']})"
            for point in points
        )
        lines.append(f"{protocol:12s} {row}")
    report_sink("BENCH_shard", "\n".join(lines))
