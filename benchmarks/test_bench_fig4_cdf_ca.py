"""Figure 4 — latency distribution at CA, three replicas, leader VA, balanced.

Expected shape: as in Figure 3, but with this layout Clock-RSM's latency at
CA barely varies (stable order dominates prefix replication), so its CDF is
almost as sharp as the Paxos variants'.
"""

from __future__ import annotations

from repro.bench.latency_experiments import figure2_config, latency_cdf_experiment
from repro.bench.reporting import format_cdf

from conftest import quick_overrides


def _spread(points, low=0.05, high=0.95):
    def at(fraction):
        for value, cumulative in points:
            if cumulative >= fraction:
                return value
        return points[-1][0]
    return at(high) - at(low)


def test_bench_fig4_latency_cdf_at_ca(benchmark, report_sink):
    config = figure2_config("VA", **quick_overrides())
    cdfs = benchmark.pedantic(
        latency_cdf_experiment, args=(config, "CA"), rounds=1, iterations=1
    )
    report_sink("fig4_cdf_ca", format_cdf(cdfs, "Figure 4: latency CDF at CA (3 replicas, leader VA)"))

    for protocol, points in cdfs.items():
        assert points, f"no samples collected for {protocol}"

    # Clock-RSM at CA is nearly deterministic with this placement.
    assert _spread(cdfs["clock-rsm"]) < 25.0
    # Mencius-bcast still shows the delayed-commit spread.
    assert _spread(cdfs["mencius-bcast"]) > _spread(cdfs["clock-rsm"])
    # Paxos-bcast is both sharp and centred at the lowest latency at CA.
    assert _spread(cdfs["paxos-bcast"]) < 20.0
