"""Checker overhead benchmark: histories/second through the linearizability
checker, plus the verdict itself.

Two workloads feed the checker: a real recorded history from a seeded
Clock-RSM experiment (total-order pre-pass, the hot path every `repro check`
takes) and a batch of synthetic apply-order-free histories that force the
per-key Wing–Gong search (the fallback path).  The measured rates go to
``benchmarks/results/BENCH_checker.json`` so the performance trajectory
tracks checker overhead alongside protocol latency and throughput.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path

from repro.checker import OpHistory, check_history
from repro.experiment import ExperimentSpec, WorkloadSpec, check_spec
from repro.kvstore.commands import encode_delete, encode_get, encode_put
from repro.types import CommandId

from conftest import RESULTS_DIR


def synthetic_history(seed: int, ops: int = 120, keys: int = 12) -> OpHistory:
    """A random valid sequential KV execution with jittered intervals."""
    rng = random.Random(seed)
    history = OpHistory()
    values: dict[str, bytes] = {}
    now = 0
    for seq in range(1, ops + 1):
        key = f"key-{rng.randrange(keys)}"
        kind = rng.choice(("put", "put", "get", "delete"))
        if kind == "put":
            value = bytes([rng.randrange(256)]) * 4
            payload, output = encode_put(key, value), values.get(key)
            values[key] = value
        elif kind == "get":
            payload, output = encode_get(key), values.get(key)
        else:
            payload, output = encode_delete(key), values.pop(key, None) is not None
        invoked = now + rng.randrange(1, 50)
        returned = invoked + rng.randrange(1, 40)
        now = invoked  # next op may overlap this one's response window
        cid = CommandId(f"bench-{seq % 7}", seq)
        history.invoke(cid, 0, payload, invoked)
        history.complete(cid, output, returned)
    return history


def test_bench_checker(benchmark, report_sink):
    # A real history, recorded from a seeded experiment on the simulator.
    spec = ExperimentSpec(
        name="bench-checker",
        protocol="clock-rsm",
        sites=("CA", "VA", "IR"),
        workload=WorkloadSpec(clients_per_site=8, think_time_max_ms=20.0),
        duration_s=2.0,
        warmup_s=0.0,
        seed=97,
    )
    recorded_run = check_spec(spec)
    assert recorded_run.linearizable
    recorded = recorded_run.result.history

    synthetic = [synthetic_history(seed) for seed in range(40)]
    histories = [recorded] + synthetic

    def check_all():
        return [check_history(history) for history in histories]

    start = time.perf_counter()
    reports = benchmark.pedantic(check_all, rounds=3, iterations=1)
    wall_s = time.perf_counter() - start

    assert all(report.linearizable for report in reports)
    ops_checked = sum(len(history) for history in histories)
    rounds = 3
    payload = {
        "name": "checker",
        "histories_checked": len(histories) * rounds,
        "ops_checked": ops_checked * rounds,
        "wall_s": round(wall_s, 4),
        "histories_per_s": round(len(histories) * rounds / wall_s, 1),
        "ops_per_s": round(ops_checked * rounds / wall_s, 1),
        "recorded_history_ops": len(recorded),
        "methods": sorted({report.method for report in reports}),
    }
    (RESULTS_DIR / "BENCH_checker.json").write_text(json.dumps(payload, indent=2))
    report_sink(
        "BENCH_checker",
        json.dumps(payload, indent=2),
    )
