"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_latency_defaults(self):
        args = build_parser().parse_args(["latency"])
        assert args.sites == ["CA", "VA", "IR", "JP", "SG"]
        assert args.leader is None
        assert args.handler.__name__ == "cmd_latency"

    def test_throughput_arguments(self):
        args = build_parser().parse_args(["throughput", "--sizes", "10", "100", "--replicas", "3"])
        assert args.sizes == [10, 100]
        assert args.replicas == 3

    def test_unknown_site_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["latency", "--sites", "CA", "MOON"])

    def test_check_arguments(self):
        args = build_parser().parse_args(["check", "spec.toml", "--backend", "both"])
        assert args.spec == "spec.toml"
        assert args.backend == "both"
        assert args.handler.__name__ == "cmd_check"

    def test_check_command_verifies_a_small_spec(self, capsys, tmp_path):
        from repro.experiment import ExperimentSpec, WorkloadSpec

        spec = ExperimentSpec(
            name="cli-check",
            protocol="clock-rsm",
            sites=("CA", "VA", "IR"),
            workload=WorkloadSpec(clients_per_site=2, think_time_max_ms=30.0),
            duration_s=0.6,
            warmup_s=0.1,
            seed=6,
        )
        path = tmp_path / "cli_check.json"
        path.write_text(spec.to_json())
        assert main(["check", str(path)]) == 0
        output = capsys.readouterr().out
        assert "linearizable" in output
        assert "cli-check [sim] clock-rsm" in output


class TestCommands:
    def test_numerical_command_prints_figure7_and_table4(self, capsys):
        assert main(["numerical"]) == 0
        output = capsys.readouterr().out
        assert "Figure 7" in output
        assert "Table IV" in output
        assert "group_size" in output

    def test_analyze_command_prints_model_and_verdict(self, capsys):
        assert main(["analyze", "--sites", "CA", "VA", "IR", "JP", "SG"]) == 0
        output = capsys.readouterr().out
        assert "Expected commit latency" in output
        assert "better by" in output

    def test_analyze_rejects_foreign_leader(self):
        with pytest.raises(SystemExit):
            main(["analyze", "--sites", "CA", "VA", "IR", "--leader", "SG"])

    def test_analyze_rejects_too_few_sites(self):
        with pytest.raises(SystemExit):
            main(["analyze", "--sites", "CA", "VA"])

    def test_latency_command_small_run(self, capsys):
        assert main([
            "latency",
            "--sites", "CA", "VA", "IR",
            "--leader", "VA",
            "--seconds", "1.5",
            "--clients", "3",
            "--protocols", "clock-rsm", "paxos-bcast",
        ]) == 0
        output = capsys.readouterr().out
        assert "clock-rsm" in output and "paxos-bcast" in output
        assert "VA" in output

    def test_throughput_command_small_run(self, capsys):
        assert main([
            "throughput",
            "--sizes", "100",
            "--replicas", "3",
            "--window", "0.05",
        ]) == 0
        output = capsys.readouterr().out
        assert "throughput_kops" in output
