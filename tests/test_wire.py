"""Tests for the binary wire codec."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CodecError
from repro.net.wire import WireDecoder, WireEncoder, dataclass_fields, decode, encode


class TestPrimitiveRoundTrips:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -1,
            42,
            2**62,
            -(2**62),
            2**100,        # bigint path
            -(2**100),
            3.14159,
            0.0,
            "",
            "hello",
            "ünïcode ✓",
            b"",
            b"raw bytes \x00\xff",
            [],
            [1, 2, 3],
            ["mixed", 1, None, True, b"x"],
            {},
            {"a": 1, "b": [1, 2], "c": {"nested": True}},
            {1: "int keys", "two": 2},
        ],
    )
    def test_round_trip(self, value):
        assert decode(encode(value)) == value

    def test_tuple_becomes_list(self):
        assert decode(encode((1, 2, 3))) == [1, 2, 3]

    def test_nested_structures(self):
        value = {"rows": [{"id": i, "payload": bytes([i])} for i in range(10)]}
        assert decode(encode(value)) == value


class TestErrors:
    def test_unregistered_object_raises(self):
        class Foo:
            pass

        with pytest.raises(CodecError):
            encode(Foo())

    def test_trailing_garbage_raises(self):
        data = encode(42) + b"extra"
        with pytest.raises(CodecError):
            decode(data)

    def test_truncated_data_raises(self):
        data = encode("hello world")
        with pytest.raises(CodecError):
            decode(data[:-3])

    def test_unknown_tag_raises(self):
        with pytest.raises(CodecError):
            decode(b"Zjunk")

    def test_object_without_hook_raises(self):
        encoder = WireEncoder(object_hook=lambda v: ("Thing", {"x": 1}))
        data = encoder.encode(object())
        with pytest.raises(CodecError):
            WireDecoder().decode(data)

    def test_dataclass_fields_requires_dataclass(self):
        with pytest.raises(CodecError):
            dataclass_fields(42)


# A recursive strategy of encodable values (no objects).
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**70), max_value=2**70),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
    st.binary(max_size=40),
)
_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=8), children, max_size=5),
    ),
    max_leaves=25,
)


class TestCodecProperties:
    @given(_values)
    def test_round_trip_property(self, value):
        assert decode(encode(value)) == value

    @given(_values, _values)
    def test_encoding_is_deterministic_and_injective_enough(self, a, b):
        ea, eb = encode(a), encode(b)
        assert ea == encode(a)
        if a == b:
            assert ea == eb
