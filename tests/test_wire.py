"""Tests for the binary wire codec."""

from __future__ import annotations

import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CodecError
from repro.net.wire import (
    MAX_DEPTH,
    WireDecoder,
    WireEncoder,
    dataclass_fields,
    decode,
    decode_many,
    encode,
    encode_many,
)


class TestPrimitiveRoundTrips:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -1,
            42,
            2**62,
            -(2**62),
            2**100,        # bigint path
            -(2**100),
            3.14159,
            0.0,
            "",
            "hello",
            "ünïcode ✓",
            b"",
            b"raw bytes \x00\xff",
            [],
            [1, 2, 3],
            ["mixed", 1, None, True, b"x"],
            {},
            {"a": 1, "b": [1, 2], "c": {"nested": True}},
            {1: "int keys", "two": 2},
        ],
    )
    def test_round_trip(self, value):
        assert decode(encode(value)) == value

    def test_tuple_becomes_list(self):
        assert decode(encode((1, 2, 3))) == [1, 2, 3]

    def test_nested_structures(self):
        value = {"rows": [{"id": i, "payload": bytes([i])} for i in range(10)]}
        assert decode(encode(value)) == value


class TestErrors:
    def test_unregistered_object_raises(self):
        class Foo:
            pass

        with pytest.raises(CodecError):
            encode(Foo())

    def test_trailing_garbage_raises(self):
        data = encode(42) + b"extra"
        with pytest.raises(CodecError):
            decode(data)

    def test_truncated_data_raises(self):
        data = encode("hello world")
        with pytest.raises(CodecError):
            decode(data[:-3])

    def test_unknown_tag_raises(self):
        with pytest.raises(CodecError):
            decode(b"Zjunk")

    def test_object_without_hook_raises(self):
        encoder = WireEncoder(object_hook=lambda v: ("Thing", {"x": 1}))
        data = encoder.encode(object())
        with pytest.raises(CodecError):
            WireDecoder().decode(data)

    def test_dataclass_fields_requires_dataclass(self):
        with pytest.raises(CodecError):
            dataclass_fields(42)


class TestHardening:
    """Regressions for malformed input that once escaped as non-CodecErrors."""

    def test_unhashable_map_key_raises_codec_error(self):
        # MAP with one entry whose key is a list: a dict insert would raise
        # TypeError; the decoder must surface it as CodecError instead.
        data = b"M" + struct.pack(">I", 1) + b"L" + struct.pack(">I", 0) + b"N"
        with pytest.raises(CodecError, match="unhashable map key"):
            decode(data)

    def test_encode_depth_limit(self):
        value = None
        for _ in range(MAX_DEPTH + 1):
            value = [value]
        with pytest.raises(CodecError, match="max_depth"):
            encode(value)

    def test_decode_depth_limit(self):
        # Nested single-element lists crafted on the wire, deeper than the
        # decoder's limit.  Pre-hardening this was a RecursionError.
        data = b"L" + struct.pack(">I", 1)
        data = data * (MAX_DEPTH + 1) + b"N"
        with pytest.raises(CodecError, match="max_depth"):
            decode(data)

    def test_depth_limit_is_adjustable(self):
        value = None
        for _ in range(10):
            value = [value]
        data = WireEncoder(max_depth=11).encode(value)
        assert WireDecoder(max_depth=11).decode(data) == value
        with pytest.raises(CodecError, match="max_depth"):
            WireDecoder(max_depth=5).decode(data)

    def test_encode_oversize_length_raises_codec_error(self):
        # A bytes payload whose length cannot fit the u32 length field must
        # be a CodecError, not a struct.error escaping from pack.
        class HugeBytes(bytes):
            def __len__(self) -> int:
                return 2**32

        with pytest.raises(CodecError):
            encode(HugeBytes(b"xx"))

    def test_decode_huge_declared_length_fails_fast(self):
        # Declared string length far beyond the buffer: reject by arithmetic
        # on the declared size, never by attempting the allocation.
        data = b"S" + struct.pack(">I", 0xFFFFFFFF) + b"xy"
        with pytest.raises(CodecError, match="declared length"):
            decode(data)

    def test_decode_huge_declared_count_fails_fast(self):
        for tag in (b"L", b"M"):
            data = tag + struct.pack(">I", 0xFFFFFFFF) + b"N"
            with pytest.raises(CodecError):
                decode(data)

    def test_truncated_fixed_width_reads(self):
        for data in (b"I", b"I\x00\x00", b"D\x00", b"S\x00\x00", b""):
            with pytest.raises(CodecError, match="truncated"):
                decode(data)

    def test_invalid_utf8_raises_codec_error(self):
        data = b"S" + struct.pack(">I", 1) + b"\xff"
        with pytest.raises(CodecError):
            decode(data)

    def test_truncated_stream_raises(self):
        data = encode_many([1, "two", [3]])
        with pytest.raises(CodecError):
            decode_many(data[:-2])


# A recursive strategy of encodable values (no objects).
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**70), max_value=2**70),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
    st.binary(max_size=40),
)
_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=8), children, max_size=5),
    ),
    max_leaves=25,
)
# Values as callers actually pass them: tuples allowed as sequences.
_values_with_tuples = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.tuples(children, children),
        st.dictionaries(st.text(max_size=8), children, max_size=5),
    ),
    max_leaves=25,
)


def _normalize(value):
    """The codec's canonical form: every sequence decodes as a list.

    Tuples share the LIST wire tag with lists, so ``decode(encode(v))`` is
    the identity only up to this normalization — the one intentional
    round-trip asymmetry.
    """
    if isinstance(value, (list, tuple)):
        return [_normalize(item) for item in value]
    if isinstance(value, dict):
        return {key: _normalize(item) for key, item in value.items()}
    return value


class TestCodecProperties:
    @given(_values)
    def test_round_trip_property(self, value):
        assert decode(encode(value)) == value

    @given(_values_with_tuples)
    def test_round_trip_up_to_tuple_normalization(self, value):
        assert decode(encode(value)) == _normalize(value)

    @given(st.lists(_values, max_size=5))
    def test_stream_round_trip_property(self, values):
        assert decode_many(encode_many(values)) == values

    @given(_values, _values)
    def test_encoding_is_deterministic_and_injective_enough(self, a, b):
        ea, eb = encode(a), encode(b)
        assert ea == encode(a)
        if a == b:
            assert ea == eb


class TestMalformedInputProperties:
    """Arbitrary or corrupted bytes must raise CodecError — nothing else."""

    @given(st.binary(max_size=200))
    def test_arbitrary_bytes_raise_only_codec_error(self, data):
        try:
            decode(data)
        except CodecError:
            pass

    @given(_values, st.integers(min_value=0))
    def test_truncations_raise_only_codec_error(self, value, cut):
        data = encode(value)
        truncated = data[: cut % (len(data) + 1)]
        try:
            decode(truncated)
        except CodecError:
            pass

    @given(_values, st.integers(min_value=0), st.integers(min_value=1, max_value=255))
    def test_single_byte_corruptions_raise_only_codec_error(self, value, index, delta):
        data = bytearray(encode(value))
        pos = index % len(data)
        data[pos] = (data[pos] + delta) % 256
        try:
            decode(bytes(data))
        except CodecError:
            pass
