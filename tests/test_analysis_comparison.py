"""Tests for the numerical comparison (Figure 7 / Table IV machinery)."""

from __future__ import annotations

import math

import pytest

from repro.analysis.comparison import (
    aggregate_reduction,
    average_latency_by_group_size,
    best_paxos_bcast_leader,
    compare_all_groups,
    compare_group,
    enumerate_groups,
)
from repro.analysis.ec2 import EC2_SITES, ec2_latency_matrix
from repro.analysis.latency_model import paxos_bcast_latency
from repro.bench.numerical import figure7_data, table2_rows, table4_rows


class TestGroupEnumeration:
    def test_counts_match_binomials(self):
        assert len(enumerate_groups(EC2_SITES, 3)) == math.comb(7, 3) == 35
        assert len(enumerate_groups(EC2_SITES, 5)) == math.comb(7, 5) == 21
        assert len(enumerate_groups(EC2_SITES, 7)) == 1

    def test_groups_preserve_site_order(self):
        groups = enumerate_groups(("A", "B", "C"), 2)
        assert groups == [("A", "B"), ("A", "C"), ("B", "C")]


class TestBestLeaderSelection:
    def test_best_leader_minimizes_average(self):
        matrix = ec2_latency_matrix(["CA", "VA", "IR", "JP", "SG"])
        best = best_paxos_bcast_leader(matrix)
        averages = []
        for leader in range(5):
            averages.append(
                sum(paxos_bcast_latency(matrix, origin, leader) for origin in range(5)) / 5
            )
        assert averages[best] == min(averages)

    def test_best_leader_for_the_five_site_group_is_ca_or_va(self):
        # The paper designates VA as the best leader experimentally; with the
        # published Table III averages the analytical optimum is a near-tie
        # between CA and VA, so accept either.
        matrix = ec2_latency_matrix(["CA", "VA", "IR", "JP", "SG"])
        assert matrix.sites[best_paxos_bcast_leader(matrix)] in {"CA", "VA"}


class TestGroupComparison:
    def test_three_replica_special_case_paxos_bcast_never_loses(self):
        """The paper: with three replicas and the best leader, Paxos-bcast is
        optimal, so Clock-RSM is never strictly better."""
        for group in compare_all_groups(3):
            for clock_ms, paxos_ms in zip(group.clock_rsm_ms, group.paxos_bcast_ms):
                assert clock_ms >= paxos_ms - 1e-9

    def test_compare_group_shape(self):
        comparison = compare_group(("CA", "VA", "IR", "JP", "SG"))
        assert comparison.size == 5
        assert comparison.paxos_bcast_leader in comparison.sites
        assert comparison.clock_rsm_highest >= comparison.clock_rsm_average
        assert comparison.paxos_bcast_highest >= comparison.paxos_bcast_average


class TestFigure7:
    def test_clock_rsm_wins_on_average_for_five_and_seven_replicas(self):
        rows = {entry.group_size: entry for entry in average_latency_by_group_size()}
        assert rows[5].clock_rsm_all < rows[5].paxos_bcast_all
        assert rows[7].clock_rsm_all < rows[7].paxos_bcast_all
        # ... and loses slightly with three replicas (the special case).
        assert rows[3].clock_rsm_all > rows[3].paxos_bcast_all

    def test_highest_latency_gap_is_wider_than_average_gap(self):
        """The paper: the improvement on the per-group worst replica is larger
        because Paxos-bcast latencies are more spread out."""
        rows = {entry.group_size: entry for entry in average_latency_by_group_size(sizes=(5, 7))}
        for size in (5, 7):
            average_gap = rows[size].paxos_bcast_all - rows[size].clock_rsm_all
            highest_gap = rows[size].paxos_bcast_highest - rows[size].clock_rsm_highest
            assert highest_gap > average_gap

    def test_bench_rows_are_well_formed(self):
        rows = figure7_data()
        assert [row["group_size"] for row in rows] == [3, 5, 7]
        assert rows[1]["groups"] == 21
        for row in rows:
            assert row["clock_rsm_highest_ms"] >= row["clock_rsm_all_ms"]


class TestTable4:
    def test_three_replica_row_matches_paper_shape(self):
        wins, losses = aggregate_reduction(3)
        assert wins.replica_fraction == 0.0
        assert losses.replica_fraction == 1.0
        # Paper: -9.9 ms / -6.2%; our Table III-derived numbers land close.
        assert -12.0 < losses.absolute_reduction_ms < -8.0
        assert -0.09 < losses.relative_reduction < -0.04

    def test_five_replica_row_matches_paper_shape(self):
        wins, losses = aggregate_reduction(5)
        # Paper: 68.6% of replicas improve by ~31.9 ms (15.2%).
        assert 0.6 < wins.replica_fraction < 0.8
        assert 20.0 < wins.absolute_reduction_ms < 45.0
        assert wins.relative_reduction > 0.10
        assert losses.absolute_reduction_ms < 0

    def test_seven_replica_row_matches_paper_shape(self):
        wins, losses = aggregate_reduction(7)
        # Paper: 85.7% of replicas improve by ~50.2 ms (21.5%).
        assert wins.replica_fraction == pytest.approx(6 / 7, abs=0.01)
        assert 35.0 < wins.absolute_reduction_ms < 65.0

    def test_bench_rows_have_both_buckets_per_size(self):
        rows = table4_rows()
        assert len(rows) == 6
        assert {row["bucket"] for row in rows} == {"clock-rsm lower", "clock-rsm higher"}
        for row in rows:
            assert 0.0 <= row["replica_percentage"] <= 100.0


class TestTable2Rows:
    def test_rows_cover_every_site_and_protocol(self):
        rows = table2_rows(["CA", "VA", "IR", "JP", "SG"], "VA")
        assert [row["site"] for row in rows] == ["CA", "VA", "IR", "JP", "SG"]
        for row in rows:
            assert row["paxos_ms"] >= row["paxos_bcast_ms"] - 1e-9
            low, high = row["mencius_bcast_balanced_ms"]
            assert low <= high
            assert row["clock_rsm_balanced_ms"] >= row["clock_rsm_imbalanced_ms"] - 1e-9
