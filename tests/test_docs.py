"""The documentation cannot rot: snippets execute, links resolve.

Every fenced ``python`` block in ``docs/*.md`` is executed as written (each
in a fresh namespace), every fenced ``toml`` block that looks like an
experiment spec must load through :meth:`ExperimentSpec.from_dict`, and
every relative Markdown link — including ``#anchors`` into our own pages —
must point at an existing file/heading.  CI runs this module as the docs
job, so a doc referencing a renamed field, a deleted file, or a removed
heading fails the build.
"""

from __future__ import annotations

import re
import tomllib
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
DOCS = sorted((REPO / "docs").glob("*.md"))
PAGES = [REPO / "README.md", *DOCS]

_FENCE = re.compile(r"^```(\w*)\s*$")
_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$")


def fenced_blocks(path: Path, language: str) -> list[tuple[int, str]]:
    """(starting line, body) of every fenced *language* block in *path*."""
    blocks = []
    inside = matches = False
    start = 0
    body: list[str] = []
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        fence = _FENCE.match(line)
        if fence and not inside:
            inside, matches, start, body = True, fence.group(1) == language, number, []
        elif fence and inside:
            inside = False
            if matches:
                blocks.append((start, "\n".join(body)))
        elif inside:
            body.append(line)
    return blocks


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a Markdown heading."""
    text = re.sub(r"[`*]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def page_slugs(path: Path) -> set[str]:
    slugs = set()
    inside = False
    for line in path.read_text().splitlines():
        if _FENCE.match(line):
            inside = not inside
        elif not inside and (match := _HEADING.match(line)):
            slugs.add(github_slug(match.group(1)))
    return slugs


@pytest.mark.parametrize("doc", DOCS, ids=lambda p: p.name)
def test_python_snippets_execute(doc):
    blocks = fenced_blocks(doc, "python")
    for line, body in blocks:
        namespace: dict = {}
        try:
            exec(compile(body, f"{doc.name}:{line}", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            pytest.fail(f"{doc.name} line {line}: snippet raised {exc!r}")


@pytest.mark.parametrize("page", PAGES, ids=lambda p: p.name)
def test_toml_spec_blocks_load(page):
    from repro.experiment import ExperimentSpec

    for line, body in fenced_blocks(page, "toml"):
        data = tomllib.loads(body)  # malformed TOML raises here
        if "protocol" in data and "sites" in data:
            data.setdefault("name", "doc-block")
            ExperimentSpec.from_dict(data)  # invalid specs raise here


@pytest.mark.parametrize("page", PAGES, ids=lambda p: p.name)
def test_relative_links_resolve(page):
    text = page.read_text()
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        destination = (page.parent / path_part).resolve() if path_part else page
        assert destination.exists(), f"{page.name}: broken link {target!r}"
        if anchor and destination.suffix == ".md":
            assert anchor in page_slugs(destination), (
                f"{page.name}: link {target!r} names a heading that does not "
                f"exist in {destination.name}"
            )


def test_docs_tree_is_complete():
    """The reference pages exist and README links every one of them."""
    names = {path.name for path in DOCS}
    assert {
        "ARCHITECTURE.md",
        "SPEC_REFERENCE.md",
        "PROTOCOLS.md",
        "PERFORMANCE.md",
    } <= names
    readme = (REPO / "README.md").read_text()
    for name in sorted(names):
        assert f"docs/{name}" in readme, f"README does not link docs/{name}"


def _markdown_table(path: Path, header_prefix: str) -> list[dict[str, str]]:
    """Parse the first Markdown table whose header starts with *header_prefix*."""
    lines = path.read_text().splitlines()
    start = next(
        i for i, line in enumerate(lines) if line.strip().startswith(header_prefix)
    )
    normalize_key = lambda cell: cell.strip().lower().replace(" ", "_").replace("-", "_")
    header = [normalize_key(c) for c in lines[start].strip().strip("|").split("|")]
    rows = []
    for line in lines[start + 2 :]:
        if not line.strip().startswith("|"):
            break
        cells = [re.sub(r"[`*]", "", c).strip() for c in line.strip().strip("|").split("|")]
        # "—" means no; extra prose after "yes" is ignored.
        cells = ["-" if c in ("—", "") else c.split()[0] for c in cells]
        rows.append(dict(zip(header, cells)))
    return rows


def test_protocols_capability_table_matches_registry():
    """docs/PROTOCOLS.md's capability table equals the registry's rows.

    `repro protocols` prints `capability_rows()` directly, so this single
    check pins the doc table, the CLI table, and the registry together.
    """
    from repro.protocols.registry import capability_rows

    documented = _markdown_table(REPO / "docs" / "PROTOCOLS.md", "| Protocol |")
    key_map = {"broadcast_variant": "broadcast"}
    normalized = [
        {key_map.get(key, key): value for key, value in row.items()}
        for row in documented
    ]
    assert normalized == capability_rows()
