"""Tests for cluster and protocol configuration."""

from __future__ import annotations

import pytest

from repro.config import ClusterSpec, ProtocolConfig, ReplicaSpec, validate_active_config
from repro.errors import ConfigurationError


class TestReplicaSpec:
    def test_valid(self):
        spec = ReplicaSpec(0, "CA", "127.0.0.1:9000")
        assert spec.replica_id == 0
        assert spec.site == "CA"

    def test_negative_id_rejected(self):
        with pytest.raises(ConfigurationError):
            ReplicaSpec(-1, "CA")

    def test_empty_site_rejected(self):
        with pytest.raises(ConfigurationError):
            ReplicaSpec(0, "")


class TestClusterSpec:
    def test_from_sites_assigns_sequential_ids(self):
        spec = ClusterSpec.from_sites(["CA", "VA", "IR"])
        assert spec.replica_ids == (0, 1, 2)
        assert spec.sites == ("CA", "VA", "IR")
        assert spec.size == 3

    def test_quorum_size(self):
        assert ClusterSpec.from_sites(["a", "b", "c"]).quorum_size == 2
        assert ClusterSpec.from_sites(["a", "b", "c", "d", "e"]).quorum_size == 3

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec((ReplicaSpec(0, "CA"), ReplicaSpec(0, "VA")))

    def test_duplicate_sites_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec.from_sites(["CA", "CA"])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(())

    def test_replica_lookup(self):
        spec = ClusterSpec.from_sites(["CA", "VA"])
        assert spec.replica(1).site == "VA"
        assert spec.by_site("CA").replica_id == 0
        with pytest.raises(ConfigurationError):
            spec.replica(9)
        with pytest.raises(ConfigurationError):
            spec.by_site("XX")

    def test_others(self):
        spec = ClusterSpec.from_sites(["CA", "VA", "IR"])
        assert spec.others(1) == (0, 2)
        with pytest.raises(ConfigurationError):
            spec.others(7)

    def test_with_addresses(self):
        spec = ClusterSpec.from_sites(["CA", "VA"])
        updated = spec.with_addresses({0: "host0:1", 1: "host1:2"})
        assert updated.replica(0).address == "host0:1"
        assert updated.replica(1).address == "host1:2"
        # The original is unchanged (immutability).
        assert spec.replica(0).address is None


class TestProtocolConfig:
    def test_defaults_match_paper(self):
        config = ProtocolConfig()
        assert config.clocktime_interval == 5_000  # 5 ms, the paper's Δ
        assert config.enable_clocktime_broadcast is True
        assert config.wait_for_clock is True

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"clocktime_interval": 0},
            {"clocktime_interval": -5},
            {"mencius_skip_interval": 0},
            {"failure_timeout": 0},
            {"leader": -1},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ProtocolConfig(**kwargs)


class TestValidateActiveConfig:
    def test_full_spec_is_valid(self):
        spec = ClusterSpec.from_sites(["a", "b", "c", "d", "e"])
        assert validate_active_config(spec, [4, 2, 0, 1, 3]) == (0, 1, 2, 3, 4)

    def test_majority_subset_is_valid(self):
        spec = ClusterSpec.from_sites(["a", "b", "c", "d", "e"])
        assert validate_active_config(spec, [0, 2, 4]) == (0, 2, 4)

    def test_minority_subset_rejected(self):
        spec = ClusterSpec.from_sites(["a", "b", "c", "d", "e"])
        with pytest.raises(ConfigurationError):
            validate_active_config(spec, [0, 1])

    def test_unknown_replica_rejected(self):
        spec = ClusterSpec.from_sites(["a", "b", "c"])
        with pytest.raises(ConfigurationError):
            validate_active_config(spec, [0, 1, 7])
