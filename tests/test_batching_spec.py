"""The ``[batching]`` experiment table: validation, round-trips, overrides."""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.errors import ConfigurationError
from repro.experiment import BatchingSpec, ExperimentSpec, ShardingSpec, WorkloadSpec
from repro.protocols.registry import capability_rows, protocol_capabilities
from repro.shard.deployment import shard_subspecs


def _spec(**overrides) -> ExperimentSpec:
    kwargs = dict(
        name="batching-spec-test",
        protocol="clock-rsm",
        sites=("S0", "S1", "S2"),
        latency="uniform",
        one_way_ms=0.1,
        duration_s=0.2,
        warmup_s=0.05,
    )
    kwargs.update(overrides)
    return ExperimentSpec(**kwargs)


class TestValidation:
    def test_defaults_are_the_unbatched_deployment(self):
        batching = BatchingSpec()
        assert batching.max_batch == 1
        assert batching.window_us == 0
        assert batching.pipeline_depth == 1
        assert not batching.options().enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch": 0},
            {"max_batch": -3},
            {"window_us": -1},
            {"pipeline_depth": 0},
            {"max_batch": True},
            {"max_batch": 2.5},
        ],
    )
    def test_bad_values_rejected_eagerly(self, kwargs):
        with pytest.raises(ConfigurationError):
            BatchingSpec(**kwargs)

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="batching"):
            ExperimentSpec.from_dict(
                {
                    "name": "x",
                    "protocol": "paxos",
                    "sites": ["S0", "S1", "S2"],
                    "latency": "uniform",
                    "batching": {"max_batch": 4, "windows_us": 100},
                }
            )

    def test_every_registered_protocol_supports_batching(self):
        for row in capability_rows():
            assert row["batching"] == "yes"
            assert protocol_capabilities(row["protocol"]).batching

    def test_batched_spec_accepted_for_all_protocols(self):
        for row in capability_rows():
            spec = _spec(
                protocol=row["protocol"],
                leader_site=(
                    "S0"
                    if protocol_capabilities(row["protocol"]).leader_based
                    else None
                ),
                batching=BatchingSpec(max_batch=8),
            )
            assert spec.batching.max_batch == 8


class TestRoundTrips:
    def test_dict_and_json_round_trip(self):
        spec = _spec(batching=BatchingSpec(max_batch=16, window_us=250, pipeline_depth=4))
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec
        assert ExperimentSpec.from_dict(json.loads(spec.to_json())) == spec

    def test_omitted_table_round_trips_as_none(self):
        spec = _spec()
        data = spec.to_dict()
        assert "batching" not in data
        assert ExperimentSpec.from_dict(data).batching is None

    def test_toml_file_round_trip(self, tmp_path):
        spec = _spec(batching=BatchingSpec(max_batch=8, window_us=100, pipeline_depth=2))
        data = spec.to_dict()
        lines = []
        for key in ("name", "protocol", "latency"):
            lines.append(f'{key} = "{data[key]}"')
        lines.append(f"sites = {json.dumps(list(data['sites']))}")
        lines.append(f"one_way_ms = {data['one_way_ms']}")
        lines.append(f"duration_s = {data['duration_s']}")
        lines.append(f"warmup_s = {data['warmup_s']}")
        lines.append("[batching]")
        for key, value in data["batching"].items():
            lines.append(f"{key} = {value}")
        path = tmp_path / "batched.toml"
        path.write_text("\n".join(lines) + "\n")
        loaded = ExperimentSpec.from_file(path)
        assert loaded.batching == spec.batching

    def test_sharded_subspecs_inherit_the_batching_table(self):
        spec = _spec(
            batching=BatchingSpec(max_batch=8, pipeline_depth=2),
            sharding=ShardingSpec(shards=3),
            workload=WorkloadSpec(
                scenario="saturating", outstanding_per_site=12, app="null"
            ),
        )
        subspecs = shard_subspecs(spec)
        assert len(subspecs) == 3
        assert all(sub.batching == spec.batching for sub in subspecs)


class TestCliOverride:
    def _write_spec(self, tmp_path, batching: BatchingSpec | None = None) -> str:
        spec = _spec(
            workload=WorkloadSpec(
                scenario="saturating", outstanding_per_site=8, app="null"
            ),
            batching=batching,
        )
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        return str(path)

    def test_run_batch_override(self, tmp_path, capsys):
        path = self._write_spec(tmp_path)
        assert cli_main(["run", path, "--batch", "8"]) == 0
        out = capsys.readouterr().out
        assert "total committed" in out

    def test_run_batch_one_disables_a_batched_spec(self, tmp_path, capsys):
        path = self._write_spec(tmp_path, BatchingSpec(max_batch=64))
        assert cli_main(["run", path, "--batch", "1"]) == 0

    def test_invalid_batch_override_is_a_clean_error(self, tmp_path):
        path = self._write_spec(tmp_path)
        with pytest.raises(SystemExit, match="error: "):
            cli_main(["run", path, "--batch", "0"])

    def test_protocols_table_lists_batching_column(self, capsys):
        assert cli_main(["protocols"]) == 0
        out = capsys.readouterr().out
        assert "batching" in out
        assert "clock-rsm" in out
