"""Spec error paths around sharding, faults, latency — and round-trips.

Every malformed input must be rejected at construction with a
:class:`~repro.errors.ConfigurationError` (never a bare TypeError/KeyError
deep in a backend), and every valid sharded spec must round-trip through
dictionaries, JSON, and TOML files unchanged.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiment import (
    ExperimentSpec,
    ShardingSpec,
    ShardOverride,
    WorkloadSpec,
)

BASE = {
    "name": "spec-errors",
    "protocol": "clock-rsm",
    "sites": ["CA", "VA", "IR"],
}


def build(**extra):
    return ExperimentSpec.from_dict({**BASE, **extra})


def rejected(match: str, **extra) -> None:
    with pytest.raises(ConfigurationError, match=match):
        build(**extra)


class TestMalformedShardingTables:
    def test_sharding_must_be_a_table(self):
        rejected("sharding must be a table", sharding=4)

    def test_unknown_sharding_keys(self):
        rejected("unknown keys in sharding", sharding={"shards": 2, "replicas": 5})

    def test_zero_and_negative_shards(self):
        rejected("shards must be >= 1", sharding={"shards": 0})
        rejected("shards must be >= 1", sharding={"shards": -3})

    def test_non_integer_shards(self):
        rejected("shards must be an integer", sharding={"shards": 2.5})
        rejected("shards must be an integer", sharding={"shards": True})

    def test_unknown_placement(self):
        rejected("unknown placement", sharding={"shards": 2, "placement": "zodiac"})

    def test_overrides_must_be_a_list_of_tables(self):
        rejected("overrides must be a list", sharding={"shards": 2, "overrides": "s0"})
        rejected(
            "sharding.overrides\\[0\\] must be a table",
            sharding={"shards": 2, "overrides": [3]},
        )

    def test_override_unknown_keys(self):
        rejected(
            "unknown keys in sharding.overrides",
            sharding={"shards": 2, "overrides": [{"shard": 0, "sites": ["CA"]}]},
        )

    def test_override_out_of_range_and_duplicates(self):
        rejected(
            "only 2 shards",
            sharding={"shards": 2, "overrides": [{"shard": 2, "seed": 1}]},
        )
        rejected(
            "duplicate overrides",
            sharding={
                "shards": 2,
                "overrides": [{"shard": 0, "seed": 1}, {"shard": 0, "seed": 2}],
            },
        )

    def test_override_without_content_rejected(self):
        rejected(
            "neither seed nor protocol",
            sharding={"shards": 2, "overrides": [{"shard": 1}]},
        )

    def test_override_unknown_protocol(self):
        rejected(
            "unknown protocol",
            sharding={"shards": 2, "overrides": [{"shard": 0, "protocol": "raft"}]},
        )

    def test_rejoin_fault_incompatible_with_override_protocol(self):
        rejected(
            "does not support reconfiguration",
            sharding={"shards": 2, "overrides": [{"shard": 1, "protocol": "paxos"}]},
            faults=[
                {"kind": "crash", "at_s": 0.5, "site": "IR"},
                {"kind": "recover", "at_s": 1.0, "site": "IR", "rejoin": True},
            ],
        )


class TestUnknownFaultKinds:
    def test_unknown_fault_kind(self):
        rejected("unknown fault kind", faults=[{"kind": "meteor", "at_s": 1, "site": "CA"}])

    def test_fault_kind_typo_lists_valid_kinds(self):
        with pytest.raises(ConfigurationError, match="clock-jump"):
            build(faults=[{"kind": "clockjump", "at_s": 1, "site": "CA"}])

    def test_fault_field_cross_rules(self):
        rejected("needs a peer", faults=[{"kind": "partition", "at_s": 1, "site": "CA"}])
        rejected(
            "non-zero offset_ms", faults=[{"kind": "clock-jump", "at_s": 1, "site": "CA"}]
        )
        rejected(
            "only applies to clock-jump",
            faults=[{"kind": "crash", "at_s": 1, "site": "CA", "offset_ms": 5.0}],
        )


class TestBadLatencyMatrices:
    def test_unknown_latency_model(self):
        rejected("unknown latency model", latency="starlink")

    def test_ec2_latency_requires_ec2_sites(self):
        with pytest.raises(ConfigurationError, match="not EC2 sites"):
            ExperimentSpec.from_dict(
                {**BASE, "sites": ["CA", "VA", "MOON"], "latency": "ec2"}
            )

    def test_uniform_latency_rejects_negative_delay(self):
        rejected("one_way_ms must be non-negative", latency="uniform", one_way_ms=-1.0)

    def test_jitter_fraction_bounds(self):
        rejected("jitter_fraction", jitter_fraction=1.5)


class TestShardedRoundTrip:
    def sharded(self) -> ExperimentSpec:
        return ExperimentSpec(
            name="round-trip",
            protocol="clock-rsm",
            sites=("CA", "VA", "IR"),
            workload=WorkloadSpec(clients_per_site=6, think_time_max_ms=40.0),
            duration_s=1.0,
            warmup_s=0.2,
            sharding=ShardingSpec(
                shards=4,
                placement="range",
                overrides=(
                    ShardOverride(shard=1, seed=99),
                    ShardOverride(shard=3, protocol="mencius"),
                ),
            ),
        )

    def test_dict_round_trip(self):
        spec = self.sharded()
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self, tmp_path):
        spec = self.sharded()
        path = tmp_path / "sharded.json"
        path.write_text(spec.to_json())
        assert ExperimentSpec.from_file(path) == spec

    def test_toml_round_trip(self, tmp_path):
        spec = self.sharded()
        data = spec.to_dict()
        lines = [
            f"name = {json.dumps(data['name'])}",
            f"protocol = {json.dumps(data['protocol'])}",
            f"sites = {json.dumps(data['sites'])}",
            f"duration_s = {data['duration_s']}",
            f"warmup_s = {data['warmup_s']}",
            "[workload]",
            *(f"{key} = {json.dumps(value)}" for key, value in data["workload"].items()),
            "[sharding]",
            f"shards = {data['sharding']['shards']}",
            f"placement = {json.dumps(data['sharding']['placement'])}",
            *(
                "[[sharding.overrides]]\n"
                + "\n".join(f"{key} = {json.dumps(value)}" for key, value in entry.items())
                for entry in data["sharding"]["overrides"]
            ),
        ]
        path = tmp_path / "sharded.toml"
        path.write_text("\n".join(lines) + "\n")
        assert ExperimentSpec.from_file(path) == spec

    def test_unsharded_spec_omits_the_table(self):
        spec = ExperimentSpec(**{**BASE, "sites": tuple(BASE["sites"])})
        assert "sharding" not in spec.to_dict()

    def test_shipped_sharded_example_loads(self):
        from pathlib import Path

        path = (
            Path(__file__).resolve().parent.parent
            / "examples" / "specs" / "sharded_hash_4.toml"
        )
        spec = ExperimentSpec.from_file(path)
        assert spec.sharding is not None and spec.sharding.shards == 4
        assert spec.sharding.protocol_for(3, spec.protocol) == "mencius"
        assert spec.sharding.seed_for(0, spec.seed) == spec.seed
