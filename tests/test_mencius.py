"""Unit tests for the Mencius and Mencius-bcast baselines."""

from __future__ import annotations

import pytest

from repro.clocks.base import ManualClock
from repro.config import ClusterSpec, ProtocolConfig
from repro.protocols.base import Broadcast, ClientReply, Send
from repro.protocols.mencius import (
    MenciusAck,
    MenciusCommit,
    MenciusReplica,
    SkipAnnounce,
    Suggest,
)
from repro.protocols.mencius_bcast import MenciusBcastReplica
from repro.statemachine import AppendLogStateMachine
from repro.storage.memory_log import InMemoryLog
from repro.types import Command, CommandId


def build(cls, replica_id: int, n: int = 3):
    spec = ClusterSpec.from_sites([f"dc{i}" for i in range(n)])
    return cls(
        replica_id,
        spec,
        clock=ManualClock(0),
        log=InMemoryLog(),
        state_machine=AppendLogStateMachine(),
        config=ProtocolConfig(),
    )


def cmd(seq: int) -> Command:
    return Command(CommandId("client", seq), b"v")


def only(actions, kind):
    return [a for a in actions if isinstance(a, kind)]


class TestSlotOwnership:
    def test_round_robin_ownership(self):
        replica = build(MenciusReplica, 1, n=3)
        assert replica.owner_of(0) == 0
        assert replica.owner_of(1) == 1
        assert replica.owner_of(2) == 2
        assert replica.owner_of(4) == 1

    def test_replica_uses_its_own_slots_in_order(self):
        replica = build(MenciusReplica, 1, n=3)
        s1 = only(replica.on_client_request(cmd(1)), Broadcast)[0].message
        s2 = only(replica.on_client_request(cmd(2)), Broadcast)[0].message
        assert isinstance(s1, Suggest) and isinstance(s2, Suggest)
        assert (s1.slot, s2.slot) == (1, 4)
        assert s2.skip_until == 7


class TestSkipping:
    def test_receiver_skips_its_earlier_slots(self):
        # Replica 0 owns slot 0; a suggest for slot 4 forces it to skip 0 and 3.
        replica = build(MenciusReplica, 0, n=3)
        actions = replica.on_message(1, Suggest(4, cmd(1), 7))
        assert replica.next_own_slot == 6
        ack = only(actions, Send)[0].message
        assert isinstance(ack, MenciusAck)
        assert ack.skip_until == 6
        # Classic Mencius additionally announces fresh skips to everyone.
        announces = [a for a in only(actions, Broadcast) if isinstance(a.message, SkipAnnounce)]
        assert len(announces) == 1

    def test_bcast_variant_piggybacks_skips_on_broadcast_acks(self):
        replica = build(MenciusBcastReplica, 0, n=3)
        actions = replica.on_message(1, Suggest(4, cmd(1), 7))
        acks = [a for a in only(actions, Broadcast) if isinstance(a.message, MenciusAck)]
        assert len(acks) == 1
        assert acks[0].message.skip_until == 6
        assert [a for a in only(actions, Broadcast) if isinstance(a.message, SkipAnnounce)] == []

    def test_no_skip_needed_when_suggest_is_later_than_own_frontier(self):
        replica = build(MenciusReplica, 2, n=3)
        replica.on_client_request(cmd(1))  # uses slot 2, frontier moves to 5
        actions = replica.on_message(0, Suggest(3, cmd(2), 6))
        assert replica.next_own_slot == 5
        announces = [a for a in only(actions, Broadcast) if isinstance(a.message, SkipAnnounce)]
        assert announces == []

    def test_skip_knowledge_from_suggest_messages(self):
        replica = build(MenciusReplica, 2, n=3)
        replica.on_message(1, Suggest(7, cmd(1), 10))
        assert replica.skip_until[1] == 10


class TestCommitAndExecution:
    def test_coordinator_commits_with_majority_and_known_skips(self):
        origin = build(MenciusBcastReplica, 0, n=3)
        suggest = only(origin.on_client_request(cmd(1)), Broadcast)[0].message
        assert suggest.slot == 0
        # One ack completes the majority (origin counts itself).
        actions = origin.on_message(1, MenciusAck(0, 3))
        assert origin.executed_count == 1
        assert len(only(actions, ClientReply)) == 1

    def test_execution_blocked_until_earlier_slots_are_resolved(self):
        # Replica 1's command lands in slot 1; slot 0 belongs to replica 0 and
        # is unresolved until replica 0's skip promise is known.
        origin = build(MenciusBcastReplica, 1, n=3)
        origin.on_client_request(cmd(1))
        origin.on_message(2, MenciusAck(1, 5))
        assert origin.executed_count == 0  # slot 0 might still be used
        origin.on_message(0, MenciusAck(1, 3))  # replica 0 skipped past slot 0
        assert origin.executed_count == 1

    def test_delayed_commit_by_concurrent_earlier_command(self):
        # The paper's delayed-commit problem: replica 1's command in slot 1
        # cannot execute until replica 0's concurrent command in slot 0 does.
        origin = build(MenciusBcastReplica, 1, n=3)
        origin.on_client_request(cmd(1))
        origin.on_message(2, MenciusAck(1, 5))
        # Slot 1 has a majority, but the concurrent command occupying slot 0
        # has not arrived yet, so slot 1's commit is delayed (by up to one
        # one-way delay in the paper's analysis).
        assert origin.executed_count == 0
        # Replica 0 did not skip: its own command arrives for slot 0.  The
        # local copy plus the coordinator's form a majority, so both slots
        # now execute in order.
        origin.on_message(0, Suggest(0, cmd(2), 3))
        assert origin.executed_count == 2
        assert origin.execution_order[0] == CommandId("client", 2)
        assert origin.execution_order[1] == CommandId("client", 1)

    def test_classic_mencius_needs_commit_notification(self):
        follower = build(MenciusReplica, 2, n=3)
        follower.on_message(0, Suggest(0, cmd(1), 3))
        assert follower.executed_count == 0
        follower.on_message(1, MenciusAck(0, 4))  # acks are not for us to count
        assert follower.executed_count == 0
        follower.on_message(0, MenciusCommit(0))
        assert follower.executed_count == 1

    def test_classic_mencius_coordinator_broadcasts_commit(self):
        origin = build(MenciusReplica, 0, n=3)
        origin.on_client_request(cmd(1))
        actions = origin.on_message(1, MenciusAck(0, 4))
        commits = [a for a in only(actions, Broadcast) if isinstance(a.message, MenciusCommit)]
        assert len(commits) == 1
        assert origin.executed_count == 1

    def test_five_replica_quorum(self):
        origin = build(MenciusBcastReplica, 0, n=5)
        origin.on_client_request(cmd(1))
        origin.on_message(1, MenciusAck(0, 6))
        assert origin.executed_count == 0  # only 2 of 5 so far
        origin.on_message(2, MenciusAck(0, 7))
        assert origin.executed_count == 1

    def test_protocol_names(self):
        assert build(MenciusReplica, 0).protocol_name == "mencius"
        assert build(MenciusBcastReplica, 0).protocol_name == "mencius-bcast"
