"""Sharded deployments: fan-out semantics, both backends, checking, CLI."""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.checker.history import OpHistory
from repro.cli import main
from repro.errors import ConfigurationError
from repro.experiment import (
    Deployment,
    ExperimentSpec,
    FaultSpec,
    ShardingSpec,
    ShardOverride,
    WorkloadSpec,
    check_spec,
    run_spec,
)
from repro.shard import ShardRouter, ShardedKVClient
from repro.shard.check import ShardedCheckReport, client_order_violation
from repro.shard.deployment import ShardedDeployment, shard_subspecs
from repro.types import CommandId


def sharded(shards=2, **kwargs) -> ExperimentSpec:
    defaults = dict(
        name="shard-test",
        protocol="clock-rsm",
        sites=("CA", "VA", "IR"),
        workload=WorkloadSpec(clients_per_site=4, think_time_max_ms=30.0),
        duration_s=0.8,
        warmup_s=0.2,
        seed=5,
        sharding=ShardingSpec(shards=shards),
    )
    defaults.update(kwargs)
    return ExperimentSpec(**defaults)


class TestSubspecFanOut:
    def test_partitions_the_client_population(self):
        spec = sharded(shards=3, workload=WorkloadSpec(clients_per_site=8))
        subs = shard_subspecs(spec)
        assert [sub.workload.clients_per_site for sub in subs] == [3, 3, 2]
        assert sum(sub.workload.clients_per_site for sub in subs) == 8

    def test_every_shard_gets_at_least_one_client(self):
        spec = sharded(shards=4, workload=WorkloadSpec(clients_per_site=2))
        assert [s.workload.clients_per_site for s in shard_subspecs(spec)] == [1, 1, 1, 1]

    def test_names_seeds_and_sharding_stripped(self):
        subs = shard_subspecs(sharded(shards=2, seed=10))
        assert [sub.name for sub in subs] == ["shard-test/shard0", "shard-test/shard1"]
        assert [sub.seed for sub in subs] == [10, 11]
        assert all(sub.sharding is None for sub in subs)

    def test_overrides_apply(self):
        spec = sharded(
            shards=3,
            sharding=ShardingSpec(
                shards=3,
                overrides=(
                    ShardOverride(shard=1, seed=77),
                    ShardOverride(shard=2, protocol="paxos"),
                ),
            ),
        )
        subs = shard_subspecs(spec)
        assert subs[1].seed == 77
        assert subs[2].protocol == "paxos"
        # with_protocol gives the leader-based override a default leader.
        assert subs[2].leader_site == "CA"
        assert subs[0].protocol == subs[1].protocol == "clock-rsm"

    def test_faults_apply_to_every_shard(self):
        fault = FaultSpec(kind="crash", at_s=0.5, site="IR")
        subs = shard_subspecs(sharded(shards=2, faults=(fault,)))
        assert all(sub.faults == (fault,) for sub in subs)

    def test_single_group_spec_passes_through(self):
        spec = sharded(shards=1)
        subs = shard_subspecs(spec)
        assert len(subs) == 1 and subs[0].name == "shard-test"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            ShardedDeployment(sharded(), backend="fpga")

    def test_sim_backend_rejects_options(self):
        with pytest.raises(ConfigurationError, match="invalid options"):
            ShardedDeployment(sharded(), backend="sim", time_scale=5)


class TestSimShardedRuns:
    def test_aggregate_sums_shards_and_sites(self):
        result = Deployment(sharded(shards=2)).run()
        assert result.shards is not None and len(result.shards) == 2
        assert result.total_committed == sum(
            shard.total_committed for shard in result.shards
        )
        assert result.throughput_kops == pytest.approx(
            sum(shard.throughput_kops for shard in result.shards)
        )
        for site in ("CA", "VA", "IR"):
            assert result.sites[site].committed == sum(
                shard.sites[site].committed for shard in result.shards
            )
            merged = result.sites[site].summary
            assert merged is not None
            assert merged.count == sum(
                shard.sites[site].summary.count
                for shard in result.shards
                if shard.sites[site].summary is not None
            )
            assert merged.min_ms <= merged.p50_ms <= merged.max_ms
        assert result.metadata["shards"] == 2
        assert [entry["shard"] for entry in result.metadata["per_shard"]] == [0, 1]

    def test_sharded_sim_runs_are_deterministic(self):
        first = Deployment(sharded(shards=2)).run()
        second = Deployment(sharded(shards=2)).run()
        assert first.total_committed == second.total_committed
        assert [shard.total_committed for shard in first.shards] == [
            shard.total_committed for shard in second.shards
        ]

    def test_per_shard_seed_override_changes_the_sim_run(self):
        """A [sharding] seed override is never a silent no-op: the shared
        scheduler's stream mixes every shard's seed."""
        base = Deployment(sharded(shards=2)).run()
        overridden = Deployment(
            sharded(
                shards=2,
                sharding=ShardingSpec(
                    shards=2, overrides=(ShardOverride(shard=1, seed=9999),)
                ),
            )
        ).run()
        # Committed counts are latency-dominated and may coincide; the
        # per-site latency samples cannot (different jitter/think streams).
        base_means = [base.sites[site].summary.mean_ms for site in base.sites]
        overridden_means = [
            overridden.sites[site].summary.mean_ms for site in overridden.sites
        ]
        assert base_means != overridden_means

    def test_merged_cdf_is_a_cdf(self):
        result = Deployment(sharded(shards=2, cdf_sites=("CA",))).run()
        cdf = result.sites["CA"].cdf_ms
        assert cdf is not None and len(cdf) > 1
        values = [value for value, _fraction in cdf]
        fractions = [fraction for _value, fraction in cdf]
        assert values == sorted(values)
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)

    def test_unsharded_result_has_no_shards(self):
        assert run_spec(sharded(shards=1)).shards is None

    def test_mixed_protocols_per_shard(self):
        spec = sharded(
            shards=2,
            sharding=ShardingSpec(
                shards=2, overrides=(ShardOverride(shard=1, protocol="mencius"),)
            ),
        )
        result = Deployment(spec).run()
        assert [shard.protocol for shard in result.shards] == ["clock-rsm", "mencius"]
        assert all(shard.total_committed > 0 for shard in result.shards)


class TestAsyncShardedRuns:
    def test_concurrent_clusters_in_one_loop(self):
        spec = sharded(
            shards=2,
            duration_s=0.6,
            workload=WorkloadSpec(clients_per_site=2, think_time_max_ms=20.0),
        )
        result = Deployment(spec, backend="async", time_scale=50).run()
        assert result.backend == "async"
        assert len(result.shards) == 2
        assert result.total_committed == sum(
            shard.total_committed for shard in result.shards
        )
        assert result.total_committed > 0

    def test_cpu_model_still_rejected(self):
        from repro.experiment import CpuSpec

        spec = sharded(cpu=CpuSpec())
        with pytest.raises(ConfigurationError, match="no CPU cost model"):
            Deployment(spec, backend="async", time_scale=50).run()


class TestShardedChecking:
    @pytest.mark.parametrize(
        "backend,options",
        [("sim", {}), ("async", {"time_scale": 50, "submit_timeout": 5.0})],
    )
    def test_check_spec_dispatches_per_shard(self, backend, options):
        run = check_spec(sharded(shards=2), backend=backend, **options)
        assert isinstance(run.report, ShardedCheckReport)
        assert run.linearizable, run.report.violation
        assert len(run.report.shard_reports) == 2
        assert "every shard" in run.describe()
        payload = run.to_dict()
        assert payload["check"]["linearizable"] is True
        assert payload["check"]["client_order_ok"] is True
        assert len(payload["check"]["shards"]) == 2

    def test_client_order_violation_detected(self):
        history = OpHistory()
        history.invoke(CommandId("c", 1), 0, b"p", 10)
        history.complete(CommandId("c", 1), None, 100)
        other = OpHistory()  # same client, op 2 on another shard, overlapping
        other.invoke(CommandId("c", 2), 0, b"p", 50)
        other.complete(CommandId("c", 2), None, 120)
        violation = client_order_violation([history, other])
        assert violation is not None and "'c'" in violation

    def test_sequential_clients_pass(self):
        history = OpHistory()
        history.invoke(CommandId("c", 1), 0, b"p", 10)
        history.complete(CommandId("c", 1), None, 100)
        history.invoke(CommandId("c", 2), 0, b"p", 100)
        assert client_order_violation([history]) is None

    def test_open_loop_clients_only_need_submission_order(self):
        # One open-loop client keeps two ops outstanding: op 2 is invoked
        # before op 1 returns.  The sequential (closed-loop) condition flags
        # that; the open-loop condition accepts it because seqnos were
        # assigned in submission order.
        history = OpHistory()
        history.invoke(CommandId("c", 1), 0, b"p", 10)
        history.complete(CommandId("c", 1), None, 100)
        other = OpHistory()
        other.invoke(CommandId("c", 2), 0, b"p", 50)
        other.complete(CommandId("c", 2), None, 120)
        assert client_order_violation([history, other], closed_loop=True) is not None
        assert client_order_violation([history, other], closed_loop=False) is None

    def test_open_loop_check_still_catches_submission_reorder(self):
        history = OpHistory()
        history.invoke(CommandId("c", 2), 0, b"p", 10)  # seqno 2 submitted first
        history.invoke(CommandId("c", 1), 0, b"p", 50)
        violation = client_order_violation([history], closed_loop=False)
        assert violation is not None and "submission order" in violation

    def test_spec_is_closed_loop_detection(self):
        from repro.experiment import BatchingSpec
        from repro.shard.check import spec_is_closed_loop

        base = sharded()
        assert spec_is_closed_loop(base)
        saturating = replace(
            base, workload=WorkloadSpec(scenario="saturating", outstanding_per_site=4)
        )
        assert not spec_is_closed_loop(saturating)
        pipelined = replace(base, batching=BatchingSpec(max_batch=8, pipeline_depth=2))
        assert not spec_is_closed_loop(pipelined)
        batched_only = replace(base, batching=BatchingSpec(max_batch=8))
        assert spec_is_closed_loop(batched_only)

    def test_batched_saturating_sharded_checks_clean(self):
        """Regression for the PR-4 gap: a sharded saturating+batched spec
        false-flagged on the cross-shard client-order pass because the window
        of outstanding commands violates the closed-loop assumption."""
        from pathlib import Path

        path = (
            Path(__file__).resolve().parent.parent
            / "examples"
            / "specs"
            / "batched_saturating.toml"
        )
        spec = replace(
            ExperimentSpec.from_file(path),
            sharding=ShardingSpec(shards=2),
            duration_s=0.3,
            warmup_s=0.05,
        )
        run = check_spec(spec, backend="sim")
        assert isinstance(run.report, ShardedCheckReport)
        assert not run.report.closed_loop
        assert run.linearizable, run.report.violation
        assert run.to_dict()["check"]["client_order_mode"] == "open-loop"

    def test_report_surfaces_shard_violations(self):
        from repro.checker.linearizability import CheckReport

        good = CheckReport(
            linearizable=True, method="total-order", ops=5,
            completed=5, pending=0, failed=0, keys=2,
        )
        bad = replace(good, linearizable=False, violation="stale read")
        report = ShardedCheckReport(shard_reports=[good, bad])
        assert not report.linearizable
        assert "shard 1" in report.violation
        report = ShardedCheckReport(shard_reports=[good], client_order="oops")
        assert not report.linearizable
        assert "client order" in report.violation


class TestShardedKVClient:
    def test_router_cluster_mismatch_rejected(self):
        from repro.experiment.sim_backend import SimBackend
        from repro.sim.environment import SimulationEnvironment

        backend = SimBackend()
        env = SimulationEnvironment(seed=1)
        spec = sharded(shards=2, workload=WorkloadSpec(clients_per_site=1, app="kv"))
        clusters = [backend.build_cluster(sub, env=env) for sub in shard_subspecs(spec)]
        with pytest.raises(ConfigurationError, match="expects 3 shards"):
            ShardedKVClient(clusters, router=ShardRouter(3))

    def test_routes_and_merges(self):
        from repro.experiment.sim_backend import SimBackend
        from repro.sim.environment import SimulationEnvironment

        backend = SimBackend()
        env = SimulationEnvironment(seed=1)
        spec = sharded(shards=2, workload=WorkloadSpec(clients_per_site=1, app="kv"))
        clusters = [backend.build_cluster(sub, env=env) for sub in shard_subspecs(spec)]
        client = ShardedKVClient(clusters)
        keys = [f"key-{index}" for index in range(12)]
        for index, key in enumerate(keys):
            assert client.put(key, str(index).encode()) is None
        assert client.get_many(keys) == {
            key: str(index).encode() for index, key in enumerate(keys)
        }
        assert client.delete(keys[0]) is True
        assert client.get(keys[0]) is None
        # Per-key single-shard residency: each key lives exactly on the
        # state machines of the shard the router names.
        router = client.router
        for key in keys[1:]:
            owning_shard = router.shard_of(key)
            for shard, cluster in enumerate(clusters):
                stored = cluster.state_machine(0).get(key)
                if shard == owning_shard:
                    assert stored is not None
                else:
                    assert stored is None

    def test_session_is_one_client_spanning_shards(self):
        """The whole sharded client records as ONE sequential client, so the
        cross-shard client-order pass actually spans shards."""
        from repro.experiment.sim_backend import SimBackend
        from repro.shard.check import client_order_violation, split_history
        from repro.sim.environment import SimulationEnvironment

        backend = SimBackend()
        env = SimulationEnvironment(seed=2)
        spec = sharded(shards=2, workload=WorkloadSpec(clients_per_site=1, app="kv"))
        clusters = [backend.build_cluster(sub, env=env) for sub in shard_subspecs(spec)]
        history = OpHistory()
        client = ShardedKVClient(clusters, history=history)
        for index in range(10):
            client.put(f"key-{index}", b"v")
        assert {op.client for op in history} == {client.name}
        assert [op.seqno for op in history] == list(range(1, 11))
        parts = split_history(history, client.router)
        # Ops really spread over both shards under one client identity.
        assert all(len(part) > 0 for part in parts.values())
        assert client_order_violation(list(parts.values())) is None


class TestShardedCli:
    def spec_path(self, tmp_path, **kwargs):
        spec = sharded(**kwargs)
        path = tmp_path / "sharded.json"
        path.write_text(spec.to_json())
        return str(path)

    def test_run_with_shards_override(self, capsys, tmp_path):
        path = self.spec_path(tmp_path, shards=1, duration_s=0.5)
        assert main(["run", path, "--shards", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metadata"]["shards"] == 2
        assert len(payload["shards"]) == 2

    def test_shards_override_never_drops_spec_overrides(self, tmp_path):
        """Shrinking --shards below an override's index is an error, not a
        silently different deployment."""
        spec = sharded(
            shards=4,
            sharding=ShardingSpec(
                shards=4, overrides=(ShardOverride(shard=3, protocol="mencius"),)
            ),
        )
        path = tmp_path / "overridden.json"
        path.write_text(spec.to_json())
        with pytest.raises(SystemExit, match="only 3 shards"):
            main(["run", str(path), "--shards", "3"])

    def test_check_sharded_spec(self, capsys, tmp_path):
        path = self.spec_path(tmp_path, shards=2, duration_s=0.5)
        assert main(["check", path]) == 0
        assert "every shard" in capsys.readouterr().out

    def test_protocols_subcommand(self, capsys):
        assert main(["protocols"]) == 0
        output = capsys.readouterr().out
        for protocol in ("clock-rsm", "paxos", "paxos-bcast", "mencius", "mencius-bcast"):
            assert protocol in output
        assert "reconfiguration" in output

    def test_help_lists_registries(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--help"])
        output = capsys.readouterr().out
        assert "protocols: clock-rsm, mencius, mencius-bcast, paxos, paxos-bcast" in output
        assert "workload scenarios: balanced, imbalanced, saturating" in output
        assert "backends: async, proc, sim" in output
