"""Tests for the workload generators."""

from __future__ import annotations

import pytest

from repro.kvstore.commands import decode_op, random_update
from repro.metrics.collector import LatencyCollector
from repro.workload.generator import ClosedLoopClients, SaturatingClients, WorkloadOptions
from repro.workload.scenarios import balanced_workload, imbalanced_workload
from repro.types import ms_to_micros, seconds_to_micros

from tests.helpers import make_cluster


class TestWorkloadOptions:
    def test_defaults_match_paper(self):
        options = WorkloadOptions()
        assert options.clients_per_replica == 40
        assert options.payload_size == 64
        assert options.think_time_min == 0
        assert options.think_time_max == ms_to_micros(80.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"clients_per_replica": 0},
            {"payload_size": -1},
            {"think_time_min": 100, "think_time_max": 50},
            {"payload_factory": 42},
        ],
    )
    def test_invalid_options_rejected(self, kwargs):
        with pytest.raises(ValueError):
            WorkloadOptions(**kwargs)


class TestClosedLoopClients:
    def test_each_client_keeps_one_command_outstanding(self):
        cluster = make_cluster("clock-rsm", uniform_one_way=10_000, seed=3)
        collector = LatencyCollector()
        options = WorkloadOptions(clients_per_replica=5, think_time_min=0, think_time_max=1_000)
        generator = ClosedLoopClients(cluster, replica_id=0, options=options, collector=collector)
        generator.start()
        cluster.run_for(seconds_to_micros(1.0))
        # Outstanding commands never exceed the number of clients.
        assert collector.outstanding <= 5
        assert generator.submitted > 5  # clients cycled several times
        assert generator.completed >= generator.submitted - 5

    def test_stop_prevents_new_submissions(self):
        cluster = make_cluster("clock-rsm", uniform_one_way=1_000, seed=3)
        generator = ClosedLoopClients(
            cluster, 0, WorkloadOptions(clients_per_replica=3, think_time_max=1_000)
        )
        generator.start()
        cluster.run_for(200_000)
        generator.stop()
        submitted = generator.submitted
        cluster.run_for(500_000)
        assert generator.submitted == submitted

    def test_payload_factory_generates_kv_updates(self):
        cluster = make_cluster("clock-rsm", uniform_one_way=1_000, seed=3, use_kv=True)
        options = WorkloadOptions(
            clients_per_replica=2,
            think_time_max=1_000,
            payload_factory=lambda rng: random_update(rng, key_space=5, value_size=16),
        )
        generator = ClosedLoopClients(cluster, 0, options)
        generator.start()
        cluster.run_for(100_000)
        machine = cluster.state_machine(0)
        assert machine.applied_count > 0
        assert all(key.startswith("key-") for key in machine.keys())

    def test_latency_measurements_exclude_warmup(self):
        cluster = make_cluster("clock-rsm", uniform_one_way=5_000, seed=3)
        collector = LatencyCollector(warmup_until=300_000)
        generator = ClosedLoopClients(
            cluster, 0, WorkloadOptions(clients_per_replica=3, think_time_max=10_000), collector
        )
        generator.start()
        cluster.run_for(seconds_to_micros(1.0))
        assert generator.completed > collector.count()


class TestSaturatingClients:
    def test_window_is_maintained(self):
        cluster = make_cluster("clock-rsm", uniform_one_way=2_000, seed=5)
        collector = LatencyCollector()
        generator = SaturatingClients(cluster, 0, payload_size=32, window=8, collector=collector)
        generator.start()
        cluster.run_for(300_000)
        assert collector.outstanding <= 8
        assert generator.completed > 8

    def test_multiple_replicas_saturate_independently(self):
        cluster = make_cluster("paxos-bcast", uniform_one_way=2_000, seed=5)
        generators = [
            SaturatingClients(cluster, rid, payload_size=16, window=4)
            for rid in cluster.spec.replica_ids
        ]
        for generator in generators:
            generator.start()
        cluster.run_for(300_000)
        assert all(g.completed > 0 for g in generators)
        cluster.assert_consistent_order()


class TestScenarios:
    def test_balanced_workload_measures_every_site(self):
        cluster = make_cluster("clock-rsm", seed=8)
        handle = balanced_workload(
            cluster, WorkloadOptions(clients_per_replica=3, think_time_max=20_000)
        )
        cluster.run_for(seconds_to_micros(2.0))
        handle.stop()
        assert set(handle.collector.summaries()) == set(cluster.spec.replica_ids)

    def test_imbalanced_workload_measures_only_the_origin(self):
        cluster = make_cluster("clock-rsm", seed=8)
        handle = imbalanced_workload(
            cluster, origin=2, options=WorkloadOptions(clients_per_replica=3, think_time_max=20_000)
        )
        cluster.run_for(seconds_to_micros(2.0))
        handle.stop()
        assert set(handle.collector.summaries()) == {2}
