"""Unit and property tests for the Clock-RSM soft state and commit rule."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.state import ClockRsmState, CommitStatus, PendingCommand
from repro.types import Command, CommandId, Timestamp


def _pending(micros: int, replica: int, seq: int = 1) -> PendingCommand:
    command = Command(CommandId(f"client-{replica}", seq), b"x")
    return PendingCommand(command, Timestamp(micros, replica), replica)


def _state(n: int = 3) -> ClockRsmState:
    return ClockRsmState(active_config=range(n), quorum_size=n // 2 + 1)


class TestPendingBookkeeping:
    def test_min_pending_follows_timestamp_order(self):
        state = _state()
        state.add_pending(_pending(300, 1))
        state.add_pending(_pending(100, 2))
        state.add_pending(_pending(200, 0))
        assert state.min_pending().ts == Timestamp(100, 2)
        state.remove_pending(Timestamp(100, 2))
        assert state.min_pending().ts == Timestamp(200, 0)
        assert state.pending_count() == 2

    def test_duplicate_add_is_idempotent(self):
        state = _state()
        state.add_pending(_pending(100, 0))
        state.add_pending(_pending(100, 0))
        assert state.pending_count() == 1

    def test_pending_commands_sorted(self):
        state = _state()
        for micros in (50, 10, 30):
            state.add_pending(_pending(micros, 0, seq=micros))
        assert [p.ts.micros for p in state.pending_commands()] == [10, 30, 50]

    def test_drop_pending_above(self):
        state = _state()
        for micros in (10, 20, 30, 40):
            state.add_pending(_pending(micros, 0, seq=micros))
        dropped = state.drop_pending_above(Timestamp(20, 0))
        assert sorted(p.ts.micros for p in dropped) == [30, 40]
        assert state.pending_count() == 2

    def test_remove_unknown_returns_none(self):
        assert _state().remove_pending(Timestamp(1, 0)) is None


class TestAcks:
    def test_ack_counting_deduplicates_replicas(self):
        state = _state()
        ts = Timestamp(10, 0)
        assert state.record_ack(ts, 0) == 1
        assert state.record_ack(ts, 1) == 2
        assert state.record_ack(ts, 1) == 2  # duplicate PREPAREOK
        assert state.ack_count(ts) == 2
        assert state.ackers(ts) == frozenset({0, 1})

    def test_acks_may_arrive_before_prepare(self):
        state = _state()
        ts = Timestamp(10, 1)
        state.record_ack(ts, 2)
        state.add_pending(_pending(10, 1))
        assert state.ack_count(ts) == 1


class TestLatestTv:
    def test_observe_clock_keeps_maximum(self):
        state = _state()
        state.observe_clock(1, 100)
        state.observe_clock(1, 50)
        assert state.latest_tv[1] == 100

    def test_observe_unknown_replica_is_ignored(self):
        state = _state()
        state.observe_clock(99, 100)
        assert 99 not in state.latest_tv

    def test_min_latest_and_stability(self):
        state = _state()
        state.observe_clock(0, 100)
        state.observe_clock(1, 150)
        assert state.min_latest() == 0  # replica 2 has not been heard from
        state.observe_clock(2, 120)
        assert state.min_latest() == 100
        assert state.stable_up_to(Timestamp(100, 0))
        assert not state.stable_up_to(Timestamp(101, 0))

    def test_resize_config_preserves_known_entries(self):
        state = _state()
        state.observe_clock(1, 500)
        state.resize_config([0, 1])
        assert state.latest_tv == {0: 0, 1: 500}
        state.resize_config([0, 1, 2])
        assert state.latest_tv[2] == 0


class TestCommitRule:
    def test_all_three_conditions_required(self):
        state = _state(3)
        ts = Timestamp(100, 0)
        state.add_pending(_pending(100, 0))
        # No acks yet, nothing stable.
        assert state.commit_status(ts) == CommitStatus.AWAITING_MAJORITY
        state.record_ack(ts, 0)
        state.record_ack(ts, 1)
        # Majority reached but stable order not yet satisfied.
        assert state.commit_status(ts) == CommitStatus.AWAITING_STABLE_ORDER
        for replica in range(3):
            state.observe_clock(replica, 150)
        assert state.commit_status(ts) == CommitStatus.COMMITTABLE
        assert state.next_committable().ts == ts

    def test_prefix_condition_blocks_later_commands(self):
        state = _state(3)
        early, late = Timestamp(50, 1), Timestamp(100, 0)
        state.add_pending(_pending(50, 1))
        state.add_pending(_pending(100, 0))
        for replica in range(3):
            state.observe_clock(replica, 200)
        state.record_ack(late, 0)
        state.record_ack(late, 1)
        state.record_ack(late, 2)
        # The later command has every ack but the earlier one is still pending.
        assert state.commit_status(late) == CommitStatus.AWAITING_PREFIX
        assert state.next_committable() is None
        state.record_ack(early, 0)
        state.record_ack(early, 1)
        assert state.next_committable().ts == early

    def test_unknown_command_status(self):
        assert _state().commit_status(Timestamp(1, 0)) == CommitStatus.UNKNOWN_COMMAND

    def test_stable_order_requires_every_replica(self):
        state = _state(5)
        ts = Timestamp(100, 0)
        state.add_pending(_pending(100, 0))
        for replica in range(5):
            state.record_ack(ts, replica)
        # Four of five replicas have sent something newer; the fifth has not.
        for replica in range(4):
            state.observe_clock(replica, 200)
        assert state.commit_status(ts) == CommitStatus.AWAITING_STABLE_ORDER
        state.observe_clock(4, 100)
        assert state.commit_status(ts) == CommitStatus.COMMITTABLE

    def test_describe_contains_key_fields(self):
        state = _state()
        snapshot = state.describe()
        assert snapshot["pending"] == 0
        assert snapshot["quorum_size"] == 2


class TestCommitRuleProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=500),   # micros
                st.integers(min_value=0, max_value=4),     # origin replica
            ),
            min_size=1,
            max_size=30,
            unique=True,
        ),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_next_committable_is_always_the_minimum_pending(self, commands, seed):
        """Whatever the ack/clock state, only the smallest pending command commits."""
        import random

        rng = random.Random(seed)
        state = ClockRsmState(active_config=range(5), quorum_size=3)
        for index, (micros, origin) in enumerate(commands):
            state.add_pending(
                PendingCommand(Command(CommandId("c", index), b""), Timestamp(micros, origin), origin)
            )
            for replica in rng.sample(range(5), rng.randint(0, 5)):
                state.record_ack(Timestamp(micros, origin), replica)
        for replica in range(5):
            state.observe_clock(replica, rng.randint(0, 600))
        candidate = state.next_committable()
        if candidate is not None:
            minimum = state.min_pending()
            assert candidate.ts == minimum.ts
            assert state.ack_count(candidate.ts) >= 3
            assert candidate.ts.micros <= state.min_latest()
