"""Tests for the one-way latency matrix and the EC2 (Table III) data."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.ec2 import EC2_RTT_MS, EC2_SITES, ec2_latency_matrix
from repro.config import ClusterSpec
from repro.errors import ConfigurationError
from repro.net.latency import LatencyMatrix
from repro.types import ms_to_micros


class TestLatencyMatrixConstruction:
    def test_from_rtt_ms_halves_round_trips(self):
        matrix = LatencyMatrix.from_rtt_ms(["A", "B"], {("A", "B"): 100.0})
        assert matrix.delay(0, 1) == ms_to_micros(50.0)
        assert matrix.delay(1, 0) == ms_to_micros(50.0)
        assert matrix.delay(0, 0) == 0

    def test_missing_pair_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyMatrix.from_rtt_ms(["A", "B", "C"], {("A", "B"): 10.0})

    def test_duplicate_sites_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyMatrix.from_rtt_ms(["A", "A"], {("A", "A"): 1.0})

    def test_asymmetric_matrix_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyMatrix(("A", "B"), ((0, 10), (20, 0)))

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyMatrix(("A", "B"), ((0, -1), (-1, 0)))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyMatrix(("A", "B"), ((0, 1),))

    def test_uniform(self):
        matrix = LatencyMatrix.uniform(["A", "B", "C"], one_way=500)
        assert matrix.delay(0, 1) == 500
        assert matrix.delay(2, 1) == 500
        assert matrix.delay(1, 1) == 0


class TestLatencyMatrixQueries:
    def test_rtt_is_twice_one_way(self):
        matrix = LatencyMatrix.uniform(["A", "B"], one_way=700)
        assert matrix.rtt(0, 1) == 1400

    def test_site_index_and_delay_between_sites(self):
        matrix = ec2_latency_matrix()
        assert matrix.site_index("CA") == 0
        assert matrix.delay_between_sites("CA", "VA") == ms_to_micros(83.0 / 2)
        with pytest.raises(ConfigurationError):
            matrix.site_index("nowhere")

    def test_restricted_to_preserves_pairwise_delays(self):
        full = ec2_latency_matrix()
        sub = full.restricted_to(["JP", "CA", "SG"])
        assert sub.sites == ("JP", "CA", "SG")
        assert sub.delay(0, 1) == full.delay_between_sites("JP", "CA")
        assert sub.delay(0, 2) == full.delay_between_sites("JP", "SG")

    def test_for_spec_orders_by_spec_sites(self):
        spec = ClusterSpec.from_sites(["VA", "CA"])
        matrix = ec2_latency_matrix().for_spec(spec)
        assert matrix.sites == ("VA", "CA")

    def test_median_delay_includes_self(self):
        # Three replicas: the majority-forming delay is the nearest peer.
        matrix = LatencyMatrix.from_rtt_ms(
            ["A", "B", "C"], {("A", "B"): 20.0, ("A", "C"): 100.0, ("B", "C"): 60.0}
        )
        assert matrix.median_delay_from(0) == ms_to_micros(10.0)
        assert matrix.max_delay_from(0) == ms_to_micros(50.0)


class TestEc2Data:
    def test_all_21_pairs_present(self):
        assert len(EC2_RTT_MS) == 21
        matrix = ec2_latency_matrix()
        assert matrix.size == 7
        assert matrix.sites == EC2_SITES

    def test_known_values_from_table3(self):
        matrix = ec2_latency_matrix()
        assert matrix.delay_between_sites("CA", "VA") == ms_to_micros(41.5)
        assert matrix.delay_between_sites("IR", "JP") == ms_to_micros(140.0)
        assert matrix.delay_between_sites("SG", "BR") == ms_to_micros(184.5)

    def test_local_delay_optional(self):
        without = ec2_latency_matrix()
        with_local = ec2_latency_matrix(include_local=True)
        assert without.delay(0, 0) == 0
        assert with_local.delay(0, 0) == ms_to_micros(0.3)

    def test_subset_selection(self):
        matrix = ec2_latency_matrix(["CA", "VA", "IR"])
        assert matrix.sites == ("CA", "VA", "IR")

    @given(st.permutations(list(EC2_SITES)))
    def test_symmetry_holds_for_any_ordering(self, order):
        matrix = ec2_latency_matrix(order)
        for i in range(matrix.size):
            for j in range(matrix.size):
                assert matrix.delay(i, j) == matrix.delay(j, i)
