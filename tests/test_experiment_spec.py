"""Tests for the declarative experiment specification."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiment import (
    ClockSpec,
    CpuSpec,
    ExperimentSpec,
    FaultSpec,
    ProcessesSpec,
    RuntimeSpec,
    WorkloadSpec,
)
from repro.protocols.registry import (
    CAPABILITIES,
    PROTOCOLS,
    available_protocols,
    protocol_capabilities,
)


def full_spec() -> ExperimentSpec:
    """A spec exercising every section."""
    return ExperimentSpec(
        name="everything",
        protocol="clock-rsm",
        sites=("CA", "VA", "IR"),
        latency="ec2",
        jitter_fraction=0.05,
        clocks=(
            ("VA", ClockSpec(kind="skewed", offset_ms=20.0)),
            ("IR", ClockSpec(kind="drifting", offset_ms=-5.0, drift_ppm=100.0)),
        ),
        workload=WorkloadSpec(scenario="imbalanced", origin_site="CA", clients_per_site=3),
        faults=(
            FaultSpec(kind="crash", at_s=1.0, site="IR"),
            FaultSpec(kind="recover", at_s=2.0, site="IR", rejoin=True),
            FaultSpec(kind="partition", at_s=0.5, site="CA", peer="VA", heal_at_s=0.8),
        ),
        cpu=CpuSpec(recv_fixed=10.0),
        duration_s=2.0,
        warmup_s=0.5,
        seed=9,
        cdf_sites=("CA",),
    )


class TestRegistryCapabilities:
    def test_every_protocol_has_capabilities(self):
        assert set(CAPABILITIES) == set(PROTOCOLS)
        assert available_protocols() == tuple(sorted(PROTOCOLS))

    def test_capability_values_match_the_paper(self):
        assert protocol_capabilities("clock-rsm").needs_clocks
        assert not protocol_capabilities("clock-rsm").leader_based
        assert protocol_capabilities("paxos").leader_based
        assert not protocol_capabilities("paxos").broadcast_variant
        assert protocol_capabilities("paxos-bcast").broadcast_variant
        assert not protocol_capabilities("mencius").leader_based
        assert protocol_capabilities("clock-rsm").supports_reconfiguration

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown protocol"):
            protocol_capabilities("raft")


class TestRoundTrip:
    def test_dict_round_trip_preserves_everything(self):
        spec = full_spec()
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self, tmp_path):
        spec = full_spec()
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        assert ExperimentSpec.from_file(path) == spec

    def test_toml_file_loading(self, tmp_path):
        path = tmp_path / "exp.toml"
        path.write_text(
            """
            name = "from-toml"
            protocol = "paxos-bcast"
            sites = ["CA", "VA", "IR"]
            leader_site = "VA"
            duration_s = 1.0
            warmup_s = 0.25

            [workload]
            scenario = "balanced"
            clients_per_site = 5

            [clocks.CA]
            kind = "skewed"
            offset_ms = 3.5

            [[faults]]
            kind = "crash"
            at_s = 0.5
            site = "IR"
            """
        )
        spec = ExperimentSpec.from_file(path)
        assert spec.name == "from-toml"
        assert spec.leader_site == "VA"
        assert spec.clock_for_site("CA").offset_ms == 3.5
        assert spec.faults[0].kind == "crash"
        # And it survives another full round trip.
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_to_dict_is_json_and_toml_safe(self):
        data = full_spec().to_dict()
        json.dumps(data)  # raises on non-serializable values

        def no_nones(value):
            if isinstance(value, dict):
                for inner in value.values():
                    assert inner is not None
                    no_nones(inner)
            elif isinstance(value, list):
                for inner in value:
                    no_nones(inner)

        no_nones(data)  # TOML has no null

    def test_missing_file_and_bad_extension(self, tmp_path):
        with pytest.raises(ConfigurationError, match="does not exist"):
            ExperimentSpec.from_file(tmp_path / "nope.toml")
        bad = tmp_path / "spec.yaml"
        bad.write_text("name: x")
        with pytest.raises(ConfigurationError, match="extension"):
            ExperimentSpec.from_file(bad)

    def test_name_defaults_to_the_file_stem(self, tmp_path):
        path = tmp_path / "my_experiment.toml"
        path.write_text('protocol = "clock-rsm"\nsites = ["CA", "VA", "IR"]\n')
        assert ExperimentSpec.from_file(path).name == "my_experiment"

    def test_invalid_toml_reported(self, tmp_path):
        path = tmp_path / "broken.toml"
        path.write_text("name = ")
        with pytest.raises(ConfigurationError, match="invalid TOML"):
            ExperimentSpec.from_file(path)


class TestProcessesTable:
    def base(self, **overrides) -> ExperimentSpec:
        return ExperimentSpec(
            name="proc-spec",
            protocol="clock-rsm",
            sites=("CA", "VA", "IR"),
            duration_s=1.0,
            **overrides,
        )

    def test_round_trips_through_dict_and_toml(self, tmp_path):
        spec = self.base(
            processes=ProcessesSpec(startup_timeout_s=8.0, shutdown_grace_s=2.0)
        )
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec
        path = tmp_path / "proc.toml"
        path.write_text(
            """
            name = "proc-spec"
            protocol = "clock-rsm"
            sites = ["CA", "VA", "IR"]
            duration_s = 1.0

            [processes]
            startup_timeout_s = 8.0
            shutdown_grace_s = 2.0
            """
        )
        assert ExperimentSpec.from_file(path) == spec

    def test_omitted_table_stays_none_and_out_of_to_dict(self):
        spec = self.base()
        assert spec.processes is None
        assert "processes" not in spec.to_dict()

    def test_defaults(self):
        table = ProcessesSpec()
        assert table.host == "127.0.0.1"
        assert table.startup_timeout_s == 20.0
        assert table.shutdown_grace_s == 5.0

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="host"):
            ProcessesSpec(host="")
        with pytest.raises(ConfigurationError, match="startup_timeout_s"):
            ProcessesSpec(startup_timeout_s=0)
        with pytest.raises(ConfigurationError, match="shutdown_grace_s"):
            ProcessesSpec(shutdown_grace_s=-1)

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown keys in processes"):
            ExperimentSpec.from_dict(
                {
                    "name": "x",
                    "protocol": "clock-rsm",
                    "sites": ["CA", "VA", "IR"],
                    "processes": {"workers": 4},
                }
            )


class TestRuntimeTable:
    def base(self, **overrides) -> ExperimentSpec:
        return ExperimentSpec(
            name="runtime-spec",
            protocol="clock-rsm",
            sites=("CA", "VA", "IR"),
            duration_s=1.0,
            **overrides,
        )

    def test_round_trips_through_dict_and_toml(self, tmp_path):
        spec = self.base(runtime=RuntimeSpec(uvloop=True))
        assert spec.to_dict()["runtime"] == {"uvloop": True}
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec
        path = tmp_path / "runtime.toml"
        path.write_text(
            """
            name = "runtime-spec"
            protocol = "clock-rsm"
            sites = ["CA", "VA", "IR"]
            duration_s = 1.0

            [runtime]
            uvloop = true
            """
        )
        assert ExperimentSpec.from_file(path) == spec

    def test_omitted_table_stays_none_and_out_of_to_dict(self):
        spec = self.base()
        assert spec.runtime is None
        assert "runtime" not in spec.to_dict()

    def test_defaults_and_validation(self):
        assert RuntimeSpec().uvloop is False
        with pytest.raises(ConfigurationError, match="uvloop"):
            RuntimeSpec(uvloop="yes")

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown keys in runtime"):
            ExperimentSpec.from_dict(
                {
                    "name": "x",
                    "protocol": "clock-rsm",
                    "sites": ["CA", "VA", "IR"],
                    "runtime": {"uvlop": True},
                }
            )


class TestValidation:
    def base(self, **overrides):
        kwargs = dict(name="v", protocol="clock-rsm", sites=("CA", "VA", "IR"))
        kwargs.update(overrides)
        return ExperimentSpec(**kwargs)

    def test_unknown_protocol(self):
        with pytest.raises(ConfigurationError, match="unknown protocol"):
            self.base(protocol="raft")

    def test_leaderless_protocol_rejects_leader_site(self):
        with pytest.raises(ConfigurationError, match="leaderless"):
            self.base(leader_site="CA")

    def test_leader_must_be_a_deployed_site(self):
        with pytest.raises(ConfigurationError, match="leader site"):
            self.base(protocol="paxos", leader_site="JP")

    def test_leader_defaults_to_first_site(self):
        spec = self.base(protocol="paxos")
        assert spec.effective_leader_site() == "CA"
        assert self.base().effective_leader_site() is None

    def test_rejoin_needs_reconfiguration_support(self):
        fault = FaultSpec(kind="recover", at_s=1.0, site="CA", rejoin=True)
        with pytest.raises(ConfigurationError, match="reconfiguration"):
            self.base(protocol="paxos", leader_site="CA", faults=(fault,))

    def test_imbalanced_needs_origin(self):
        with pytest.raises(ConfigurationError, match="origin_site"):
            WorkloadSpec(scenario="imbalanced")

    def test_origin_must_be_deployed(self):
        workload = WorkloadSpec(scenario="imbalanced", origin_site="SG")
        with pytest.raises(ConfigurationError, match="origin"):
            self.base(workload=workload)

    def test_origin_rejected_outside_imbalanced(self):
        with pytest.raises(ConfigurationError, match="origin_site only applies"):
            WorkloadSpec(scenario="balanced", origin_site="CA")

    def test_non_ec2_sites_need_uniform_latency(self):
        with pytest.raises(ConfigurationError, match="not EC2 sites"):
            self.base(sites=("dc0", "dc1", "dc2"))
        spec = self.base(sites=("dc0", "dc1", "dc2"), latency="uniform", one_way_ms=0.5)
        assert spec.latency_matrix().delay(0, 1) == 500

    def test_clock_and_fault_sites_must_exist(self):
        with pytest.raises(ConfigurationError, match="unknown site"):
            self.base(clocks=(("SG", ClockSpec(kind="skewed", offset_ms=1.0)),))
        with pytest.raises(ConfigurationError, match="unknown site"):
            self.base(faults=(FaultSpec(kind="crash", at_s=1.0, site="SG"),))

    def test_perfect_clock_rejects_offset(self):
        with pytest.raises(ConfigurationError, match="perfect clock"):
            ClockSpec(offset_ms=5.0)

    def test_partition_needs_peer(self):
        with pytest.raises(ConfigurationError, match="peer"):
            FaultSpec(kind="partition", at_s=1.0, site="CA")

    def test_unknown_scenario_and_app(self):
        with pytest.raises(ConfigurationError, match="scenario"):
            WorkloadSpec(scenario="zipfian")
        with pytest.raises(ConfigurationError, match="app"):
            WorkloadSpec(app="sql")

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown experiment spec keys"):
            ExperimentSpec.from_dict(
                {"name": "x", "protocol": "paxos", "sites": ["CA"], "sched": 1}
            )

    def test_unknown_nested_key_rejected(self):
        with pytest.raises(ConfigurationError, match="workload"):
            ExperimentSpec.from_dict(
                {
                    "name": "x",
                    "protocol": "clock-rsm",
                    "sites": ["CA", "VA", "IR"],
                    "workload": {"clients": 3},
                }
            )

    def test_wrongly_typed_values_get_a_clean_error(self, tmp_path):
        path = tmp_path / "typed.toml"
        path.write_text(
            'protocol = "clock-rsm"\nsites = ["CA", "VA", "IR"]\nduration_s = "2"\n'
        )
        with pytest.raises(ConfigurationError, match="invalid experiment spec value"):
            ExperimentSpec.from_file(path)
        with pytest.raises(ConfigurationError, match="invalid value in workload"):
            ExperimentSpec.from_dict(
                {
                    "name": "x",
                    "protocol": "clock-rsm",
                    "sites": ["CA", "VA", "IR"],
                    "workload": {"clients_per_site": "five"},
                }
            )

    def test_cdf_sites_must_be_deployed(self):
        with pytest.raises(ConfigurationError, match="cdf_sites"):
            self.base(cdf_sites=("SG",))

    def test_duration_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="duration_s"):
            self.base(duration_s=0)


class TestWithProtocol:
    def test_sweeping_protocols_adjusts_the_leader(self):
        base = ExperimentSpec(
            name="sweep", protocol="paxos", sites=("CA", "VA", "IR"), leader_site="VA"
        )
        leaderless = base.with_protocol("clock-rsm")
        assert leaderless.leader_site is None
        back = leaderless.with_protocol("paxos-bcast")
        assert back.leader_site == "CA"  # defaults to the first site

    def test_derived_config_objects(self):
        spec = full_spec()
        assert spec.cluster_spec().sites == ("CA", "VA", "IR")
        offsets = spec.clock_offsets()
        assert offsets[spec.cluster_spec().by_site("VA").replica_id] == 20_000
        drift = spec.clock_drift_ppm()
        assert drift[spec.cluster_spec().by_site("IR").replica_id] == 100.0
        config = spec.protocol_config()
        assert config.clocktime_interval == 5_000
