"""Smoke tests: the example applications run end-to-end.

Each example is executed in a subprocess exactly as a user would run it
(with reduced workload sizes where the script accepts arguments), and its
output is checked for the expected markers.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
SRC_DIR = Path(__file__).resolve().parent.parent / "src"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    env_path = f"{SRC_DIR}"
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stdout}\n{result.stderr}"
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        output = run_example("quickstart.py")
        assert "hello geo-world" in output
        assert "state is consistent" in output

    def test_latency_explorer(self):
        output = run_example("latency_explorer.py", "--sites", "CA", "VA", "IR", "JP", "SG")
        assert "Expected commit latency" in output
        assert "Clock-RSM" in output

    def test_latency_explorer_three_sites_prefers_paxos_bcast(self):
        output = run_example("latency_explorer.py", "--sites", "CA", "VA", "IR")
        assert "Paxos-bcast" in output

    def test_failover_reconfiguration(self):
        output = run_example("failover_reconfiguration.py")
        assert "reconfigured to epoch 1" in output
        assert "all replicas agree" in output

    def test_live_asyncio_cluster(self):
        output = run_example("live_asyncio_cluster.py", "--scale", "50")
        assert "identical state machines everywhere" in output

    def test_sharded_store(self):
        output = run_example("sharded_store.py", "--shards", "3", "--keys", "18")
        assert "18 keys over 3 shards" in output
        assert "every shard linearizable; cross-shard client order ok" in output

    @pytest.mark.slow
    def test_geo_replicated_store_quick(self):
        output = run_example(
            "geo_replicated_store.py", "--seconds", "2", "--clients", "3", timeout=300
        )
        assert "Per-site commit latency" in output
        assert "clock-rsm" in output
