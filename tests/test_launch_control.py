"""The supervisor↔worker control channel: framing, phases, failure modes."""

from __future__ import annotations

import asyncio
import struct

import pytest

from repro.errors import LaunchError
from repro.launch.control import (
    MAX_CONTROL_FRAME,
    connect_with_retry,
    expect,
    read_json,
    send_json,
)


def run(coro):
    return asyncio.run(coro)


async def _pipe():
    """A connected (client writer, server-side reader/writer) pair."""
    accepted: asyncio.Future = asyncio.get_running_loop().create_future()

    async def on_connect(reader, writer):
        if not accepted.done():
            accepted.set_result((reader, writer))

    server = await asyncio.start_server(on_connect, "127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    client_reader, client_writer = await asyncio.open_connection("127.0.0.1", port)
    server_reader, server_writer = await accepted
    return server, client_reader, client_writer, server_reader, server_writer


class TestFraming:
    def test_round_trip(self):
        async def scenario():
            server, _cr, cw, sr, sw = await _pipe()
            await send_json(cw, {"type": "hello", "replica_id": 3, "pid": 42})
            message = await read_json(sr, timeout=5.0)
            assert message == {"type": "hello", "replica_id": 3, "pid": 42}
            cw.close()
            sw.close()
            server.close()

        run(scenario())

    def test_large_payloads_survive(self):
        async def scenario():
            server, _cr, cw, sr, sw = await _pipe()
            latencies = list(range(50_000))
            await send_json(cw, {"type": "result", "latencies_us": latencies})
            message = await read_json(sr, timeout=10.0)
            assert message["latencies_us"] == latencies
            cw.close()
            sw.close()
            server.close()

        run(scenario())

    def test_timeout_is_a_launch_error(self):
        async def scenario():
            server, _cr, cw, sr, sw = await _pipe()
            with pytest.raises(LaunchError, match="timed out.*worker 5"):
                await read_json(sr, timeout=0.05, who="worker 5")
            cw.close()
            sw.close()
            server.close()

        run(scenario())

    def test_eof_is_a_launch_error(self):
        async def scenario():
            server, _cr, cw, sr, sw = await _pipe()
            cw.close()
            with pytest.raises(LaunchError, match="closed unexpectedly"):
                await read_json(sr, timeout=5.0)
            sw.close()
            server.close()

        run(scenario())

    def test_malformed_json_rejected(self):
        async def scenario():
            server, _cr, cw, sr, sw = await _pipe()
            body = b"this is not json"
            cw.write(struct.pack(">I", len(body)) + body)
            await cw.drain()
            with pytest.raises(LaunchError, match="malformed"):
                await read_json(sr, timeout=5.0)
            cw.close()
            sw.close()
            server.close()

        run(scenario())

    def test_message_without_type_rejected(self):
        async def scenario():
            server, _cr, cw, sr, sw = await _pipe()
            body = b'{"replica_id": 1}'
            cw.write(struct.pack(">I", len(body)) + body)
            await cw.drain()
            with pytest.raises(LaunchError, match="lacks a type"):
                await read_json(sr, timeout=5.0)
            cw.close()
            sw.close()
            server.close()

        run(scenario())

    def test_oversized_frame_rejected_without_reading_it(self):
        async def scenario():
            server, _cr, cw, sr, sw = await _pipe()
            cw.write(struct.pack(">I", MAX_CONTROL_FRAME + 1))
            await cw.drain()
            with pytest.raises(LaunchError, match="exceeds limit"):
                await read_json(sr, timeout=5.0)
            cw.close()
            sw.close()
            server.close()

        run(scenario())


class TestExpect:
    def test_wrong_kind_rejected(self):
        async def scenario():
            server, _cr, cw, sr, sw = await _pipe()
            await send_json(cw, {"type": "bound", "address": "127.0.0.1:9"})
            with pytest.raises(LaunchError, match="expected a 'running'"):
                await expect(sr, "running", timeout=5.0, who="worker 0")
            cw.close()
            sw.close()
            server.close()

        run(scenario())

    def test_worker_error_surfaces_its_traceback(self):
        async def scenario():
            server, _cr, cw, sr, sw = await _pipe()
            await send_json(
                cw,
                {"type": "error", "error": "boom",
                 "traceback": "Traceback ...\nValueError: boom"},
            )
            with pytest.raises(LaunchError, match="ValueError: boom"):
                await expect(sr, "result", timeout=5.0, who="worker 2")
            cw.close()
            sw.close()
            server.close()

        run(scenario())


class TestConnectWithRetry:
    def test_retries_until_the_listener_appears(self):
        async def scenario():
            import socket

            with socket.socket() as probe:
                probe.bind(("127.0.0.1", 0))
                port = probe.getsockname()[1]

            async def listen_later():
                await asyncio.sleep(0.2)
                return await asyncio.start_server(
                    lambda r, w: None, "127.0.0.1", port
                )

            listener = asyncio.create_task(listen_later())
            reader, writer = await connect_with_retry("127.0.0.1", port, timeout=5.0)
            writer.close()
            (await listener).close()

        run(scenario())

    def test_gives_up_at_the_deadline(self):
        async def scenario():
            import socket

            with socket.socket() as probe:
                probe.bind(("127.0.0.1", 0))
                port = probe.getsockname()[1]
            with pytest.raises(LaunchError, match="could not reach"):
                await connect_with_retry("127.0.0.1", port, timeout=0.3)

        run(scenario())
