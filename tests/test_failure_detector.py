"""Tests for the timeout-based failure detector."""

from __future__ import annotations

import pytest

from repro.failure.detector import FailureDetector, ReplicaStatus


class TestFailureDetector:
    def test_initially_everyone_is_alive(self):
        detector = FailureDetector([1, 2, 3], timeout=1_000, now=0)
        assert detector.suspected() == frozenset()
        assert detector.alive() == frozenset({1, 2, 3})

    def test_silent_replica_becomes_suspected(self):
        detector = FailureDetector([1, 2], timeout=1_000, now=0)
        detector.heard_from(1, 900)
        changes = detector.check(1_500)
        assert [c.replica_id for c in changes] == [2]
        assert changes[0].status is ReplicaStatus.SUSPECTED
        assert detector.is_suspected(2)
        assert not detector.is_suspected(1)

    def test_replica_recovers_from_suspicion_when_heard_again(self):
        detector = FailureDetector([1], timeout=1_000, now=0)
        detector.check(5_000)
        assert detector.is_suspected(1)
        detector.heard_from(1, 5_500)
        changes = detector.check(5_600)
        assert changes[0].status is ReplicaStatus.ALIVE
        assert detector.status(1) is ReplicaStatus.ALIVE

    def test_check_reports_each_transition_once(self):
        detector = FailureDetector([1], timeout=100, now=0)
        assert len(detector.check(500)) == 1
        assert detector.check(600) == []

    def test_heard_from_ignores_stale_times(self):
        detector = FailureDetector([1], timeout=100, now=0)
        detector.heard_from(1, 500)
        detector.heard_from(1, 300)  # out-of-order observation
        assert detector.check(550) == []

    def test_heard_from_unknown_replica_is_ignored(self):
        detector = FailureDetector([1], timeout=100, now=0)
        detector.heard_from(99, 50)
        assert detector.alive() == frozenset({1})

    def test_monitor_and_forget(self):
        detector = FailureDetector([1], timeout=100, now=0)
        detector.monitor(2, now=0)
        assert detector.alive() == frozenset({1, 2})
        detector.forget(2)
        assert detector.alive() == frozenset({1})
        detector.check(1_000)
        assert detector.suspected() == frozenset({1})

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError):
            FailureDetector([1], timeout=0)
