"""Fault injection on the asyncio backend (crash/recover/partition/clock-jump).

The same ``FaultSpec`` schedules the simulator runs now drive the live
asyncio runtime; these tests cover the async-specific machinery: the
``LocalAsyncCluster`` fault surface, recovery-with-replay through
``ReplicaServer.restart``, partition buffering (quasi-reliable channels),
and validation of unsupported fault kinds.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.config import ClusterSpec
from repro.errors import ConfigurationError
from repro.experiment import ExperimentSpec, FaultSpec, WorkloadSpec, check_spec
from repro.experiment.async_backend import ASYNC_FAULT_KINDS, AsyncBackend
from repro.experiment.spec import FAULT_KINDS
from repro.kvstore.commands import encode_get, encode_put
from repro.runtime.local import LocalAsyncCluster


def small_spec(**overrides) -> ExperimentSpec:
    defaults = dict(
        name="async-faults",
        protocol="clock-rsm",
        sites=("CA", "VA", "IR"),
        workload=WorkloadSpec(clients_per_site=2, think_time_max_ms=30.0),
        duration_s=1.0,
        warmup_s=0.0,
        seed=23,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


class TestAsyncFaultInjection:
    def test_every_spec_fault_kind_is_injectable(self):
        # The guard that stops new FAULT_KINDS entries from being silently
        # dropped: anything a spec can express, this backend must implement.
        assert set(FAULT_KINDS) == set(ASYNC_FAULT_KINDS)

    def test_crash_then_recover_with_rejoin(self):
        spec = small_spec(
            faults=(
                FaultSpec(kind="crash", at_s=0.25, site="IR"),
                FaultSpec(kind="recover", at_s=0.6, site="IR", rejoin=True),
            ),
            duration_s=1.2,
        )
        run = check_spec(spec, backend="async", time_scale=25, submit_timeout=0.8)
        assert run.linearizable, run.report.violation
        assert run.result.total_committed > 0
        # The recovered replica replayed its log: its apply order is again a
        # prefix of the longest one (checker verified), and it executed work.
        recovered = spec.cluster_spec().by_site("IR").replica_id
        assert run.result.replica_metrics[recovered]["executed"] > 0

    def test_isolate_and_heal(self):
        spec = small_spec(
            faults=(
                FaultSpec(kind="isolate", at_s=0.3, site="VA", heal_at_s=0.6),
            ),
        )
        run = check_spec(spec, backend="async", time_scale=25, submit_timeout=0.8)
        assert run.linearizable, run.report.violation
        assert run.result.total_committed > 0

    def test_clock_jump_keeps_history_linearizable(self):
        spec = small_spec(
            faults=(
                FaultSpec(kind="clock-jump", at_s=0.3, site="VA", offset_ms=60.0),
                FaultSpec(kind="clock-jump", at_s=0.6, site="IR", offset_ms=-20.0),
            ),
        )
        run = check_spec(spec, backend="async", time_scale=25, submit_timeout=0.8)
        assert run.linearizable, run.report.violation
        assert run.result.total_committed > 0

    def test_clock_jump_requires_adjustable_clocks(self):
        # The backend provisions adjustable clocks whenever the schedule
        # contains a clock-jump, even with no static skew configured.
        backend = AsyncBackend(time_scale=25)
        spec = small_spec(
            faults=(FaultSpec(kind="clock-jump", at_s=0.1, site="CA", offset_ms=5.0),),
        )
        factory = backend._clock_factory(spec)
        assert factory is not None
        for replica_id in (0, 1, 2):
            clock = factory(replica_id)
            assert clock is not None and hasattr(clock, "adjust")


class TestLocalClusterFaultSurface:
    def run_async(self, coro):
        return asyncio.run(coro)

    def test_partition_buffers_and_redelivers(self):
        async def scenario():
            spec = ClusterSpec.from_sites(["a", "b", "c"])
            cluster = LocalAsyncCluster("clock-rsm", spec)
            async with cluster:
                await cluster.submit(0, encode_put("k", b"1"))
                cluster.partition(0, 1)
                cluster.partition(0, 2)
                # The isolated replica 0 cannot commit: its PREPAREs are
                # parked, not lost.
                submit = asyncio.create_task(cluster.submit(0, encode_put("k", b"2")))
                await asyncio.sleep(0.1)
                assert not submit.done()
                cluster.heal(0, 1)
                cluster.heal(0, 2)
                # After healing, the parked traffic drains and the write
                # commits with the correct previous value.
                assert await asyncio.wait_for(submit, timeout=5.0) == b"1"
                assert await cluster.submit(1, encode_get("k")) == b"2"

        self.run_async(scenario())

    def test_in_flight_messages_are_parked_when_partition_starts(self):
        async def scenario():
            spec = ClusterSpec.from_sites(["CA", "VA", "IR"])
            from repro.analysis.ec2 import ec2_latency_matrix

            cluster = LocalAsyncCluster(
                "clock-rsm", spec, latency=ec2_latency_matrix(spec.sites)
            )
            async with cluster:
                # Commands from replica 0 put ~80ms PREPAREs in flight; cut
                # the links before they land.  Delivery-time re-checks must
                # park them (quasi-reliable channels), exactly like the sim.
                submit = asyncio.create_task(cluster.submit(0, encode_put("k", b"1")))
                await asyncio.sleep(0.01)
                cluster.partition(0, 1)
                cluster.partition(0, 2)
                await asyncio.sleep(0.3)
                assert not submit.done()  # in-flight traffic was withheld
                cluster.heal(0, 1)
                cluster.heal(0, 2)
                assert await asyncio.wait_for(submit, timeout=5.0) is None
                assert await cluster.submit(1, encode_get("k")) == b"1"

        self.run_async(scenario())

    def test_crash_stalls_commits_until_rejoin_recovery(self):
        async def scenario():
            spec = ClusterSpec.from_sites(["a", "b", "c"])
            cluster = LocalAsyncCluster("clock-rsm", spec)
            async with cluster:
                assert await cluster.submit(0, encode_put("k", b"1")) is None
                executed_before = cluster.servers[2].replica.executed_count
                cluster.crash(2)
                # With a replica crashed, Clock-RSM's stable-order condition
                # can no longer advance (the paper removes the replica via
                # reconfiguration); new commands must stall, not commit with
                # a weaker guarantee.
                stalled = asyncio.create_task(
                    cluster.submit(0, encode_put("j", b"x"))
                )
                await asyncio.sleep(0.15)
                assert not stalled.done()
                # Rejoin recovery: replay the log, then run the paper's
                # reconfiguration (Algorithm 3) so the deployment resumes.
                cluster.recover(2, rejoin=True)
                # Recovery replayed the stable log into a fresh replica.
                assert cluster.servers[2].replica.executed_count >= executed_before
                # New commands commit again at every replica — including the
                # recovered one, whose state reflects the replayed history.
                assert await asyncio.wait_for(
                    cluster.submit(1, encode_get("k")), timeout=5.0
                ) == b"1"
                assert await asyncio.wait_for(
                    cluster.submit(2, encode_get("k")), timeout=5.0
                ) == b"1"
                # The command caught mid-reconfiguration is dropped with the
                # old epoch (clients retry, as after a Paxos view change).
                stalled.cancel()

        self.run_async(scenario())

    def test_clock_jump_without_adjustable_clock_rejected(self):
        async def scenario():
            spec = ClusterSpec.from_sites(["a", "b", "c"])
            cluster = LocalAsyncCluster("clock-rsm", spec)  # SystemClock: fixed
            async with cluster:
                with pytest.raises(ConfigurationError, match="cannot be stepped"):
                    cluster.clock_jump(0, 1000)

        self.run_async(scenario())


class TestValidation:
    def test_unsupported_fault_kind_rejected_at_validation(self, monkeypatch):
        from repro.experiment import spec as spec_module

        monkeypatch.setattr(
            spec_module, "FAULT_KINDS", spec_module.FAULT_KINDS + ("teleport",)
        )
        futuristic = small_spec(
            faults=(FaultSpec(kind="teleport", at_s=0.1, site="CA"),),
        )
        with pytest.raises(ConfigurationError, match="teleport"):
            AsyncBackend()._check_supported(futuristic)

    def test_clock_jump_spec_validation(self):
        with pytest.raises(ConfigurationError, match="offset_ms"):
            FaultSpec(kind="clock-jump", at_s=0.1, site="CA")
        with pytest.raises(ConfigurationError, match="offset_ms"):
            FaultSpec(kind="crash", at_s=0.1, site="CA", offset_ms=3.0)
        fault = FaultSpec(kind="clock-jump", at_s=0.1, site="CA", offset_ms=-3.0)
        assert fault.offset_ms == -3.0
