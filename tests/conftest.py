"""Shared pytest fixtures for the Clock-RSM reproduction test suite."""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest
from hypothesis import settings as hypothesis_settings

# A fully derandomized Hypothesis profile for the seeded CI job: example
# generation is derived from each test's source rather than a random seed,
# so the same checkout always runs the same examples.  Select it with
# HYPOTHESIS_PROFILE=ci (see .github/workflows/ci.yml).
hypothesis_settings.register_profile("ci", derandomize=True)
if os.environ.get("HYPOTHESIS_PROFILE"):
    hypothesis_settings.load_profile(os.environ["HYPOTHESIS_PROFILE"])

# Allow running the tests from a source checkout without installation.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.analysis.ec2 import ec2_latency_matrix  # noqa: E402
from repro.clocks.base import ManualClock  # noqa: E402
from repro.config import ClusterSpec  # noqa: E402
from repro.net.latency import LatencyMatrix  # noqa: E402

from tests.helpers import ALL_PROTOCOLS  # noqa: E402


@pytest.fixture
def spec3() -> ClusterSpec:
    """Three replicas at the paper's CA/VA/IR sites."""
    return ClusterSpec.from_sites(["CA", "VA", "IR"])


@pytest.fixture
def spec5() -> ClusterSpec:
    """Five replicas at the paper's CA/VA/IR/JP/SG sites."""
    return ClusterSpec.from_sites(["CA", "VA", "IR", "JP", "SG"])


@pytest.fixture
def ec2_matrix_3(spec3) -> LatencyMatrix:
    return ec2_latency_matrix(spec3.sites)


@pytest.fixture
def ec2_matrix_5(spec5) -> LatencyMatrix:
    return ec2_latency_matrix(spec5.sites)


@pytest.fixture
def manual_clock() -> ManualClock:
    return ManualClock(start=1_000_000)


@pytest.fixture(params=ALL_PROTOCOLS)
def any_protocol(request) -> str:
    """Parametrized fixture running a test once per implemented protocol."""
    return request.param
