"""Tests for the slot ledger shared by the Paxos/Mencius baselines."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.protocols.slots import SlotLedger
from repro.types import Command, CommandId


def _cmd(i: int) -> Command:
    return Command(CommandId("c", i), b"")


class TestSlotLedger:
    def test_record_command_and_acks(self):
        ledger = SlotLedger()
        state = ledger.record_command(3, _cmd(3))
        assert state.command == _cmd(3)
        assert ledger.add_ack(3, 0) == 1
        assert ledger.add_ack(3, 0) == 1  # duplicates ignored
        assert ledger.add_ack(3, 1) == 2

    def test_record_command_keeps_first_value(self):
        ledger = SlotLedger()
        ledger.record_command(0, _cmd(1))
        ledger.record_command(0, _cmd(2))
        assert ledger.peek(0).command == _cmd(1)

    def test_execution_in_slot_order_with_gaps(self):
        ledger = SlotLedger()
        for slot in (0, 1, 2):
            ledger.record_command(slot, _cmd(slot))
        ledger.mark_decided(1)
        ledger.mark_decided(2)
        assert list(ledger.pop_executable()) == []  # slot 0 not decided yet
        ledger.mark_decided(0)
        executed = [s.slot for s in ledger.pop_executable()]
        assert executed == [0, 1, 2]
        assert ledger.execute_frontier == 3

    def test_skipped_slots_execute_as_noops(self):
        ledger = SlotLedger()
        ledger.mark_skipped(0)
        ledger.record_command(1, _cmd(1))
        ledger.mark_decided(1)
        executed = list(ledger.pop_executable())
        assert [s.slot for s in executed] == [0, 1]
        assert executed[0].skipped is True

    def test_implicit_skip_callback(self):
        ledger = SlotLedger()
        ledger.record_command(2, _cmd(2))
        ledger.mark_decided(2)
        executed = [s.slot for s in ledger.pop_executable(lambda slot: slot < 2)]
        assert executed == [2]
        assert ledger.execute_frontier == 3
        # The implicitly skipped slots were materialized as skip entries.
        assert ledger.peek(0).skipped and ledger.peek(1).skipped

    def test_decided_slot_without_command_blocks_execution(self):
        ledger = SlotLedger()
        ledger.mark_decided(0)  # e.g. a Phase2b arrived before the Phase2a
        assert list(ledger.pop_executable()) == []
        ledger.record_command(0, _cmd(0))
        assert [s.slot for s in ledger.pop_executable()] == [0]

    def test_slots_never_execute_twice(self):
        ledger = SlotLedger()
        ledger.record_command(0, _cmd(0))
        ledger.mark_decided(0)
        assert [s.slot for s in ledger.pop_executable()] == [0]
        assert list(ledger.pop_executable()) == []

    def test_describe_and_known_slots(self):
        ledger = SlotLedger()
        ledger.record_command(4, _cmd(4))
        ledger.record_command(1, _cmd(1))
        assert ledger.known_slots() == [1, 4]
        assert ledger.highest_known_slot() == 4
        info = ledger.describe()
        assert info["known_slots"] == 2
        assert info["undecided"] == 2

    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=30, unique=True))
    def test_execution_order_is_always_contiguous_prefix(self, decided_slots):
        ledger = SlotLedger()
        for slot in decided_slots:
            ledger.record_command(slot, _cmd(slot))
            ledger.mark_decided(slot)
        executed = [s.slot for s in ledger.pop_executable()]
        # Execution covers exactly the contiguous prefix 0..k of decided slots.
        expected = []
        i = 0
        while i in set(decided_slots):
            expected.append(i)
            i += 1
        assert executed == expected
