"""Unit tests for the Multi-Paxos and Paxos-bcast baselines."""

from __future__ import annotations

import pytest

from repro.clocks.base import ManualClock
from repro.config import ClusterSpec, ProtocolConfig
from repro.protocols.base import Broadcast, ClientReply, Send
from repro.protocols.multipaxos import CommitSlot, Forward, MultiPaxosReplica, Phase2a, Phase2b
from repro.protocols.paxos_bcast import PaxosBcastReplica
from repro.statemachine import AppendLogStateMachine
from repro.storage.memory_log import InMemoryLog
from repro.types import Command, CommandId


def build(cls, replica_id: int, n: int = 3, leader: int = 0):
    spec = ClusterSpec.from_sites([f"dc{i}" for i in range(n)])
    return cls(
        replica_id,
        spec,
        clock=ManualClock(0),
        log=InMemoryLog(),
        state_machine=AppendLogStateMachine(),
        config=ProtocolConfig(leader=leader),
    )


def cmd(seq: int) -> Command:
    return Command(CommandId("client", seq), bytes([seq % 250]))


def only(actions, kind):
    return [a for a in actions if isinstance(a, kind)]


class TestMultiPaxosLeader:
    def test_leader_assigns_slots_sequentially(self):
        leader = build(MultiPaxosReplica, 0)
        a1 = leader.on_client_request(cmd(1))
        a2 = leader.on_client_request(cmd(2))
        p1 = only(a1, Broadcast)[0].message
        p2 = only(a2, Broadcast)[0].message
        assert isinstance(p1, Phase2a) and isinstance(p2, Phase2a)
        assert (p1.slot, p2.slot) == (0, 1)
        assert only(a1, Broadcast)[0].include_self is False

    def test_leader_commits_after_majority_of_2b(self):
        leader = build(MultiPaxosReplica, 0)
        leader.on_client_request(cmd(1))
        actions = leader.on_message(1, Phase2b(0))
        # Leader + replica 1 is a majority of three: commit, notify, execute.
        commits = [a for a in only(actions, Broadcast) if isinstance(a.message, CommitSlot)]
        assert len(commits) == 1
        assert leader.executed_count == 1
        assert len(only(actions, ClientReply)) == 1

    def test_leader_ignores_duplicate_2b(self):
        leader = build(MultiPaxosReplica, 0)
        leader.on_client_request(cmd(1))
        leader.on_message(1, Phase2b(0))
        before = leader.executed_count
        assert leader.on_message(1, Phase2b(0)) == []
        assert leader.executed_count == before

    def test_invalid_leader_configuration_rejected(self):
        with pytest.raises(ValueError):
            build(MultiPaxosReplica, 0, n=3, leader=9)


class TestMultiPaxosNonLeader:
    def test_non_leader_forwards_to_leader(self):
        follower = build(MultiPaxosReplica, 1)
        actions = follower.on_client_request(cmd(1))
        sends = only(actions, Send)
        assert len(sends) == 1
        assert sends[0].dst == 0
        assert isinstance(sends[0].message, Forward)

    def test_acceptor_logs_and_replies_to_leader_only(self):
        follower = build(MultiPaxosReplica, 1)
        actions = follower.on_message(0, Phase2a(0, cmd(1)))
        sends = only(actions, Send)
        assert len(sends) == 1 and sends[0].dst == 0
        assert isinstance(sends[0].message, Phase2b)
        assert only(actions, Broadcast) == []
        assert len(follower.log) == 1

    def test_non_leader_does_not_learn_from_quorum_counting(self):
        follower = build(MultiPaxosReplica, 1)
        follower.on_message(0, Phase2a(0, cmd(1)))
        follower.on_message(2, Phase2b(0))
        # Classic Paxos: only the commit notification reveals the outcome.
        assert follower.executed_count == 0
        follower.on_message(0, CommitSlot(0))
        assert follower.executed_count == 1

    def test_forward_received_by_leader_is_proposed(self):
        leader = build(MultiPaxosReplica, 0)
        actions = leader.on_message(1, Forward(cmd(5)))
        assert isinstance(only(actions, Broadcast)[0].message, Phase2a)

    def test_forward_received_by_non_leader_is_relayed(self):
        follower = build(MultiPaxosReplica, 2)
        actions = follower.on_message(1, Forward(cmd(5)))
        sends = only(actions, Send)
        assert sends and sends[0].dst == 0

    def test_origin_replies_to_its_client_after_commit(self):
        follower = build(MultiPaxosReplica, 1)
        follower.on_client_request(cmd(7))
        follower.on_message(0, Phase2a(0, cmd(7)))
        actions = follower.on_message(0, CommitSlot(0))
        replies = only(actions, ClientReply)
        assert len(replies) == 1
        assert replies[0].command_id == CommandId("client", 7)

    def test_execution_in_slot_order_even_with_out_of_order_commits(self):
        follower = build(MultiPaxosReplica, 1)
        follower.on_message(0, Phase2a(0, cmd(1)))
        follower.on_message(0, Phase2a(1, cmd(2)))
        follower.on_message(0, CommitSlot(1))
        assert follower.executed_count == 0
        follower.on_message(0, CommitSlot(0))
        assert follower.executed_count == 2
        assert follower.execution_order == [CommandId("client", 1), CommandId("client", 2)]


class TestPaxosBcast:
    def test_acceptor_broadcasts_2b(self):
        follower = build(PaxosBcastReplica, 1)
        actions = follower.on_message(0, Phase2a(0, cmd(1)))
        broadcasts = only(actions, Broadcast)
        assert len(broadcasts) == 1
        assert isinstance(broadcasts[0].message, Phase2b)
        assert broadcasts[0].include_self is False

    def test_every_replica_learns_locally_from_2b_quorum(self):
        # Five replicas: origin is 1, leader is 0.
        origin = build(PaxosBcastReplica, 1, n=5)
        origin.on_client_request(cmd(1))
        origin.on_message(0, Phase2a(0, cmd(1)))
        # After the Phase2a the origin knows itself and the leader accepted.
        assert origin.executed_count == 0
        actions = origin.on_message(2, Phase2b(0))
        # Third acceptor completes the majority: committed without the leader.
        assert origin.executed_count == 1
        assert len(only(actions, ClientReply)) == 1

    def test_no_commit_notifications_are_sent(self):
        leader = build(PaxosBcastReplica, 0)
        leader.on_client_request(cmd(1))
        actions = leader.on_message(1, Phase2b(0))
        assert [a for a in only(actions, Broadcast) if isinstance(a.message, CommitSlot)] == []
        assert leader.executed_count == 1

    def test_2b_before_2a_does_not_execute_early(self):
        follower = build(PaxosBcastReplica, 3, n=5)
        follower.on_message(1, Phase2b(0))
        follower.on_message(2, Phase2b(0))
        follower.on_message(4, Phase2b(0))
        assert follower.executed_count == 0
        follower.on_message(0, Phase2a(0, cmd(1)))
        assert follower.executed_count == 1

    def test_protocol_names(self):
        assert build(MultiPaxosReplica, 0).protocol_name == "paxos"
        assert build(PaxosBcastReplica, 0).protocol_name == "paxos-bcast"
