"""Property-based tests of Clock-RSM's replication guarantees.

Hypothesis drives randomized command schedules (origins, submission times,
clock skews, network jitter) through the deterministic simulator and checks
the properties the paper proves in its appendix:

* commands execute in strictly increasing timestamp order at every replica
  (Claim 1 / Claim 2: total order);
* every command committed anywhere is eventually executed by every replica
  (agreement, in failure-free runs);
* the committed order respects the real-time order observed by clients
  (linearizability of non-overlapping commands, Claim 5).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.types import seconds_to_micros

from tests.helpers import make_cluster

# A randomized schedule: a list of (origin, submit-offset µs) pairs.
schedules = st.lists(
    st.tuples(st.integers(min_value=0, max_value=2), st.integers(min_value=0, max_value=200_000)),
    min_size=1,
    max_size=15,
)

skew_sets = st.dictionaries(
    st.integers(min_value=0, max_value=2),
    st.integers(min_value=-30_000, max_value=30_000),
    max_size=3,
)


def run_schedule(schedule, skews, seed, jitter=0.0):
    from repro.sim.network import NetworkOptions

    cluster = make_cluster(
        "clock-rsm",
        sites=("CA", "VA", "IR"),
        seed=seed,
        clock_offsets=skews,
        network_options=NetworkOptions(jitter_fraction=jitter),
    )
    cluster.start()
    commands = []
    for index, (origin, offset) in enumerate(schedule):
        command = cluster.make_command(bytes([index]), client=f"client-{origin}")
        cluster.submit_at(offset, origin, command)
        commands.append((origin, command))
    cluster.run_for(seconds_to_micros(3.0))
    return cluster, commands


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(schedule=schedules, skews=skew_sets, seed=st.integers(min_value=0, max_value=1_000))
def test_total_order_and_agreement_hold_for_random_schedules(schedule, skews, seed):
    cluster, commands = run_schedule(schedule, skews, seed, jitter=0.05)
    # Agreement: every submitted command commits at its origin and executes
    # at every replica (failure-free run, CLOCKTIME keeps idle replicas live).
    assert len(cluster.replies) == len(commands)
    for replica in cluster.replicas():
        assert replica.executed_count == len(commands)
    # Total order: identical execution sequences everywhere.
    cluster.assert_consistent_order()


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(schedule=schedules, seed=st.integers(min_value=0, max_value=1_000))
def test_execution_order_matches_timestamp_order(schedule, seed):
    cluster, _ = run_schedule(schedule, skews={}, seed=seed)
    replica = cluster.replica(0)
    # Reconstruct the committed timestamps from the log: COMMIT marks must be
    # appended in strictly increasing timestamp order (Claim 1).
    from repro.core.messages import CommitRecord

    commit_ts = [r.ts for r in replica.log.records() if isinstance(r, CommitRecord)]
    assert commit_ts == sorted(commit_ts)
    assert len(set(commit_ts)) == len(commit_ts)


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_sequential_client_commands_respect_real_time_order(seed):
    """A client that waits for each reply before issuing the next command
    must see its commands applied in issue order at every replica."""
    import random

    rng = random.Random(seed)
    cluster = make_cluster("clock-rsm", sites=("CA", "VA", "IR"), seed=seed)
    cluster.start()
    issued = []
    # Issue five commands sequentially, each from a (possibly different)
    # replica, only after the previous one committed.
    for index in range(5):
        origin = rng.randrange(3)
        command = cluster.make_command(bytes([index]), client="sequential-client")
        issued.append(command.command_id)
        cluster.submit(origin, command)
        before = len(cluster.replies)
        cluster.run_for(seconds_to_micros(1.0))
        assert len(cluster.replies) == before + 1
    for replica in cluster.replicas():
        order = [cid for cid in replica.execution_order if cid in set(issued)]
        assert order == issued
