"""Batching and pipelining on the live runtime and through both backends."""

from __future__ import annotations

import asyncio

import pytest

from repro.config import BatchingOptions, ClusterSpec
from repro.core.messages import PrepareRecord
from repro.experiment import (
    BatchingSpec,
    Deployment,
    ExperimentSpec,
    ShardingSpec,
    WorkloadSpec,
    check_spec,
)
from repro.kvstore.commands import encode_put
from repro.kvstore.kv import KVStateMachine
from repro.protocols.records import CommandBatch
from repro.runtime.client import ReplicatedKVClient
from repro.runtime.local import LocalAsyncCluster
from repro.runtime.server import ReplicaServer
from repro.types import Command, CommandId


def run(coro):
    return asyncio.run(coro)


def _spec(sites=("CA", "VA", "IR")) -> ClusterSpec:
    return ClusterSpec.from_sites(list(sites))


class TestBatchAccumulator:
    def test_size_flush_cancels_window_timer(self):
        from repro.net.batching import BatchAccumulator

        async def scenario():
            flushed: list[list[int]] = []
            acc = BatchAccumulator(
                BatchingOptions(max_batch=2, window_us=20_000), flushed.append
            )
            acc.add(1)
            acc.add(2)  # size flush; must disarm the 20 ms timer
            assert flushed == [[1, 2]]
            acc.add(3)
            await asyncio.sleep(0.005)
            # The stale timer (armed at t=0) would have fired by now and
            # flushed [3] early; the fresh timer (armed with item 3) has not.
            assert flushed == [[1, 2]]
            await asyncio.sleep(0.025)
            assert flushed == [[1, 2], [3]]
            return True

        assert run(scenario())

    def test_window_zero_flushes_next_tick(self):
        from repro.net.batching import BatchAccumulator

        async def scenario():
            flushed: list[list[int]] = []
            acc = BatchAccumulator(BatchingOptions(max_batch=64), flushed.append)
            acc.add(1)
            acc.add(2)
            assert flushed == []  # still the same tick
            await asyncio.sleep(0)
            assert flushed == [[1, 2]]
            acc.add(3)
            acc.clear()
            await asyncio.sleep(0)
            assert flushed == [[1, 2]]  # cleared items never flush
            return True

        assert run(scenario())


class TestDriverAccumulation:
    def test_same_tick_submissions_propose_one_batch(self):
        async def scenario():
            cluster = LocalAsyncCluster(
                "clock-rsm", _spec(), batching=BatchingOptions(max_batch=8, window_us=0)
            )
            async with cluster:
                outputs = await asyncio.gather(
                    *(
                        cluster.submit(0, encode_put(f"k{i}", b"v"), client="c")
                        for i in range(8)
                    )
                )
                assert len(outputs) == 8
                units = [
                    record.command
                    for record in cluster.servers[0].replica.log.records()
                    if isinstance(record, PrepareRecord)
                ]
                batch_sizes = [len(u) for u in units if isinstance(u, CommandBatch)]
                assert batch_sizes and max(batch_sizes) <= 8
                assert sum(batch_sizes) + sum(
                    1 for u in units if not isinstance(u, CommandBatch)
                ) == 8
            return True

        assert run(scenario())

    def test_positive_window_flushes_after_timeout(self):
        async def scenario():
            cluster = LocalAsyncCluster(
                "paxos",
                _spec(),
                batching=BatchingOptions(max_batch=64, window_us=2_000),
            )
            async with cluster:
                # A single command never fills max_batch; only the window
                # timer can flush it.
                output = await asyncio.wait_for(
                    cluster.submit(0, encode_put("k", b"v"), client="c"), timeout=5
                )
                assert output is None
            return True

        assert run(scenario())

    def test_stopped_driver_drops_accumulated_commands(self):
        async def scenario():
            cluster = LocalAsyncCluster(
                "mencius",
                _spec(),
                batching=BatchingOptions(max_batch=64, window_us=50_000),
            )
            async with cluster:
                server = cluster.servers[0]
                server.driver.submit(Command(CommandId("c", 1), encode_put("k", b"v")))
                assert len(server.driver._accumulator) == 1
                server.driver.stop()
                assert len(server.driver._accumulator) == 0
            return True

        assert run(scenario())


class TestPipelinedTcpClient:
    def test_pipelined_batched_client_over_real_sockets(self):
        async def scenario():
            spec = _spec(("CA", "VA", "IR"))
            base = 40510
            peers = {rid: f"127.0.0.1:{base + rid}" for rid in spec.replica_ids}
            client_addrs = {rid: f"127.0.0.1:{base + 100 + rid}" for rid in spec.replica_ids}
            batching = BatchingOptions(max_batch=8, window_us=0, pipeline_depth=4)
            servers = [
                ReplicaServer(
                    "clock-rsm",
                    rid,
                    spec,
                    KVStateMachine(),
                    listen_address=peers[rid],
                    peer_addresses=peers,
                    client_address=client_addrs[rid],
                    batching=batching,
                )
                for rid in spec.replica_ids
            ]
            for server in servers:
                await server.start()
            try:
                async with ReplicatedKVClient(
                    address=client_addrs[0], batching=batching
                ) as client:
                    results = await client.pipelined(
                        [
                            (lambda i=i: client.put(f"pipe{i}", b"v%d" % i))
                            for i in range(12)
                        ],
                        depth=4,
                    )
                    assert results == [None] * 12
                async with ReplicatedKVClient(address=client_addrs[1]) as reader:
                    for i in range(12):
                        assert await reader.get(f"pipe{i}") == b"v%d" % i
            finally:
                for server in servers:
                    await server.stop()
            return True

        assert run(scenario())


class TestBackends:
    def _experiment(self, protocol: str, batching: BatchingSpec | None) -> ExperimentSpec:
        return ExperimentSpec(
            name=f"batch-rt-{protocol}",
            protocol=protocol,
            sites=("S0", "S1", "S2"),
            latency="uniform",
            one_way_ms=0.1,
            workload=WorkloadSpec(
                scenario="saturating", outstanding_per_site=16, app="kv"
            ),
            duration_s=0.3,
            warmup_s=0.05,
            seed=9,
            batching=batching,
        )

    @pytest.mark.parametrize("protocol", ["clock-rsm", "mencius"])
    def test_batched_spec_checks_clean_on_both_backends(self, protocol):
        spec = self._experiment(
            protocol, BatchingSpec(max_batch=8, window_us=0, pipeline_depth=2)
        )
        sim = check_spec(spec, backend="sim")
        assert sim.linearizable, sim.report.describe()
        live = check_spec(spec, backend="async", time_scale=20, submit_timeout=5.0)
        assert live.linearizable, live.report.describe()

    def test_batching_composes_with_sharding(self):
        # Balanced (closed-loop) clients: the cross-shard client-order pass
        # assumes each client awaits a commit before its next invocation,
        # which window-based saturating clients intentionally violate.
        spec = ExperimentSpec(
            name="batch-shard",
            protocol="mencius",
            sites=("S0", "S1", "S2"),
            latency="uniform",
            one_way_ms=0.1,
            workload=WorkloadSpec(
                scenario="balanced",
                clients_per_site=6,
                think_time_max_ms=2.0,
                app="kv",
            ),
            duration_s=0.3,
            warmup_s=0.05,
            sharding=ShardingSpec(shards=2),
            batching=BatchingSpec(max_batch=8),
        )
        result = Deployment(spec).run()
        assert result.shards is not None and len(result.shards) == 2
        assert result.total_committed > 0
        checked = check_spec(spec, backend="sim")
        assert checked.linearizable, checked.report.describe()

    def test_async_backend_scales_the_window_like_every_other_delay(self):
        from repro.experiment.async_backend import AsyncBackend

        spec = self._experiment(
            "mencius", BatchingSpec(max_batch=8, window_us=500, pipeline_depth=2)
        )
        scaled = AsyncBackend(time_scale=10)._scaled_batching(spec)
        assert scaled.window_us == 50  # spec-time 500 us -> wall-clock 50 us
        assert (scaled.max_batch, scaled.pipeline_depth) == (8, 2)
        unscaled = AsyncBackend(time_scale=1)._scaled_batching(spec)
        assert unscaled.window_us == 500
        zero = self._experiment("mencius", BatchingSpec(max_batch=8, window_us=0))
        assert AsyncBackend(time_scale=10)._scaled_batching(zero).window_us == 0

    def test_pipeline_depth_applies_to_async_clients(self):
        spec = self._experiment(
            "clock-rsm", BatchingSpec(max_batch=8, window_us=0, pipeline_depth=4)
        )
        spec = ExperimentSpec.from_dict({**spec.to_dict(), "duration_s": 1.0})
        result = Deployment(spec, backend="async", time_scale=10).run()
        assert result.total_committed > 0
