"""Tests for the analytical latency model (Table II)."""

from __future__ import annotations

import pytest

from repro.analysis.ec2 import ec2_latency_matrix
from repro.analysis.latency_model import (
    clock_rsm_balanced,
    clock_rsm_imbalanced,
    clock_rsm_light_imbalanced,
    clock_rsm_majority_replication,
    clock_rsm_prefix_replication_worst,
    clock_rsm_stable_order_best,
    clock_rsm_stable_order_worst,
    max_delay,
    median_delay,
    mencius_bcast_balanced_bounds,
    mencius_bcast_imbalanced,
    paxos_bcast_latency,
    paxos_latency,
    protocol_latency,
)
from repro.net.latency import LatencyMatrix
from repro.types import ms_to_micros


def uniform(n: int, one_way_ms: float = 50.0) -> LatencyMatrix:
    return LatencyMatrix.uniform([f"dc{i}" for i in range(n)], ms_to_micros(one_way_ms))


class TestHelpers:
    def test_median_delay_counts_self(self):
        matrix = uniform(5, 50.0)
        # Majority of five includes self plus the two nearest peers.
        assert median_delay(matrix, 0) == ms_to_micros(50.0)
        assert max_delay(matrix, 0) == ms_to_micros(50.0)

    def test_median_delay_three_replicas_is_nearest_peer(self):
        matrix = LatencyMatrix.from_rtt_ms(
            ["A", "B", "C"], {("A", "B"): 20.0, ("A", "C"): 100.0, ("B", "C"): 60.0}
        )
        assert median_delay(matrix, 0) == ms_to_micros(10.0)


class TestUniformLatencies:
    """With uniform inter-replica delay d, the formulas collapse to known values."""

    def test_clock_rsm_uniform(self):
        matrix = uniform(5)
        d = ms_to_micros(50.0)
        assert clock_rsm_majority_replication(matrix, 0) == 2 * d
        assert clock_rsm_stable_order_best(matrix, 0) == d
        assert clock_rsm_stable_order_worst(matrix, 0) == 2 * d
        assert clock_rsm_prefix_replication_worst(matrix, 0) == 2 * d
        assert clock_rsm_balanced(matrix, 0) == 2 * d
        assert clock_rsm_imbalanced(matrix, 0) == 2 * d

    def test_paxos_uniform(self):
        matrix = uniform(5)
        d = ms_to_micros(50.0)
        assert paxos_latency(matrix, origin=0, leader=0) == 2 * d
        assert paxos_latency(matrix, origin=1, leader=0) == 4 * d
        assert paxos_bcast_latency(matrix, origin=0, leader=0) == 2 * d
        assert paxos_bcast_latency(matrix, origin=1, leader=0) == 3 * d

    def test_mencius_uniform(self):
        matrix = uniform(5)
        d = ms_to_micros(50.0)
        assert mencius_bcast_imbalanced(matrix, 0) == 2 * d
        low, high = mencius_bcast_balanced_bounds(matrix, 0)
        assert low == 2 * d and high == 3 * d

    def test_clock_rsm_beats_paxos_bcast_at_non_leaders_with_uniform_latency(self):
        # The paper's intuition: with uniform latencies Clock-RSM always wins
        # at non-leader replicas (2d vs 3d) and ties at the leader.
        matrix = uniform(7)
        for origin in range(1, 7):
            assert clock_rsm_balanced(matrix, origin) < paxos_bcast_latency(matrix, origin, 0)
        assert clock_rsm_balanced(matrix, 0) == paxos_bcast_latency(matrix, 0, 0)


class TestEc2Placements:
    """Spot-check Table II instantiated with the paper's Table III data."""

    @pytest.fixture
    def five(self):
        return ec2_latency_matrix(["CA", "VA", "IR", "JP", "SG"])

    def test_paxos_leader_va(self, five):
        # Leader VA: one round trip to its majority {VA, CA, IR}.
        assert paxos_latency(five, origin=1, leader=1) == ms_to_micros(101.0)

    def test_paxos_nonleader_ca_with_leader_va(self, five):
        expected = ms_to_micros(2 * 41.5 + 101.0)
        assert paxos_latency(five, origin=0, leader=1) == expected

    def test_paxos_bcast_nonleader_ca_with_leader_va(self, five):
        # d(CA,VA) + median_k(d(VA,k) + d(k,CA)) = 41.5 + 135.5
        assert paxos_bcast_latency(five, origin=0, leader=1) == ms_to_micros(177.0)

    def test_clock_rsm_ca_balanced(self, five):
        # Dominated by the prefix-replication term (135.5 ms), cf. DESIGN.md.
        assert clock_rsm_balanced(five, 0) == ms_to_micros(135.5)

    def test_clock_rsm_ca_imbalanced(self, five):
        # max(2 * median, max one-way) = max(125, 85.5).
        assert clock_rsm_imbalanced(five, 0) == ms_to_micros(125.0)

    def test_mencius_imbalanced_is_round_trip_to_farthest(self, five):
        assert mencius_bcast_imbalanced(five, 0) == ms_to_micros(171.0)

    def test_light_imbalanced_with_and_without_clocktime(self, five):
        without = clock_rsm_light_imbalanced(five, 0)
        with_ext = clock_rsm_light_imbalanced(five, 0, clocktime_interval=ms_to_micros(5.0))
        assert without == ms_to_micros(171.0)   # 2 * max one-way
        assert with_ext == ms_to_micros(125.0)  # max(2*median, max + Δ)
        assert with_ext < without

    def test_balanced_latency_at_least_imbalanced(self, five):
        for origin in range(5):
            assert clock_rsm_balanced(five, origin) >= clock_rsm_imbalanced(five, origin)


class TestProtocolLatencyDispatch:
    def test_dispatch_matches_specific_functions(self):
        matrix = ec2_latency_matrix(["CA", "VA", "IR"])
        assert protocol_latency("clock-rsm", matrix, 0) == clock_rsm_balanced(matrix, 0)
        assert protocol_latency("clock-rsm", matrix, 0, balanced=False) == clock_rsm_imbalanced(matrix, 0)
        assert protocol_latency("paxos", matrix, 2, leader=1) == paxos_latency(matrix, 2, 1)
        assert protocol_latency("paxos-bcast", matrix, 2, leader=1) == paxos_bcast_latency(matrix, 2, 1)
        low, high = mencius_bcast_balanced_bounds(matrix, 1)
        assert protocol_latency("mencius-bcast", matrix, 1) == (low + high) // 2
        assert protocol_latency("mencius-bcast", matrix, 1, balanced=False) == mencius_bcast_imbalanced(matrix, 1)

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            protocol_latency("zab", ec2_latency_matrix(["CA", "VA", "IR"]), 0)
