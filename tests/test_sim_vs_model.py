"""Cross-validation: simulated latencies match the analytical model.

These tests close the loop between the two halves of the reproduction: the
discrete-event simulation (which produced the experimental figures) and the
closed-form Table II model (which produced the numerical comparison).  For
imbalanced single-origin workloads the analytical prediction is exact, so the
simulated mean must sit within a small tolerance of it; for balanced
workloads the model's value is an upper envelope that the simulation should
approach but not exceed by much.
"""

from __future__ import annotations

import pytest

from repro.analysis.ec2 import ec2_latency_matrix
from repro.analysis.latency_model import (
    clock_rsm_balanced,
    clock_rsm_imbalanced,
    mencius_bcast_imbalanced,
    paxos_bcast_latency,
    paxos_latency,
)
from repro.bench.latency_experiments import LatencyExperimentConfig, latency_experiment
from repro.types import micros_to_ms, ms_to_micros, seconds_to_micros

FIVE = ("CA", "VA", "IR", "JP", "SG")

#: Tolerance (ms) between simulated means and analytical predictions: covers
#: the CLOCKTIME quantisation, the one-microsecond clock waits, and sampling.
TOLERANCE_MS = 8.0


def _run(protocol: str, *, balanced: bool, origin: str | None = None, leader: str = "CA"):
    config = LatencyExperimentConfig(
        sites=FIVE,
        leader_site=leader,
        balanced=balanced,
        origin_site=origin,
        duration=seconds_to_micros(6.0),
        warmup=seconds_to_micros(1.0),
        clients_per_replica=8,
        jitter_fraction=0.0,
        seed=13,
    )
    return latency_experiment(protocol, config)


class TestImbalancedMatchesModelExactly:
    @pytest.mark.parametrize("origin", ["CA", "SG"])
    def test_clock_rsm(self, origin):
        matrix = ec2_latency_matrix(FIVE)
        result = _run("clock-rsm", balanced=False, origin=origin)
        predicted = micros_to_ms(clock_rsm_imbalanced(matrix, FIVE.index(origin)))
        assert result.mean_ms(origin) == pytest.approx(predicted, abs=TOLERANCE_MS)

    @pytest.mark.parametrize("origin", ["CA", "SG"])
    def test_mencius_bcast(self, origin):
        matrix = ec2_latency_matrix(FIVE)
        result = _run("mencius-bcast", balanced=False, origin=origin)
        predicted = micros_to_ms(mencius_bcast_imbalanced(matrix, FIVE.index(origin)))
        assert result.mean_ms(origin) == pytest.approx(predicted, abs=TOLERANCE_MS)

    @pytest.mark.parametrize("origin,leader", [("CA", "CA"), ("SG", "CA"), ("VA", "VA")])
    def test_paxos(self, origin, leader):
        matrix = ec2_latency_matrix(FIVE)
        result = _run("paxos", balanced=False, origin=origin, leader=leader)
        predicted = micros_to_ms(
            paxos_latency(matrix, FIVE.index(origin), FIVE.index(leader))
        )
        assert result.mean_ms(origin) == pytest.approx(predicted, abs=TOLERANCE_MS)

    @pytest.mark.parametrize("origin,leader", [("CA", "CA"), ("JP", "CA"), ("CA", "VA")])
    def test_paxos_bcast(self, origin, leader):
        matrix = ec2_latency_matrix(FIVE)
        result = _run("paxos-bcast", balanced=False, origin=origin, leader=leader)
        predicted = micros_to_ms(
            paxos_bcast_latency(matrix, FIVE.index(origin), FIVE.index(leader))
        )
        assert result.mean_ms(origin) == pytest.approx(predicted, abs=TOLERANCE_MS)


class TestBalancedWorkloadBounds:
    def test_clock_rsm_balanced_stays_between_imbalanced_and_worst_case(self):
        matrix = ec2_latency_matrix(FIVE)
        result = _run("clock-rsm", balanced=True)
        for site in FIVE:
            origin = FIVE.index(site)
            lower = micros_to_ms(clock_rsm_imbalanced(matrix, origin))
            upper = micros_to_ms(clock_rsm_balanced(matrix, origin))
            assert result.mean_ms(site) >= lower - TOLERANCE_MS
            assert result.mean_ms(site) <= upper + TOLERANCE_MS

    def test_paxos_bcast_balanced_matches_model_at_every_site(self):
        matrix = ec2_latency_matrix(FIVE)
        result = _run("paxos-bcast", balanced=True, leader="VA")
        for site in FIVE:
            predicted = micros_to_ms(
                paxos_bcast_latency(matrix, FIVE.index(site), FIVE.index("VA"))
            )
            assert result.mean_ms(site) == pytest.approx(predicted, abs=TOLERANCE_MS)


class TestPaperHeadlineClaims:
    """The qualitative claims of the paper's evaluation, checked in-simulator."""

    def test_clock_rsm_beats_paxos_bcast_at_non_leader_replicas_with_five_sites(self):
        clock = _run("clock-rsm", balanced=True, leader="VA")
        paxos = _run("paxos-bcast", balanced=True, leader="VA")
        non_leader_sites = [s for s in FIVE if s != "VA"]
        wins = sum(1 for s in non_leader_sites if clock.mean_ms(s) < paxos.mean_ms(s))
        assert wins >= 3  # the paper: lower at non-leader replicas in most cases

    def test_clock_rsm_never_loses_to_mencius_bcast(self):
        clock = _run("clock-rsm", balanced=True, leader="CA")
        mencius = _run("mencius-bcast", balanced=True, leader="CA")
        for site in FIVE:
            assert clock.mean_ms(site) <= mencius.mean_ms(site) + TOLERANCE_MS

    def test_mencius_bcast_tail_is_wider_than_clock_rsm(self):
        clock = _run("clock-rsm", balanced=True, leader="CA")
        mencius = _run("mencius-bcast", balanced=True, leader="CA")
        clock_spread = sum(clock.p95_ms(s) - clock.mean_ms(s) for s in FIVE)
        mencius_spread = sum(mencius.p95_ms(s) - mencius.mean_ms(s) for s in FIVE)
        assert mencius_spread > clock_spread
