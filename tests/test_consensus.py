"""Tests for the single-decree Paxos consensus substrate."""

from __future__ import annotations

import pytest

from repro.consensus.single_paxos import (
    ConsensusDecision,
    InstanceManager,
    Outgoing,
    PaxosInstance,
    PaxosLearn,
    PaxosP1a,
    PaxosP1b,
    PaxosP2a,
    PaxosP2b,
)


def deliver_all(instances: dict[int, PaxosInstance], outgoing: list[tuple[int, Outgoing]]):
    """Synchronously deliver consensus messages until quiescence.

    ``outgoing`` holds (sender, Outgoing) pairs; broadcast messages go to
    every instance.  Returns the set of decisions observed.
    """
    decisions = {}
    queue = list(outgoing)
    while queue:
        sender, out = queue.pop(0)
        targets = list(instances) if out.dst is None else [out.dst]
        for target in targets:
            more, decision = instances[target].on_message(sender, out.message)
            queue.extend((target, m) for m in more)
            if decision is not None:
                decisions[target] = decision.value
    return decisions


def make_instances(n: int = 3, instance: int = 0) -> dict[int, PaxosInstance]:
    return {rid: PaxosInstance(instance, rid, n) for rid in range(n)}


class TestSinglePaxos:
    def test_single_proposer_decides_its_value(self):
        instances = make_instances(3)
        outgoing = [(0, out) for out in instances[0].propose("value-A")]
        decisions = deliver_all(instances, outgoing)
        assert set(decisions.values()) == {"value-A"}
        assert set(decisions) == {0, 1, 2}

    def test_replica_zero_skips_phase_one(self):
        instances = make_instances(3)
        outgoing = instances[0].propose("fast")
        assert len(outgoing) == 1
        assert isinstance(outgoing[0].message, PaxosP2a)

    def test_other_proposers_run_phase_one(self):
        instances = make_instances(3)
        outgoing = instances[1].propose("slow")
        assert isinstance(outgoing[0].message, PaxosP1a)

    def test_competing_proposers_agree_on_one_value(self):
        instances = make_instances(5)
        outgoing = [(0, out) for out in instances[0].propose("zero")]
        outgoing += [(3, out) for out in instances[3].propose("three")]
        decisions = deliver_all(instances, outgoing)
        assert len(set(decisions.values())) == 1
        assert set(decisions.values()) <= {"zero", "three"}

    def test_acceptor_rejects_smaller_ballots(self):
        acceptor = PaxosInstance(0, 1, 3)
        out, _ = acceptor.on_message(2, PaxosP1a(0, 5))
        assert isinstance(out[0].message, PaxosP1b)
        out, _ = acceptor.on_message(0, PaxosP1a(0, 3))
        assert out == []  # smaller ballot is ignored
        out, _ = acceptor.on_message(0, PaxosP2a(0, 3, "stale"))
        assert out == []

    def test_phase1b_adopts_previously_accepted_value(self):
        proposer = PaxosInstance(0, 1, 3)
        proposer.propose("mine")
        ballot = 1  # round-0 ballot of replica 1 (round * N + replica_id)
        # Two phase-1b replies; one reports an already accepted value.
        out, _ = proposer.on_message(0, PaxosP1b(0, ballot, accepted_ballot=-1, accepted_value=None))
        assert out == []
        out, _ = proposer.on_message(2, PaxosP1b(0, ballot, accepted_ballot=0, accepted_value="theirs"))
        p2a = [o for o in out if isinstance(o.message, PaxosP2a)]
        assert len(p2a) == 1
        assert p2a[0].message.value == "theirs"

    def test_retry_advances_the_ballot(self):
        proposer = PaxosInstance(0, 2, 5)
        first = proposer.propose("v")[0].message
        retry = proposer.retry()[0].message
        assert retry.ballot > first.ballot

    def test_learn_decides_directly(self):
        learner = PaxosInstance(0, 4, 5)
        _, decision = learner.on_message(0, PaxosLearn(0, "decided"))
        assert decision == ConsensusDecision(0, "decided")
        assert learner.decided and learner.decided_value == "decided"

    def test_decided_instance_ignores_new_proposals(self):
        instance = PaxosInstance(0, 0, 3)
        instance.on_message(1, PaxosLearn(0, "done"))
        assert instance.propose("other") == []


class TestInstanceManager:
    def test_instances_are_independent(self):
        managers = {rid: InstanceManager(rid, 3) for rid in range(3)}
        # Run instance 1 and instance 2 with different proposers/values.
        def run(instance_number: int, proposer: int, value):
            queue = [(proposer, out) for out in managers[proposer].propose(instance_number, value)]
            decisions = {}
            while queue:
                sender, out = queue.pop(0)
                targets = list(managers) if out.dst is None else [out.dst]
                for target in targets:
                    more, decision = managers[target].on_message(sender, out.message)
                    queue.extend((target, m) for m in more)
                    if decision is not None:
                        decisions[target] = decision.value
            return decisions

        first = run(1, 0, "epoch-1")
        second = run(2, 1, "epoch-2")
        assert set(first.values()) == {"epoch-1"}
        assert set(second.values()) == {"epoch-2"}
        assert managers[2].decision(1) == "epoch-1"
        assert managers[2].decision(2) == "epoch-2"
        assert managers[2].decision(3) is None

    def test_non_consensus_messages_are_ignored(self):
        manager = InstanceManager(0, 3)
        assert manager.on_message(1, "not-a-paxos-message") == ([], None)
