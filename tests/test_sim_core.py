"""Tests for the discrete-event scheduler, environment and network."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.net.latency import LatencyMatrix
from repro.net.message import Envelope
from repro.sim.environment import SimulationEnvironment
from repro.sim.network import NetworkOptions, SimulatedNetwork
from repro.sim.scheduler import EventScheduler


class TestScheduler:
    def test_events_fire_in_time_order(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule_at(30, lambda: fired.append("c"))
        scheduler.schedule_at(10, lambda: fired.append("a"))
        scheduler.schedule_at(20, lambda: fired.append("b"))
        while (event := scheduler.pop()) is not None:
            scheduler.run_event(event)
        assert fired == ["a", "b", "c"]
        assert scheduler.executed_count == 3

    def test_same_time_events_fire_in_scheduling_order(self):
        scheduler = EventScheduler()
        fired = []
        for name in "abcd":
            scheduler.schedule_at(5, lambda n=name: fired.append(n))
        while (event := scheduler.pop()) is not None:
            scheduler.run_event(event)
        assert fired == ["a", "b", "c", "d"]

    def test_cancelled_events_are_skipped(self):
        scheduler = EventScheduler()
        fired = []
        event = scheduler.schedule_at(10, lambda: fired.append("x"))
        scheduler.schedule_at(20, lambda: fired.append("y"))
        event.cancel()
        assert len(scheduler) == 1
        while (e := scheduler.pop()) is not None:
            scheduler.run_event(e)
        assert fired == ["y"]

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventScheduler().schedule_at(-1, lambda: None)


class TestEnvironment:
    def test_schedule_and_run_until(self):
        env = SimulationEnvironment()
        fired = []
        env.schedule(100, lambda: fired.append(env.now))
        env.schedule(300, lambda: fired.append(env.now))
        executed = env.run_until(200)
        assert executed == 1
        assert fired == [100]
        assert env.now == 200  # time advances to the target even when idle
        env.run_until(400)
        assert fired == [100, 300]

    def test_run_for_is_relative(self):
        env = SimulationEnvironment()
        env.schedule(50, lambda: None)
        env.run_for(100)
        assert env.now == 100
        env.run_for(100)
        assert env.now == 200

    def test_nested_scheduling_during_events(self):
        env = SimulationEnvironment()
        fired = []

        def first():
            fired.append(("first", env.now))
            env.schedule(10, lambda: fired.append(("second", env.now)))

        env.schedule(5, first)
        env.run_until_idle()
        assert fired == [("first", 5), ("second", 15)]

    def test_cannot_schedule_in_the_past(self):
        env = SimulationEnvironment()
        env.schedule(10, lambda: None)
        env.run_until_idle()
        with pytest.raises(SimulationError):
            env.schedule_at(5, lambda: None)

    def test_run_until_idle_guards_against_livelock(self):
        env = SimulationEnvironment()

        def rearm():
            env.schedule(1, rearm)

        env.schedule(1, rearm)
        with pytest.raises(SimulationError):
            env.run_until_idle(max_events=1000)

    def test_deterministic_randomness(self):
        a, b = SimulationEnvironment(seed=9), SimulationEnvironment(seed=9)
        assert [a.random.random() for _ in range(5)] == [b.random.random() for _ in range(5)]


def _network(jitter: float = 0.0, seed: int = 0, loss: float = 0.0):
    env = SimulationEnvironment(seed=seed)
    matrix = LatencyMatrix.from_rtt_ms(["A", "B", "C"], {
        ("A", "B"): 100.0, ("A", "C"): 200.0, ("B", "C"): 50.0,
    })
    network = SimulatedNetwork(env, matrix, NetworkOptions(jitter_fraction=jitter, loss_probability=loss))
    received: dict[int, list[tuple]] = {0: [], 1: [], 2: []}
    for rid in range(3):
        network.attach(rid, lambda e, t, r=rid: received[r].append((e.message, t)))
    return env, network, received


class TestSimulatedNetwork:
    def test_delivery_uses_latency_matrix(self):
        env, network, received = _network()
        network.send(Envelope(0, 1, "hello"))
        network.send(Envelope(0, 2, "far"))
        env.run_until_idle()
        assert received[1] == [("hello", 50_000)]
        assert received[2] == [("far", 100_000)]
        assert network.delivered_count == 2

    def test_fifo_per_channel_even_with_jitter(self):
        env, network, received = _network(jitter=0.5, seed=3)
        for i in range(50):
            network.send(Envelope(0, 1, i))
        env.run_until_idle()
        messages = [m for m, _ in received[1]]
        assert messages == list(range(50))
        times = [t for _, t in received[1]]
        assert times == sorted(times)

    def test_partition_and_heal(self):
        env, network, received = _network()
        network.partition(0, 1)
        network.send(Envelope(0, 1, "lost"))
        env.run_until_idle()
        assert received[1] == []
        assert network.dropped_count == 1
        network.heal(0, 1)
        network.send(Envelope(0, 1, "ok"))
        env.run_until_idle()
        assert [m for m, _ in received[1]] == ["ok"]

    def test_isolate_blocks_all_traffic(self):
        env, network, received = _network()
        network.isolate(2)
        network.send(Envelope(0, 2, "x"))
        network.send(Envelope(2, 1, "y"))
        env.run_until_idle()
        assert received[2] == [] and received[1] == []
        network.heal_all()
        network.send(Envelope(0, 2, "later"))
        env.run_until_idle()
        assert [m for m, _ in received[2]] == ["later"]

    def test_crashed_destination_drops_in_flight_messages(self):
        env, network, received = _network()
        network.send(Envelope(0, 1, "in-flight"))
        network.set_down(1, True)
        env.run_until_idle()
        assert received[1] == []
        network.set_down(1, False)
        network.send(Envelope(0, 1, "after"))
        env.run_until_idle()
        assert [m for m, _ in received[1]] == ["after"]

    def test_message_loss_probability(self):
        env, network, received = _network(loss=1.0)
        network.send(Envelope(0, 1, "gone"))
        env.run_until_idle()
        assert received[1] == []
        assert network.dropped_count == 1

    def test_statistics_track_bytes(self):
        env, network, _ = _network()
        network.send(Envelope(0, 1, "m", size_hint=500))
        assert network.bytes_sent == 500
        assert network.sent_count == 1
