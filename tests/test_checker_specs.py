"""The adversarial spec library stays linearizable, for every protocol.

Each spec in ``examples/specs`` scripts a fault scenario against the
consistency claim (crash with no leader, minority partition, clock jumps
mid-commit, recovery with rejoin).  These tests run shrunk versions of the
shipped files seeded and deterministically on the simulator, across all
registered protocols where the scenario applies, and require the recorded
history to pass the linearizability checker; the full-size files run in CI
via ``repro check``.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path

import pytest

from repro.experiment import ExperimentSpec, check_spec
from repro.protocols.registry import protocol_capabilities

from tests.helpers import ALL_PROTOCOLS

SPECS_DIR = Path(__file__).resolve().parent.parent / "examples" / "specs"

#: The scenarios that make sense for every protocol (rejoin recovery needs
#: the reconfiguration capability and stays Clock-RSM-only).
PORTABLE_SPECS = (
    "crash_leaderless_commit.toml",
    "partition_minority.toml",
    "clock_jump_during_commit.toml",
)


def quick(spec: ExperimentSpec, protocol: str) -> ExperimentSpec:
    """Shrink a shipped spec so the whole sweep stays test-suite fast."""
    scale = 0.55
    faults = tuple(
        replace(
            fault,
            at_s=fault.at_s * scale,
            heal_at_s=fault.heal_at_s * scale if fault.heal_at_s is not None else None,
        )
        for fault in spec.faults
    )
    shrunk = replace(
        spec,
        duration_s=max(1.0, spec.duration_s * scale),
        workload=replace(spec.workload, clients_per_site=2),
        faults=faults,
    )
    return shrunk.with_protocol(protocol)


@pytest.mark.parametrize("spec_file", PORTABLE_SPECS)
def test_adversarial_spec_passes_checker(spec_file, any_protocol):
    spec = quick(ExperimentSpec.from_file(SPECS_DIR / spec_file), any_protocol)
    run = check_spec(spec)
    assert run.linearizable, run.report.violation
    assert run.result.total_committed > 0
    assert run.result.history is not None
    assert run.report.completed > 0


def test_recover_with_rejoin_spec_passes_checker():
    spec = ExperimentSpec.from_file(SPECS_DIR / "recover_with_rejoin.toml")
    assert protocol_capabilities(spec.protocol).supports_reconfiguration
    run = check_spec(quick(spec, spec.protocol))
    assert run.linearizable, run.report.violation
    # The recovered replica replays its log and rejoins the total order.
    recovered = spec.cluster_spec().by_site("IR").replica_id
    assert run.result.replica_metrics[recovered]["executed"] > 0


def test_spec_sweep_is_deterministic():
    spec = quick(
        ExperimentSpec.from_file(SPECS_DIR / "crash_leaderless_commit.toml"),
        "clock-rsm",
    )
    first = check_spec(spec)
    second = check_spec(spec)
    assert first.result.total_committed == second.result.total_committed
    assert len(first.result.history.ops) == len(second.result.history.ops)
    assert first.report.to_dict() == second.report.to_dict()


def test_shipped_fig1_spec_passes_checker_at_reduced_scale():
    # The acceptance scenario (`repro check examples/specs/fig1_balanced_5.toml`)
    # at a size suitable for the tier-1 suite.
    spec = ExperimentSpec.from_file(SPECS_DIR / "fig1_balanced_5.toml")
    shrunk = replace(
        spec,
        duration_s=1.0,
        warmup_s=0.2,
        workload=replace(spec.workload, clients_per_site=3),
    )
    run = check_spec(shrunk)
    assert run.linearizable
    assert run.report.method == "total-order"


def test_all_protocols_are_swept():
    assert set(ALL_PROTOCOLS) == {
        "clock-rsm", "paxos", "paxos-bcast", "mencius", "mencius-bcast",
    }
