"""Hypothesis property tests for Clock-RSM log replay (core/recovery.py).

For arbitrary valid interleavings of PREPARE entries and COMMIT marks —
prepares in any order, commits in timestamp order after their prepare —
``replay_log`` must be idempotent and must agree with a state machine that
applied the same commands live, at commit time, during normal operation.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.messages import CommitRecord, PrepareRecord
from repro.core.recovery import replay_log
from repro.kvstore.commands import encode_put
from repro.kvstore.kv import KVStateMachine
from repro.storage.memory_log import InMemoryLog
from repro.types import Command, CommandId, Timestamp, ZERO_TS


@st.composite
def log_interleavings(draw):
    """A valid Clock-RSM log: shuffled prepares, ordered commit marks.

    Returns ``(records, committed_ts)`` where *records* respects the two log
    invariants replay relies on — a COMMIT mark appears after its PREPARE,
    and COMMIT marks appear in ascending timestamp order — while PREPARE
    entries land in arbitrary positions, as concurrent originators produce.
    """
    micros = draw(
        st.lists(
            st.integers(min_value=1, max_value=50_000),
            unique=True,
            min_size=0,
            max_size=16,
        )
    )
    entries = []
    for index, m in enumerate(micros):
        replica = draw(st.integers(min_value=0, max_value=2))
        key = f"key-{draw(st.integers(min_value=0, max_value=3))}"
        value = bytes([index % 251]) * draw(st.integers(min_value=0, max_value=4))
        command = Command(CommandId(f"client-{replica}", index + 1), encode_put(key, value))
        entries.append(PrepareRecord(command, Timestamp(m, replica)))

    committed = [e for e in entries if draw(st.booleans())]
    committed.sort(key=lambda e: e.ts)

    records: list = draw(st.permutations(entries)) if entries else []
    # Insert each COMMIT mark (ascending ts) at a position after both its
    # own PREPARE and the previous COMMIT mark.
    floor = 0
    for entry in committed:
        lowest = max(records.index(entry) + 1, floor)
        position = draw(st.integers(min_value=lowest, max_value=len(records)))
        records.insert(position, CommitRecord(entry.ts))
        floor = position + 1
    return records, tuple(e.ts for e in committed)


@settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=log_interleavings())
def test_replay_is_idempotent(data):
    records, _committed = data
    log = InMemoryLog(records)
    first = replay_log(log)
    second = replay_log(log)
    assert first == second
    assert len(log) == len(records)  # replay never mutates the log


@settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=log_interleavings())
def test_replay_executes_exactly_the_committed_prefix_in_ts_order(data):
    records, committed = data
    recovered = replay_log(InMemoryLog(records))
    assert tuple(r.ts for r in recovered.executed) == committed
    # Orphans are the uncommitted prepares, in timestamp order.
    prepared = {r.ts for r in records if isinstance(r, PrepareRecord)}
    assert tuple(r.ts for r in recovered.orphans) == tuple(
        sorted(prepared - set(committed))
    )
    assert recovered.last_committed_ts == (committed[-1] if committed else ZERO_TS)
    highest = max(prepared, default=ZERO_TS)
    assert recovered.highest_ts == max(highest, recovered.last_committed_ts)


@settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=log_interleavings())
def test_replay_agrees_with_the_live_state_machine(data):
    """Replaying after a crash reproduces the live apply path exactly.

    The "live" replica applies each command the moment its COMMIT mark is
    written (normal operation); the recovering replica replays the whole log
    afterwards.  Both must end with identical state machines.
    """
    records, _committed = data
    live = KVStateMachine()
    pending: dict[Timestamp, PrepareRecord] = {}
    applied_live = []
    for record in records:
        if isinstance(record, PrepareRecord):
            pending.setdefault(record.ts, record)
        else:
            entry = pending.pop(record.ts)
            applied_live.append(live.apply(entry.command))

    recovered = replay_log(InMemoryLog(records))
    replayed = KVStateMachine()
    applied_replay = [replayed.apply(r.command) for r in recovered.executed]

    assert applied_replay == applied_live  # same outputs (previous values)
    assert replayed.snapshot() == live.snapshot()  # same final state
