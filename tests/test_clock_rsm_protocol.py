"""Step-by-step unit tests of the Clock-RSM replica (Algorithm 1 + 2)."""

from __future__ import annotations

import pytest

from repro.clocks.base import ManualClock
from repro.config import ClusterSpec, ProtocolConfig
from repro.core.messages import ClockTime, CommitRecord, Prepare, PrepareOk, PrepareRecord
from repro.core.protocol import ClockRsmReplica
from repro.protocols.base import Broadcast, ClientReply, Send, SetTimer
from repro.statemachine import AppendLogStateMachine
from repro.storage.memory_log import InMemoryLog
from repro.types import Command, CommandId, Timestamp


def build_replica(
    replica_id: int = 0,
    sites=("CA", "VA", "IR"),
    clock_start: int = 1_000,
    **config_kwargs,
) -> tuple[ClockRsmReplica, ManualClock, InMemoryLog]:
    spec = ClusterSpec.from_sites(list(sites))
    clock = ManualClock(clock_start)
    log = InMemoryLog()
    replica = ClockRsmReplica(
        replica_id,
        spec,
        clock=clock,
        log=log,
        state_machine=AppendLogStateMachine(),
        config=ProtocolConfig(**config_kwargs),
    )
    return replica, clock, log


def command(seq: int = 1, payload: bytes = b"value") -> Command:
    return Command(CommandId("client", seq), payload)


def only(actions, kind):
    """All actions of the given type."""
    return [a for a in actions if isinstance(a, kind)]


class TestClientRequest:
    def test_request_broadcasts_prepare_with_clock_timestamp(self):
        replica, clock, _ = build_replica(replica_id=1, clock_start=500)
        actions = replica.on_client_request(command())
        broadcasts = only(actions, Broadcast)
        assert len(broadcasts) == 1
        prepare = broadcasts[0].message
        assert isinstance(prepare, Prepare)
        assert prepare.ts.replica == 1
        assert prepare.ts.micros >= 500
        assert broadcasts[0].include_self is True

    def test_successive_requests_have_strictly_increasing_timestamps(self):
        replica, _, _ = build_replica()
        ts = []
        for seq in range(5):
            actions = replica.on_client_request(command(seq))
            ts.append(only(actions, Broadcast)[0].message.ts)
        assert ts == sorted(ts)
        assert len(set(ts)) == 5

    def test_requests_parked_while_suspended(self):
        replica, _, _ = build_replica()
        replica.freeze()
        assert replica.on_client_request(command()) == []
        resumed = replica.resume()
        assert len(only(resumed, Broadcast)) == 1


class TestPrepareHandling:
    def test_prepare_is_logged_and_acknowledged_to_all(self):
        replica, clock, log = build_replica(replica_id=1, clock_start=10_000)
        prepare = Prepare(command(), Timestamp(5_000, 0))
        actions = replica.on_message(0, prepare)
        # Logged before acknowledging.
        assert isinstance(log.snapshot()[0], PrepareRecord)
        oks = [a for a in only(actions, Broadcast) if isinstance(a.message, PrepareOk)]
        assert len(oks) == 1
        assert oks[0].message.ts == Timestamp(5_000, 0)
        # The acknowledgement carries a clock reading above the command's.
        assert oks[0].message.clock_micros > 5_000
        # LatestTV records the origin's timestamp.
        assert replica.state.latest_tv[0] == 5_000

    def test_prepare_ahead_of_clock_waits_before_acknowledging(self):
        replica, clock, _ = build_replica(replica_id=1, clock_start=1_000)
        prepare = Prepare(command(), Timestamp(3_000, 0))
        actions = replica.on_message(0, prepare)
        # No PREPAREOK yet: the replica must wait until its clock passes ts.
        assert not [a for a in only(actions, Broadcast) if isinstance(a.message, PrepareOk)]
        timers = only(actions, SetTimer)
        assert len(timers) == 1
        assert timers[0].delay == 3_000 - 1_000 + 1
        # Once the clock has advanced past the timestamp the ack goes out.
        clock.advance(5_000)
        fired = replica.on_timer(timers[0].timer)
        oks = [a for a in only(fired, Broadcast) if isinstance(a.message, PrepareOk)]
        assert len(oks) == 1
        assert oks[0].message.clock_micros > 3_000

    def test_prepare_ahead_of_clock_with_wait_disabled_bumps_forward(self):
        replica, _, _ = build_replica(replica_id=1, clock_start=1_000, wait_for_clock=False)
        actions = replica.on_message(0, Prepare(command(), Timestamp(3_000, 0)))
        oks = [a for a in only(actions, Broadcast) if isinstance(a.message, PrepareOk)]
        assert len(oks) == 1
        assert oks[0].message.clock_micros > 3_000

    def test_prepare_dropped_while_suspended(self):
        replica, _, log = build_replica(replica_id=1, clock_start=10_000)
        replica.freeze()
        actions = replica.on_message(0, Prepare(command(), Timestamp(5_000, 0)))
        assert actions == []
        assert len(log) == 0

    def test_stale_epoch_message_dropped(self):
        replica, _, log = build_replica(replica_id=1, clock_start=10_000)
        replica.epoch = 2
        actions = replica.on_message(0, Prepare(command(), Timestamp(5_000, 0), epoch=1))
        assert actions == []
        assert len(log) == 0


class TestCommitRule:
    def _deliver_prepare_everywhere(self, replicas, prepare):
        """Deliver a PREPARE to every replica and return their PREPAREOKs."""
        oks = {}
        for replica in replicas.values():
            actions = replica.on_message(prepare.ts.replica, prepare)
            ok = [a.message for a in actions if isinstance(a, Broadcast) and isinstance(a.message, PrepareOk)]
            if ok:
                oks[replica.replica_id] = ok[0]
        return oks

    def test_command_commits_after_majority_and_stable_order(self):
        replicas = {}
        clocks = {}
        spec_sites = ("CA", "VA", "IR")
        for rid in range(3):
            replica, clock, _ = build_replica(
                replica_id=rid, sites=spec_sites, clock_start=1_000, wait_for_clock=False
            )
            replicas[rid], clocks[rid] = replica, clock

        origin = replicas[0]
        request_actions = origin.on_client_request(command())
        prepare = only(request_actions, Broadcast)[0].message

        oks = self._deliver_prepare_everywhere(replicas, prepare)
        assert set(oks) == {0, 1, 2}

        # Deliver replica 1's PREPAREOK to the origin: majority (0 and 1) have
        # logged the command but replica 2's clock promise is still missing.
        origin.on_message(1, oks[1])
        assert origin.executed_count == 0
        # Replica 2's acknowledgement provides both the third log copy and the
        # final stable-order promise, so the command commits and executes.
        actions = origin.on_message(2, oks[2])
        assert origin.executed_count == 1
        replies = only(actions, ClientReply)
        assert len(replies) == 1
        assert replies[0].command_id == CommandId("client", 1)

    def test_non_origin_replicas_execute_but_do_not_reply(self):
        replicas = {rid: build_replica(replica_id=rid, wait_for_clock=False)[0] for rid in range(3)}
        origin = replicas[0]
        prepare = only(origin.on_client_request(command()), Broadcast)[0].message
        oks = self._deliver_prepare_everywhere(replicas, prepare)
        follower = replicas[1]
        actions = []
        # Deliver every PREPAREOK, including the follower's own loopback copy
        # (broadcasts in Clock-RSM include the sender itself).
        for rid, ok in oks.items():
            actions += follower.on_message(rid, ok)
        assert follower.executed_count == 1
        assert only(actions, ClientReply) == []

    def test_commit_record_appended_after_prepare_record(self):
        replicas = {rid: build_replica(replica_id=rid, wait_for_clock=False)[0] for rid in range(3)}
        origin = replicas[0]
        prepare = only(origin.on_client_request(command()), Broadcast)[0].message
        oks = self._deliver_prepare_everywhere(replicas, prepare)
        for rid, ok in oks.items():
            origin.on_message(rid, ok)
        records = list(origin.log.records())
        assert isinstance(records[0], PrepareRecord)
        assert isinstance(records[-1], CommitRecord)
        assert records[-1].ts == prepare.ts
        assert origin.last_committed_ts == prepare.ts

    def test_commands_execute_in_timestamp_order_across_origins(self):
        replicas = {rid: build_replica(replica_id=rid, wait_for_clock=False)[0] for rid in range(3)}
        # Two commands from different origins; replica 2's has a larger ts.
        prepare_a = only(replicas[1].on_client_request(command(1)), Broadcast)[0].message
        prepare_b = only(replicas[2].on_client_request(command(2)), Broadcast)[0].message
        observer = replicas[0]
        # Deliver the larger-timestamp command first.
        ordered = sorted([prepare_a, prepare_b], key=lambda p: p.ts, reverse=True)
        all_oks = []
        for prepare in ordered:
            for replica in replicas.values():
                actions = replica.on_message(prepare.ts.replica, prepare)
                all_oks.extend(
                    (replica.replica_id, a.message)
                    for a in actions
                    if isinstance(a, Broadcast) and isinstance(a.message, PrepareOk)
                )
        for sender, ok in all_oks:
            observer.on_message(sender, ok)
        assert observer.executed_count == 2
        assert observer.execution_order == [
            p.command.command_id for p in sorted([prepare_a, prepare_b], key=lambda p: p.ts)
        ]


class TestClockTimeExtension:
    def test_start_arms_clocktime_timer(self):
        replica, _, _ = build_replica()
        timers = only(replica.start(), SetTimer)
        assert len(timers) == 1
        assert timers[0].timer.kind == "clocktime"
        assert timers[0].delay == replica.config.clocktime_interval

    def test_idle_replica_broadcasts_clock_time(self):
        replica, clock, _ = build_replica(clock_start=100_000)
        timer = only(replica.start(), SetTimer)[0].timer
        clock.advance(10_000)
        actions = replica.on_timer(timer)
        clock_times = [a for a in only(actions, Broadcast) if isinstance(a.message, ClockTime)]
        assert len(clock_times) == 1
        # The timer re-arms itself.
        assert len(only(actions, SetTimer)) == 1

    def test_recently_active_replica_does_not_broadcast(self):
        replica, clock, _ = build_replica(clock_start=100_000)
        timer = only(replica.start(), SetTimer)[0].timer
        # Sending a PREPARE updates LatestTV[self] via the loopback delivery.
        prepare = only(replica.on_client_request(command()), Broadcast)[0].message
        replica.on_message(replica.replica_id, prepare)
        actions = replica.on_timer(timer)
        clock_times = [a for a in only(actions, Broadcast) if isinstance(a.message, ClockTime)]
        assert clock_times == []

    def test_disabled_extension_never_broadcasts(self):
        replica, clock, _ = build_replica(enable_clocktime_broadcast=False)
        assert replica.start() == []

    def test_clock_time_message_updates_latest_tv(self):
        replica, _, _ = build_replica(replica_id=0)
        replica.on_message(2, ClockTime(55_555))
        assert replica.state.latest_tv[2] == 55_555


class TestRecovery:
    def test_replica_recovers_executed_commands_from_log(self):
        replicas = {rid: build_replica(replica_id=rid, wait_for_clock=False)[0] for rid in range(3)}
        origin = replicas[0]
        prepare = only(origin.on_client_request(command()), Broadcast)[0].message
        for replica in replicas.values():
            actions = replica.on_message(0, prepare)
            for action in actions:
                if isinstance(action, Broadcast) and isinstance(action.message, PrepareOk):
                    origin.on_message(replica.replica_id, action.message)
        assert origin.executed_count == 1

        # Restart a replica from the same log.
        spec = ClusterSpec.from_sites(["CA", "VA", "IR"])
        recovered = ClockRsmReplica(
            0,
            spec,
            clock=ManualClock(10_000_000),
            log=origin.log,
            state_machine=AppendLogStateMachine(),
            config=ProtocolConfig(),
            recover=True,
        )
        assert recovered.executed_count == 1
        assert recovered.last_committed_ts == prepare.ts
        # It never re-issues a timestamp at or below anything in its log.
        assert recovered.ts_source.next().micros > prepare.ts.micros
