"""The proc backend end to end: real processes, real TCP, real teardown.

These tests spawn actual worker processes (``python -m repro.launch.worker``)
per replica, so they are the slowest in the suite — each run costs about a
second of wall clock.  They deliberately keep specs tiny; throughput-oriented
coverage lives in ``benchmarks/test_bench_proc.py``.
"""

from __future__ import annotations

import asyncio
import os
import signal
from dataclasses import replace

import pytest

from repro.errors import ConfigurationError, LaunchError
from repro.experiment import (
    CpuSpec,
    Deployment,
    ExperimentSpec,
    FaultSpec,
    ShardingSpec,
    WorkloadSpec,
    check_spec,
    run_spec,
)
from repro.launch import ProcessBackend, Supervisor


def tiny(**kwargs) -> ExperimentSpec:
    defaults = dict(
        name="proc-test",
        protocol="clock-rsm",
        sites=("CA", "VA", "IR"),
        workload=WorkloadSpec(
            clients_per_site=2, think_time_min_ms=1.0, think_time_max_ms=3.0
        ),
        duration_s=0.4,
        warmup_s=0.1,
        seed=7,
    )
    defaults.update(kwargs)
    return ExperimentSpec(**defaults)


class TestProcessBackendRuns:
    def test_end_to_end_run(self):
        result = run_spec(tiny(), backend="proc", time_scale=1.0)
        assert result.backend == "proc"
        assert result.total_committed > 0
        assert set(result.sites) == {"CA", "VA", "IR"}
        for site_result in result.sites.values():
            assert site_result.committed > 0
            assert site_result.summary is not None
            # Real loopback round-trips: latencies are positive wall time.
            assert site_result.summary.mean_ms > 0
        # Replicas stayed in agreement on how much was executed.
        executed = {m["executed"] for m in result.replica_metrics.values()}
        assert all(v > 0 for v in executed)

    def test_metadata_reports_real_network_and_clean_exits(self):
        result = run_spec(tiny(), backend="proc", time_scale=1.0)
        assert result.metadata["latency_applied"] is False
        assert result.metadata["jitter_applied"] is False
        workers = result.metadata["workers"]
        assert set(workers) == {"0", "1", "2"}
        # Graceful teardown: every process acknowledged the exit message and
        # left on its own — no signal escalation, no orphans.
        assert all(w["exit"] == "clean" for w in workers.values())
        assert all(w["returncode"] == 0 for w in workers.values())

    def test_latency_split_is_recorded(self):
        result = run_spec(tiny(), backend="proc", time_scale=1.0)
        split = result.latency_split()
        assert split is not None
        assert split["samples"] > 0
        assert split["protocol_mean_us"] > 0

    def test_checked_run_is_linearizable(self):
        spec = tiny(name="proc-check", workload=WorkloadSpec(
            app="kv", clients_per_site=2, think_time_min_ms=1.0,
            think_time_max_ms=3.0,
        ))
        run = check_spec(spec, backend="proc", time_scale=1.0, submit_timeout=10.0)
        assert run.linearizable
        assert run.result.backend == "proc"

    def test_sharded_spec_runs_one_group_per_process_set(self):
        spec = tiny(
            name="proc-sharded",
            sharding=ShardingSpec(shards=2),
            workload=WorkloadSpec(
                clients_per_site=2, think_time_min_ms=1.0, think_time_max_ms=3.0
            ),
        )
        result = Deployment(spec, backend="proc", time_scale=1.0).run()
        assert result.shards is not None and len(result.shards) == 2
        assert result.total_committed == sum(
            shard.total_committed for shard in result.shards
        )
        for shard in result.shards:
            workers = shard.metadata["workers"]
            assert all(w["exit"] == "clean" for w in workers.values())


class TestValidation:
    def test_fault_schedules_rejected(self):
        spec = tiny(faults=(FaultSpec(kind="crash", site="CA", at_s=0.1),))
        with pytest.raises(ConfigurationError, match="fault"):
            run_spec(spec, backend="proc")

    def test_cpu_model_rejected(self):
        spec = tiny(cpu=CpuSpec(recv_fixed=10.0))
        with pytest.raises(ConfigurationError, match="CPU cost model"):
            run_spec(spec, backend="proc")

    def test_time_scale_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="time_scale"):
            ProcessBackend(time_scale=0)


class TestCrashHandling:
    def test_killed_worker_is_an_error_not_a_hang(self):
        """SIGKILL one worker mid-deployment: LaunchError, everyone reaped."""
        spec = tiny(name="proc-crash", duration_s=5.0, warmup_s=0.5)
        supervisor = Supervisor(spec, time_scale=1.0, submit_timeout=5.0)

        async def scenario():
            deploy = asyncio.create_task(supervisor.run())

            async def kill_one():
                # Wait for the first worker process to exist, then kill it
                # whatever phase the deployment is in.
                while not supervisor._handles:
                    await asyncio.sleep(0.02)
                handle = next(iter(supervisor._handles.values()))
                await asyncio.sleep(0.3)
                os.kill(handle.process.pid, signal.SIGKILL)

            killer = asyncio.create_task(kill_one())
            with pytest.raises(LaunchError):
                # The full run would take > 5 s; the crash must surface much
                # sooner, and never hang.
                await asyncio.wait_for(deploy, timeout=30.0)
            await killer

        asyncio.run(scenario())
        # Teardown accounting: every spawned process has been reaped.
        assert len(supervisor.worker_exits) == 3
        for handle in supervisor._handles.values():
            assert handle.process.returncode is not None

    def test_supervisor_teardown_leaves_no_orphans_on_success(self):
        spec = tiny(name="proc-orphans")
        supervisor = Supervisor(spec, time_scale=1.0, submit_timeout=10.0)

        async def scenario():
            payloads = await supervisor.run()
            assert set(payloads) == {0, 1, 2}

        asyncio.run(scenario())
        assert set(supervisor.worker_exits) == {0, 1, 2}
        for rid, handle in supervisor._handles.items():
            assert handle.process.returncode is not None, f"worker {rid} not reaped"
            # Process is really gone from the OS (kill 0 probes existence).
            with pytest.raises(ProcessLookupError):
                os.kill(handle.process.pid, 0)
