"""Tests for the backend-agnostic Deployment runner.

Includes the sim-vs-async parity smoke test: the same declarative spec runs
end-to-end on both backends and commits commands at every site, and the
shipped sample spec files execute through the ``repro run`` CLI.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.experiment import (
    BACKENDS,
    CpuSpec,
    Deployment,
    ExperimentSpec,
    FaultSpec,
    WorkloadSpec,
    run_comparison,
)

SPECS_DIR = Path(__file__).resolve().parent.parent / "examples" / "specs"

#: A deliberately small deployment so backend tests stay fast.
SMALL = ExperimentSpec(
    name="small",
    protocol="clock-rsm",
    sites=("CA", "VA", "IR"),
    workload=WorkloadSpec(clients_per_site=4, think_time_max_ms=40.0),
    duration_s=1.5,
    warmup_s=0.5,
    seed=11,
    cdf_sites=("CA",),
)


class TestSimBackend:
    def test_runs_and_reports_per_site_latency(self):
        result = Deployment(SMALL).run()
        assert result.backend == "sim"
        assert set(result.sites) == {"CA", "VA", "IR"}
        assert result.total_committed > 0
        for site_result in result.sites.values():
            assert site_result.committed > 0
            assert site_result.summary is not None
            assert site_result.summary.mean_ms > 0
        assert result.sites["CA"].cdf_ms, "requested CDF missing"
        assert result.throughput_kops == pytest.approx(
            result.total_committed / SMALL.duration_s / 1000.0
        )

    def test_same_seed_is_deterministic(self):
        first = Deployment(SMALL).run()
        second = Deployment(SMALL).run()
        assert first.total_committed == second.total_committed
        assert first.sites["CA"].summary == second.sites["CA"].summary

    def test_fault_schedule_is_installed(self):
        spec = ExperimentSpec(
            name="crash",
            protocol="clock-rsm",
            sites=("CA", "VA", "IR"),
            workload=WorkloadSpec(clients_per_site=2),
            faults=(
                FaultSpec(kind="crash", at_s=0.4, site="IR"),
                FaultSpec(kind="recover", at_s=0.9, site="IR", rejoin=True),
            ),
            duration_s=1.6,
            warmup_s=0.0,
            seed=5,
        )
        result = Deployment(spec).run()
        # The cluster survives the crash/recover cycle and keeps committing.
        assert result.total_committed > 0
        assert result.replica_metrics[2]["executed"] > 0

    def test_cpu_model_reports_utilization(self):
        spec = ExperimentSpec(
            name="cpu",
            protocol="paxos",
            sites=("dc0", "dc1", "dc2"),
            latency="uniform",
            one_way_ms=0.05,
            jitter_fraction=0.0,
            workload=WorkloadSpec(
                scenario="saturating", outstanding_per_site=8, payload_size=100, app="null"
            ),
            cpu=CpuSpec(recv_fixed=10.0, recv_per_byte=0.01, send_fixed=10.0,
                        send_per_byte=0.01, client_fixed=2.0),
            duration_s=0.1,
            warmup_s=0.03,
            seed=7,
        )
        result = Deployment(spec).run()
        assert result.total_committed > 0
        for metrics in result.replica_metrics.values():
            assert 0.0 <= metrics["utilization"] <= 1.0

    def test_saturating_workload_on_the_kv_app(self):
        # Regression: saturating clients must feed the kv state machine
        # decodable update commands, not opaque zero blobs.
        spec = ExperimentSpec(
            name="sat-kv",
            protocol="clock-rsm",
            sites=("CA", "VA", "IR"),
            workload=WorkloadSpec(scenario="saturating", outstanding_per_site=4),
            duration_s=0.4,
            warmup_s=0.1,
        )
        result = Deployment(spec).run()
        assert result.total_committed > 0

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            Deployment(SMALL, backend="kubernetes")
        assert set(BACKENDS) == {"sim", "async", "proc"}

    def test_comparison_covers_all_protocols(self):
        quick = ExperimentSpec(
            name="cmp",
            protocol="clock-rsm",
            sites=("CA", "VA", "IR"),
            workload=WorkloadSpec(clients_per_site=2),
            duration_s=0.8,
            warmup_s=0.2,
        )
        results = run_comparison(quick, ("clock-rsm", "paxos-bcast"))
        assert set(results) == {"clock-rsm", "paxos-bcast"}
        assert all(r.total_committed > 0 for r in results.values())


class TestAsyncBackend:
    def test_rejects_cpu_models_and_unknown_fault_kinds(self):
        # Fault schedules are supported on the async backend, but a fault
        # kind it has no implementation for must be rejected at validation
        # time, never silently dropped (see test_async_faults.py for the
        # injection tests themselves).
        from repro.experiment.async_backend import AsyncBackend
        from repro.experiment import spec as spec_module

        with_faults = ExperimentSpec(
            name="f",
            protocol="clock-rsm",
            sites=("CA", "VA", "IR"),
            faults=(FaultSpec(kind="crash", at_s=0.1, site="CA"),),
        )
        AsyncBackend()._check_supported(with_faults)  # crash is supported

        original_kinds = spec_module.FAULT_KINDS
        spec_module.FAULT_KINDS = original_kinds + ("teleport",)
        try:
            futuristic = ExperimentSpec(
                name="t",
                protocol="clock-rsm",
                sites=("CA", "VA", "IR"),
                faults=(FaultSpec(kind="teleport", at_s=0.1, site="CA"),),
            )
        finally:
            spec_module.FAULT_KINDS = original_kinds
        with pytest.raises(ConfigurationError, match="teleport"):
            Deployment(futuristic, backend="async").run()

        with_cpu = ExperimentSpec(
            name="c",
            protocol="clock-rsm",
            sites=("CA", "VA", "IR"),
            cpu=CpuSpec(),
        )
        with pytest.raises(ConfigurationError, match="CPU"):
            Deployment(with_cpu, backend="async").run()

    def test_invalid_backend_options_rejected(self):
        with pytest.raises(ConfigurationError, match="invalid options"):
            Deployment(SMALL, backend="async", warp_factor=9)


class TestEventLoopPolicy:
    """The ``[runtime] uvloop`` opt-in resolves to a loop factory, or falls
    back to the stdlib loop when uvloop is not installed."""

    def spec(self, uvloop: bool) -> ExperimentSpec:
        from dataclasses import replace

        from repro.experiment import RuntimeSpec

        return replace(SMALL, runtime=RuntimeSpec(uvloop=uvloop))

    def test_fallback_when_uvloop_missing(self, monkeypatch):
        import sys

        from repro.experiment.async_backend import AsyncBackend

        # Forcing ``import uvloop`` to fail makes the test independent of
        # whether the environment happens to have the package.
        monkeypatch.setitem(sys.modules, "uvloop", None)
        backend = AsyncBackend(time_scale=20)
        assert backend.loop_factory(self.spec(uvloop=True)) is None
        result = backend.run(self.spec(uvloop=True))
        assert result.metadata["event_loop"] == "asyncio"
        assert result.total_committed > 0

    def test_stub_uvloop_is_selected(self, monkeypatch):
        import asyncio
        import sys
        import types

        from repro.experiment.async_backend import AsyncBackend

        stub = types.ModuleType("uvloop")
        stub.new_event_loop = asyncio.new_event_loop
        monkeypatch.setitem(sys.modules, "uvloop", stub)
        backend = AsyncBackend(time_scale=20)
        assert backend.loop_factory(self.spec(uvloop=True)) is stub.new_event_loop
        # The spec's opt-out and the constructor override both win over it.
        assert backend.loop_factory(self.spec(uvloop=False)) is None
        forced_off = AsyncBackend(time_scale=20, uvloop=False)
        assert forced_off.loop_factory(self.spec(uvloop=True)) is None
        forced_on = AsyncBackend(time_scale=20, uvloop=True)
        assert forced_on.loop_factory(SMALL) is stub.new_event_loop

    def test_metadata_records_loop_implementation(self):
        from repro.experiment.async_backend import AsyncBackend

        result = AsyncBackend(time_scale=20).run(SMALL)
        assert result.metadata["event_loop"] == "asyncio"


class TestSimAsyncParity:
    """The same spec commits the same kind of work through both backends."""

    def test_both_backends_run_the_same_spec(self):
        sim = Deployment(SMALL, backend="sim").run()
        live = Deployment(SMALL, backend="async", time_scale=10).run()
        assert {sim.backend, live.backend} == {"sim", "async"}
        for result in (sim, live):
            assert result.name == SMALL.name
            assert result.protocol == SMALL.protocol
            assert set(result.sites) == set(SMALL.sites)
            assert result.total_committed > 0
            for site_result in result.sites.values():
                assert site_result.committed > 0, (result.backend, site_result.site)
                assert site_result.summary is not None
        # Replicas converge: every server executed every committed command
        # (modulo commands still in flight when the run stopped).
        executed = [m["executed"] for m in live.replica_metrics.values()]
        assert max(executed) >= live.total_committed


class TestRunCli:
    """The shipped sample specs execute through ``repro run``."""

    def test_fig1_spec_on_the_sim_backend(self, capsys, tmp_path, monkeypatch):
        spec = ExperimentSpec.from_file(SPECS_DIR / "fig1_balanced_5.toml")
        # Shrink the run so the CLI test stays fast, then execute the derived
        # file exactly as a user would.
        from dataclasses import replace

        quick = replace(
            spec,
            duration_s=0.8,
            warmup_s=0.2,
            workload=replace(spec.workload, clients_per_site=3),
        )
        path = tmp_path / "fig1_quick.json"
        path.write_text(quick.to_json())
        assert main(["run", str(path)]) == 0
        output = capsys.readouterr().out
        assert "clock-rsm on the sim backend" in output
        assert "total committed" in output
        for site in quick.sites:
            assert site in output

    def test_fig1_spec_on_the_async_backend(self, capsys, tmp_path):
        spec = ExperimentSpec.from_file(SPECS_DIR / "fig1_balanced_5.toml")
        from dataclasses import replace

        quick = replace(
            spec,
            duration_s=1.0,
            warmup_s=0.2,
            workload=replace(spec.workload, clients_per_site=2),
        )
        path = tmp_path / "fig1_async.json"
        path.write_text(quick.to_json())
        assert main(["run", str(path), "--backend", "async", "--time-scale", "10"]) == 0
        output = capsys.readouterr().out
        assert "clock-rsm on the async backend" in output

    def test_skewed_clocks_spec_parses_and_runs_briefly(self, capsys, tmp_path):
        spec = ExperimentSpec.from_file(SPECS_DIR / "skewed_clocks.toml")
        assert spec.clock_for_site("VA").offset_ms == 40.0
        from dataclasses import replace

        quick = replace(
            spec,
            duration_s=0.6,
            warmup_s=0.1,
            workload=replace(spec.workload, clients_per_site=2),
        )
        path = tmp_path / "skew_quick.json"
        path.write_text(quick.to_json())
        assert main(["run", str(path)]) == 0
        assert "skewed-clocks" in capsys.readouterr().out

    def test_json_output_mode(self, capsys, tmp_path):
        from dataclasses import replace

        quick = replace(
            SMALL, duration_s=0.5, warmup_s=0.1,
            workload=replace(SMALL.workload, clients_per_site=2),
            cdf_sites=(),
        )
        path = tmp_path / "small.json"
        path.write_text(quick.to_json())
        assert main(["run", str(path), "--json"]) == 0
        import json

        data = json.loads(capsys.readouterr().out)
        assert data["protocol"] == "clock-rsm"
        assert data["total_committed"] > 0

    def test_bad_spec_file_exits_with_an_error(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text('name = "x"\nprotocol = "raft"\nsites = ["CA"]\n')
        with pytest.raises(SystemExit, match="unknown protocol"):
            main(["run", str(path)])
