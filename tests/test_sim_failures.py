"""Tests for scripted fault injection on simulated clusters."""

from __future__ import annotations

import pytest

from repro.sim.failures import (
    CrashEvent,
    FailureSchedule,
    PartitionEvent,
    ReconfigureEvent,
    RecoverEvent,
)
from repro.types import seconds_to_micros

from tests.helpers import make_cluster


class TestFailureSchedule:
    def test_builder_accumulates_events(self):
        schedule = (
            FailureSchedule()
            .crash(1_000, 2)
            .recover(5_000, 2, rejoin=True)
            .partition(2_000, 0, 1, heal_at=3_000)
            .reconfigure(4_000, 0, (0, 1))
        )
        kinds = [type(e) for e in schedule.events]
        assert kinds == [CrashEvent, RecoverEvent, PartitionEvent, ReconfigureEvent]

    def test_scheduled_crash_takes_effect_at_the_right_time(self):
        cluster = make_cluster("paxos-bcast", leader=0, seed=31)
        FailureSchedule().crash(100_000, 2).install(cluster)
        cluster.submit_at(10_000, 0, cluster.make_command(b"before", client="c"))
        cluster.run_for(90_000)
        assert not cluster.nodes[2].crashed
        cluster.run_for(20_000)
        assert cluster.nodes[2].crashed

    def test_partition_heals_automatically(self):
        cluster = make_cluster("paxos-bcast", leader=0, seed=32)
        FailureSchedule().partition(10_000, 0, 1, heal_at=200_000).install(cluster)
        cluster.run_for(50_000)
        assert cluster.network._blocked(0, 1)
        cluster.run_for(200_000)
        assert not cluster.network._blocked(0, 1)

    def test_crash_then_recover_preserves_the_log(self):
        cluster = make_cluster("clock-rsm", seed=33)
        cluster.start()
        cluster.submit_at(5_000, 0, cluster.make_command(b"durable", client="c0"))
        cluster.run_for(seconds_to_micros(1.0))
        executed_before = cluster.replica(1).executed_count
        assert executed_before == 1

        cluster.crash(1)
        assert cluster.nodes[1].crashed
        recovered = cluster.recover(1)
        assert not cluster.nodes[1].crashed
        # The recovered replica replayed its log into a fresh state machine.
        assert recovered.executed_count == executed_before
        assert recovered.state_machine.history == [b"durable"]

    def test_partitioned_majority_still_commits_for_paxos(self):
        cluster = make_cluster("paxos-bcast", leader=0, seed=34)
        cluster.start()
        cluster.partition(0, 2)
        cluster.partition(1, 2)  # replica 2 is fully isolated
        cluster.submit_at(10_000, 0, cluster.make_command(b"majority", client="c"))
        cluster.run_for(seconds_to_micros(1.0))
        assert len(cluster.replies) == 1
        assert cluster.replica(2).executed_count == 0
        cluster.heal_all()
