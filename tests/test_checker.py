"""Unit tests for the consistency checker (histories + linearizability).

Includes the committed negative case the acceptance criteria require: a
seeded history with a stale read is rejected by the checker.
"""

from __future__ import annotations

import pytest

from repro.checker import CheckerError, HistoryRecorder, OpHistory, check_history
from repro.kvstore.client import SimKVClient
from repro.kvstore.commands import encode_delete, encode_get, encode_put
from repro.types import CommandId

from tests.helpers import make_cluster


def record(
    history: OpHistory,
    client: str,
    seq: int,
    payload: bytes,
    invoked: int,
    returned: int | None = None,
    output=None,
    status: str = "ok",
    replica: int = 0,
) -> CommandId:
    """Append one op to *history* through its public recording API."""
    cid = CommandId(client, seq)
    history.invoke(cid, replica, payload, invoked)
    if status == "ok":
        history.complete(cid, output, returned)
    elif status == "fail":
        history.fail(cid, returned)
    return cid


class TestWingGongSearch:
    """Histories without apply orders exercise the search directly."""

    def test_sequential_session_is_linearizable(self):
        h = OpHistory()
        record(h, "a", 1, encode_put("k", b"1"), 0, 10, None)
        record(h, "a", 2, encode_get("k"), 20, 30, b"1")
        record(h, "a", 3, encode_put("k", b"2"), 40, 50, b"1")
        record(h, "a", 4, encode_delete("k"), 60, 70, True)
        record(h, "a", 5, encode_get("k"), 80, 90, None)
        report = check_history(h)
        assert report.linearizable
        assert report.method == "wing-gong"
        assert report.keys == 1

    def test_concurrent_overlapping_ops_allowed(self):
        # Two puts overlap in real time; a get overlapping both may return
        # either value — here the second one.
        h = OpHistory()
        record(h, "a", 1, encode_put("k", b"1"), 0, 50, None)
        record(h, "b", 1, encode_put("k", b"2"), 10, 60, b"1")
        record(h, "c", 1, encode_get("k"), 20, 70, b"2")
        assert check_history(h).linearizable

    def test_stale_read_is_rejected(self):
        # The committed negative case: a get invoked strictly after a later
        # put returned must not observe the overwritten value.
        h = OpHistory()
        record(h, "a", 1, encode_put("k", b"old"), 0, 10, None)
        record(h, "a", 2, encode_put("k", b"new"), 20, 30, b"old")
        record(h, "b", 1, encode_get("k"), 40, 50, b"old")  # stale!
        report = check_history(h)
        assert not report.linearizable
        assert "k" in report.violation

    def test_lost_update_is_rejected(self):
        # Two non-overlapping puts whose outputs both claim the key was
        # empty: the second writer must have seen the first one's value.
        h = OpHistory()
        record(h, "a", 1, encode_put("k", b"1"), 0, 10, None)
        record(h, "b", 1, encode_put("k", b"2"), 20, 30, None)  # lost update
        assert not check_history(h).linearizable

    def test_pending_op_may_take_effect(self):
        # A put whose client never saw the reply still explains the read.
        h = OpHistory()
        record(h, "a", 1, encode_put("k", b"1"), 0, None, status="pending")
        record(h, "b", 1, encode_get("k"), 100, 110, b"1")
        assert check_history(h).linearizable

    def test_pending_op_may_be_dropped(self):
        h = OpHistory()
        record(h, "a", 1, encode_put("k", b"1"), 0, None, status="pending")
        record(h, "b", 1, encode_get("k"), 100, 110, None)
        assert check_history(h).linearizable

    def test_failed_op_is_not_a_real_time_anchor(self):
        # A timed-out op may commit arbitrarily late; its give-up time must
        # not be treated as an observed return.
        h = OpHistory()
        record(h, "a", 1, encode_put("k", b"1"), 0, 10, None, status="fail")
        record(h, "b", 1, encode_get("k"), 100, 110, None)
        record(h, "c", 1, encode_get("k"), 120, 130, b"1")
        assert check_history(h).linearizable

    def test_keys_are_checked_independently(self):
        h = OpHistory()
        record(h, "a", 1, encode_put("x", b"1"), 0, 10, None)
        record(h, "a", 2, encode_put("y", b"1"), 20, 30, None)
        record(h, "b", 1, encode_get("x"), 40, 50, b"1")
        record(h, "b", 2, encode_get("y"), 60, 70, None)  # stale on y only
        report = check_history(h)
        assert not report.linearizable
        assert "y" in report.violation

    def test_empty_history(self):
        assert check_history(OpHistory()).linearizable

    def test_opaque_history_without_apply_orders_is_undecidable(self):
        h = OpHistory()
        record(h, "a", 1, b"\xff\xff-not-wire-format", 0, 10, None)
        with pytest.raises(CheckerError):
            check_history(h)

    def test_opaque_history_with_apply_orders_gets_order_checks(self):
        # Non-KV apps (append-log / null) still get the total-order and
        # real-time checks from their apply orders; only the model-output
        # comparison needs decodable KV payloads.
        from repro.experiment import ExperimentSpec, WorkloadSpec, check_spec

        spec = ExperimentSpec(
            name="opaque",
            protocol="clock-rsm",
            sites=("CA", "VA", "IR"),
            workload=WorkloadSpec(clients_per_site=2, app="append-log"),
            duration_s=0.6,
            warmup_s=0.1,
            seed=2,
        )
        run = check_spec(spec)
        assert run.linearizable
        assert run.report.method == "total-order"
        assert run.report.keys == 0


class TestTotalOrderPass:
    """Histories carrying apply orders take the O(n) pre-pass."""

    @staticmethod
    def base_history() -> tuple[OpHistory, list[CommandId]]:
        h = OpHistory()
        c1 = record(h, "a", 1, encode_put("k", b"1"), 0, 10, None)
        c2 = record(h, "b", 1, encode_put("k", b"2"), 20, 30, b"1")
        c3 = record(h, "a", 2, encode_get("k"), 40, 50, b"2")
        return h, [c1, c2, c3]

    def test_consistent_orders_accepted(self):
        h, order = self.base_history()
        h.record_apply_orders({0: order, 1: order[:2], 2: order})
        report = check_history(h)
        assert report.linearizable
        assert report.method == "total-order"

    def test_divergent_orders_rejected_outright(self):
        h, order = self.base_history()
        h.record_apply_orders({0: order, 1: [order[1], order[0]]})
        report = check_history(h)
        assert not report.linearizable
        assert "divergent" in report.violation

    def test_committed_op_missing_from_order_rejected(self):
        h, order = self.base_history()
        h.record_apply_orders({0: order[:2]})  # the acked get never executed
        report = check_history(h)
        assert not report.linearizable
        assert "never appears" in report.violation

    def test_real_time_anomaly_falls_back_to_search(self):
        # The apply order contradicts real time (c2 ordered before c1 even
        # though c1 returned before c2 was invoked), so the order is not a
        # usable witness — but the history itself is linearizable (in the
        # order c1, c2, c3), which the Wing–Gong fallback establishes.
        h, order = self.base_history()
        c1, c2, c3 = order
        h.record_apply_orders({0: [c2, c1, c3]})
        report = check_history(h)
        assert report.linearizable
        assert report.method == "total-order+wing-gong"

    def test_output_mismatch_falls_back_and_rejects(self):
        h = OpHistory()
        c1 = record(h, "a", 1, encode_put("k", b"1"), 0, 10, None)
        c2 = record(h, "b", 1, encode_get("k"), 20, 30, b"9")  # impossible value
        h.record_apply_orders({0: [c1, c2]})
        report = check_history(h)
        assert not report.linearizable

    def test_partial_recording_with_foreign_commands_is_not_rejected(self):
        # A history recorded for one client while other (unrecorded) traffic
        # ran: the apply order contains a foreign PUT whose effect the model
        # cannot reproduce, so output validation stands down and a GET that
        # correctly observed the foreign value is NOT a violation.
        h = OpHistory()
        mine = record(h, "mine", 1, encode_get("k"), 100, 120, b"v1")
        foreign = CommandId("other-client", 1)
        h.record_apply_orders({0: [foreign, mine]})
        report = check_history(h)
        assert report.linearizable
        assert report.method == "total-order"

    def test_unacked_op_in_order_is_fine(self):
        # An op the client gave up on may still appear in the apply order
        # (it committed); its effect must be replayed, its output ignored.
        h = OpHistory()
        c1 = record(h, "a", 1, encode_put("k", b"1"), 0, 5, None, status="fail")
        c2 = record(h, "b", 1, encode_get("k"), 100, 110, b"1")
        h.record_apply_orders({0: [c1, c2]})
        report = check_history(h)
        assert report.linearizable
        assert report.method == "total-order"


class TestHistorySerialization:
    def test_round_trip(self):
        h = OpHistory()
        c1 = record(h, "a", 1, encode_put("k", b"1"), 0, 10, None)
        record(h, "b", 1, encode_get("k"), 20, None, status="pending")
        record(h, "c", 1, encode_delete("k"), 30, 40, True)
        h.record_apply_orders({0: [c1], 1: []})
        back = OpHistory.from_dict(h.to_dict())
        assert [op.to_dict() for op in back.ops] == [op.to_dict() for op in h.ops]
        assert back.apply_orders == h.apply_orders
        assert check_history(back).linearizable == check_history(h).linearizable

    def test_counts(self):
        h = OpHistory()
        record(h, "a", 1, encode_put("k", b"1"), 0, 10, None)
        record(h, "a", 2, encode_put("k", b"2"), 20, None, status="pending")
        record(h, "a", 3, encode_put("k", b"3"), 30, 40, status="fail")
        assert (h.count("ok"), h.count("pending"), h.count("fail")) == (1, 1, 1)


class TestKVClientHistoryHook:
    """SimKVClient sessions record checkable histories."""

    def test_scripted_session_checks_out(self, any_protocol):
        cluster = make_cluster(any_protocol, use_kv=True)
        history = OpHistory()
        client = SimKVClient(cluster, replica_id=0, history=history)
        assert client.put("user:1", b"ada") is None
        assert client.get("user:1") == b"ada"
        assert client.put("user:1", b"grace") == b"ada"
        assert client.delete("user:1") is True
        assert client.get("user:1") is None
        history.record_apply_orders(cluster.execution_orders())
        report = check_history(history)
        assert report.linearizable
        assert report.completed == 5

    def test_recorder_captures_cluster_wide_traffic(self):
        cluster = make_cluster("clock-rsm", use_kv=True)
        recorder = HistoryRecorder(cluster)
        a = SimKVClient(cluster, replica_id=0)
        b = SimKVClient(cluster, replica_id=1)
        a.put("k", b"1")
        assert b.get("k") == b"1"
        history = recorder.finish()
        assert len(history) == 2
        assert check_history(history).linearizable
