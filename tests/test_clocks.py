"""Tests for the clock subsystem."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.clocks.base import ManualClock, MonotonicClock, MonotonicTimestampSource
from repro.clocks.hybrid import HlcReading, HybridLogicalClock
from repro.clocks.ntp import NtpSample, NtpSynchronizer
from repro.clocks.physical import DriftingClock, PerfectClock, SkewedClock, SystemClock
from repro.errors import ClockError
from repro.sim.environment import SimulationEnvironment


class TestManualClock:
    def test_advance(self):
        clock = ManualClock(10)
        assert clock.now() == 10
        clock.advance(5)
        assert clock.now() == 15

    def test_cannot_go_backwards(self):
        clock = ManualClock(10)
        with pytest.raises(ClockError):
            clock.advance(-1)
        with pytest.raises(ClockError):
            clock.set(5)

    def test_set_forward(self):
        clock = ManualClock(10)
        clock.set(100)
        assert clock.now() == 100


class _FlakyClock:
    """A clock that jumps backwards (e.g. a stepped NTP adjustment)."""

    def __init__(self, readings):
        self._readings = iter(readings)

    def now(self):
        return next(self._readings)


class TestMonotonicClock:
    def test_clamps_backward_jumps(self):
        clock = MonotonicClock(_FlakyClock([10, 20, 15, 30]))
        assert [clock.now() for _ in range(4)] == [10, 20, 20, 30]


class TestMonotonicTimestampSource:
    def test_strictly_increasing_even_with_frozen_clock(self):
        clock = ManualClock(100)
        source = MonotonicTimestampSource(clock, replica_id=2)
        first = source.next()
        second = source.next()
        third = source.next()
        assert first.micros == 100
        assert second.micros == 101
        assert third.micros == 102
        assert first < second < third
        assert first.replica == 2

    def test_follows_clock_when_it_advances(self):
        clock = ManualClock(100)
        source = MonotonicTimestampSource(clock, replica_id=0)
        assert source.next().micros == 100
        clock.advance(50)
        assert source.next().micros == 150

    def test_observe_prevents_smaller_future_timestamps(self):
        clock = ManualClock(100)
        source = MonotonicTimestampSource(clock, replica_id=0)
        source.observe(500)
        assert source.next().micros == 501

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=50))
    def test_always_strictly_increasing(self, advances):
        clock = ManualClock(0)
        source = MonotonicTimestampSource(clock, replica_id=1)
        previous = None
        for delta in advances:
            clock.advance(delta)
            ts = source.next()
            if previous is not None:
                assert ts > previous
            previous = ts


class TestPhysicalClocks:
    def test_perfect_clock_reads_environment_time(self):
        env = SimulationEnvironment()
        clock = PerfectClock(env)
        assert clock.now() == 0
        env.schedule(1000, lambda: None)
        env.run_until_idle()
        assert clock.now() == 1000

    def test_skewed_clock_offsets_readings(self):
        env = SimulationEnvironment()
        ahead = SkewedClock(env, skew=250)
        behind = SkewedClock(env, skew=-250)
        assert ahead.now() == 250
        assert behind.now() == 0  # clamped at zero
        env.schedule(1_000, lambda: None)
        env.run_until_idle()
        assert ahead.now() == 1_250
        assert behind.now() == 750

    def test_skewed_clock_adjust(self):
        env = SimulationEnvironment()
        clock = SkewedClock(env, skew=100)
        clock.adjust(-40)
        assert clock.skew == 60

    def test_drifting_clock_accumulates_error(self):
        env = SimulationEnvironment()
        clock = DriftingClock(env, skew=0, drift_ppm=100.0)
        env.schedule(1_000_000, lambda: None)  # one simulated second
        env.run_until_idle()
        assert clock.now() == 1_000_000 + 100

    def test_system_clock_is_monotonic(self):
        clock = SystemClock()
        readings = [clock.now() for _ in range(100)]
        assert readings == sorted(readings)


class TestNtpSynchronizer:
    def test_offset_and_delay_estimates(self):
        # Server clock 1000 ahead; symmetric 200 one-way delay.
        sample = NtpSample(t1=0, t2=1200, t3=1250, t4=450)
        assert sample.delay == 400
        assert sample.offset == 1000

    def test_synchronizer_slews_toward_reference(self):
        env = SimulationEnvironment()
        clock = SkewedClock(env, skew=-1000)
        sync = NtpSynchronizer(clock, slew_fraction=1.0)
        correction = sync.ingest(NtpSample(t1=0, t2=1200, t3=1250, t4=450))
        assert correction == 1000
        assert clock.skew == 0

    def test_dead_band_ignores_small_offsets(self):
        env = SimulationEnvironment()
        clock = SkewedClock(env, skew=-50)
        sync = NtpSynchronizer(clock, slew_fraction=1.0, min_correction=100)
        assert sync.ingest(NtpSample(t1=0, t2=40, t3=40, t4=10)) == 0
        assert clock.skew == -50

    def test_invalid_slew_fraction(self):
        env = SimulationEnvironment()
        with pytest.raises(ValueError):
            NtpSynchronizer(SkewedClock(env), slew_fraction=0.0)


class TestHybridLogicalClock:
    def test_tick_is_strictly_increasing(self):
        hlc = HybridLogicalClock(ManualClock(100))
        readings = [hlc.tick() for _ in range(5)]
        assert readings == sorted(readings)
        assert len(set(readings)) == 5

    def test_merge_respects_remote_reading(self):
        hlc = HybridLogicalClock(ManualClock(100))
        merged = hlc.merge(HlcReading(500, 3))
        assert merged > HlcReading(500, 3)

    def test_now_flattens_to_increasing_micros(self):
        hlc = HybridLogicalClock(ManualClock(100))
        values = [hlc.now() for _ in range(10)]
        assert values == sorted(values)
        assert len(set(values)) == 10
