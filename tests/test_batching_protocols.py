"""Command batching at the protocol layer: every replica orders batches.

A :class:`~repro.protocols.records.CommandBatch` occupies one slot (or one
Clock-RSM timestamp): the protocols replicate it with a single round, execute
the constituents in batch order, and reply to every constituent's client.
Execution orders stay per-command, so the total-order assertions and the
consistency checker are oblivious to batching.
"""

from __future__ import annotations

import pytest

from repro.config import BatchingOptions, ClusterSpec
from repro.core.messages import PrepareRecord
from repro.errors import ProtocolError
from repro.net.latency import LatencyMatrix
from repro.protocols.records import CommandBatch, make_unit, unit_commands
from repro.sim.cluster import SimulatedCluster
from repro.types import Command, CommandId, ms_to_micros

from tests.helpers import ALL_PROTOCOLS

SITES = ["CA", "VA", "IR"]


def _cluster(protocol: str, batching: BatchingOptions | None = None) -> SimulatedCluster:
    return SimulatedCluster(
        ClusterSpec.from_sites(SITES),
        LatencyMatrix.uniform(SITES, one_way=ms_to_micros(1.0)),
        protocol,
        batching=batching,
    )


def _batch(client: str, count: int, start: int = 0) -> CommandBatch:
    return CommandBatch(
        tuple(Command(CommandId(client, start + i), b"p%d" % i) for i in range(count))
    )


class TestCommandBatch:
    def test_empty_batch_rejected(self):
        with pytest.raises(ProtocolError):
            CommandBatch(())

    def test_make_unit_singleton_is_bare_command(self):
        command = Command(CommandId("c", 1), b"x")
        assert make_unit([command]) is command
        batch = make_unit([command, Command(CommandId("c", 2), b"y")])
        assert isinstance(batch, CommandBatch)
        assert unit_commands(batch)[0] is command

    def test_size_sums_constituents(self):
        batch = _batch("c", 3)
        assert batch.size == sum(c.size for c in batch)


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
class TestBatchesCommitOnEveryProtocol:
    def test_batch_executes_in_order_with_per_command_replies(self, protocol):
        cluster = _cluster(protocol)
        cluster.start()
        cluster.submit(0, _batch("cl", 4))
        cluster.submit(1, Command(CommandId("cl", 99), b"solo"))
        cluster.run_for(ms_to_micros(100))
        cluster.assert_consistent_order()

        replied = {event.command_id.seqno for event in cluster.replies}
        assert replied == {0, 1, 2, 3, 99}
        order = [cid.seqno for cid in cluster.execution_orders()[0] if cid.client == "cl"]
        assert [s for s in order if s < 10] == [0, 1, 2, 3]

    def test_interleaved_batches_from_all_sites_stay_totally_ordered(self, protocol):
        cluster = _cluster(protocol)
        cluster.start()
        for rid in range(3):
            cluster.submit(rid, _batch(f"site{rid}", 3, start=rid * 10))
        cluster.run_for(ms_to_micros(200))
        cluster.assert_consistent_order()
        assert len(cluster.replies) == 9
        # Within one batch, constituents are adjacent in the execution order.
        order = cluster.execution_orders()[0]
        for rid in range(3):
            positions = [
                index for index, cid in enumerate(order) if cid.client == f"site{rid}"
            ]
            assert positions == list(range(positions[0], positions[0] + 3))


class TestClockRsmBatchRecovery:
    def test_recovered_replica_replays_batches_per_command(self):
        cluster = _cluster("clock-rsm")
        cluster.start()
        cluster.submit(0, _batch("cl", 3))
        cluster.run_for(ms_to_micros(50))
        committed = list(cluster.execution_orders()[1])
        assert len(committed) == 3

        cluster.crash(1)
        cluster.run_for(ms_to_micros(10))
        replica = cluster.recover(1)
        assert replica.execution_order == committed
        # The stable log still stores the batch as one PREPARE entry.
        prepares = [
            r for r in cluster.logs[1].records() if isinstance(r, PrepareRecord)
        ]
        assert any(isinstance(r.command, CommandBatch) for r in prepares)


class TestSimAccumulation:
    def test_same_instant_submissions_form_one_batch(self):
        cluster = _cluster("mencius", BatchingOptions(max_batch=16, window_us=0))
        cluster.start()
        for i in range(5):
            cluster.submit_payload(0, b"x", client="c")
        cluster.run_for(ms_to_micros(50))
        ledger = cluster.replica(0).ledger
        units = [
            state.command
            for state in ledger._slots.values()
            if state.command is not None
        ]
        batches = [u for u in units if isinstance(u, CommandBatch)]
        assert [len(b) for b in batches] == [5]
        assert len(cluster.replies) == 5
        # The ledger's introspection counts commands, not slots.
        assert ledger.describe()["commands"] == 5

    def test_max_batch_splits_oversized_groups(self):
        cluster = _cluster("mencius", BatchingOptions(max_batch=4, window_us=0))
        cluster.start()
        for _ in range(6):
            cluster.submit_payload(0, b"x", client="c")
        cluster.run_for(ms_to_micros(50))
        units = [
            state.command
            for state in cluster.replica(0).ledger._slots.values()
            if state.command is not None
        ]
        sizes = sorted(
            len(u) for u in units if isinstance(u, CommandBatch)
        )
        assert sizes == [2, 4]

    def test_window_delays_and_groups_later_submissions(self):
        window = ms_to_micros(2.0)
        cluster = _cluster("mencius", BatchingOptions(max_batch=64, window_us=window))
        cluster.start()
        cluster.submit_payload(0, b"x", client="c")
        # A second command arrives inside the window and joins the batch.
        cluster.env.schedule(
            window // 2, lambda: cluster.submit_payload(0, b"y", client="c")
        )
        cluster.run_for(ms_to_micros(60))
        units = [
            state.command
            for state in cluster.replica(0).ledger._slots.values()
            if state.command is not None
        ]
        batches = [u for u in units if isinstance(u, CommandBatch)]
        assert [len(b) for b in batches] == [2]

    def test_size_triggered_flush_cancels_the_window_timer(self):
        # Regression: a size-triggered flush must cancel the armed window
        # event, else the stale timer fires early into the *next*
        # accumulation and splits it.
        window = ms_to_micros(10.0)
        cluster = _cluster("mencius", BatchingOptions(max_batch=2, window_us=window))
        cluster.start()
        cluster.submit_payload(0, b"a", client="c")
        cluster.submit_payload(0, b"b", client="c")  # size flush at t=0
        # Third and fourth commands arrive around where the stale timer
        # (armed at t=0 for t=10 ms) would fire; they must stay together.
        cluster.env.schedule(
            ms_to_micros(9.5), lambda: cluster.submit_payload(0, b"x", client="c")
        )
        cluster.env.schedule(
            ms_to_micros(10.5), lambda: cluster.submit_payload(0, b"y", client="c")
        )
        cluster.run_for(ms_to_micros(100))
        sizes = sorted(
            len(state.command)
            for state in cluster.replica(0).ledger._slots.values()
            if isinstance(state.command, CommandBatch)
        )
        assert sizes == [2, 2]
        assert len(cluster.replies) == 4

    def test_max_batch_one_is_identical_to_unbatched(self):
        seeds = []
        for batching in (None, BatchingOptions(max_batch=1, window_us=0)):
            cluster = _cluster("clock-rsm", batching)
            cluster.start()
            for i in range(4):
                cluster.submit_payload(0, b"z%d" % i, client="c")
            cluster.run_for(ms_to_micros(50))
            seeds.append([str(cid) for cid in cluster.execution_orders()[0]])
        assert seeds[0] == seeds[1]
