"""Shared helpers for the test suite (importable as ``tests.helpers``)."""

from __future__ import annotations

from repro.analysis.ec2 import ec2_latency_matrix
from repro.config import ClusterSpec, ProtocolConfig
from repro.kvstore.kv import KVStateMachine
from repro.net.latency import LatencyMatrix
from repro.sim.cluster import SimulatedCluster
from repro.statemachine import AppendLogStateMachine
from repro.types import Command, CommandId

ALL_PROTOCOLS = ("clock-rsm", "paxos", "paxos-bcast", "mencius", "mencius-bcast")


def make_command(seq: int, payload: bytes = b"x", client: str = "test-client") -> Command:
    """A small helper for building commands in unit tests."""
    return Command(CommandId(client, seq), payload)


def make_cluster(
    protocol: str,
    sites=("CA", "VA", "IR"),
    *,
    leader: int = 0,
    seed: int = 1,
    uniform_one_way=None,
    use_kv: bool = False,
    **kwargs,
) -> SimulatedCluster:
    """Build a small simulated cluster for integration tests."""
    spec = ClusterSpec.from_sites(list(sites))
    if uniform_one_way is not None:
        matrix = LatencyMatrix.uniform(spec.sites, one_way=uniform_one_way)
    else:
        matrix = ec2_latency_matrix(spec.sites)
    factory = (lambda _rid: KVStateMachine()) if use_kv else (lambda _rid: AppendLogStateMachine())
    return SimulatedCluster(
        spec,
        matrix,
        protocol,
        ProtocolConfig(leader=leader),
        seed=seed,
        state_machine_factory=factory,
        **kwargs,
    )
