"""The key→shard router: determinism, placement properties, partitioning."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.experiment import ShardingSpec
from repro.shard import ShardRouter

KEYS = [f"key-{index}" for index in range(500)] + [
    "", "a", "zzzz", "user:0042", "ünïcode-κλειδί", "key-42/suffix",
]


class TestConstruction:
    def test_rejects_zero_shards(self):
        with pytest.raises(ConfigurationError):
            ShardRouter(0)

    def test_rejects_unknown_placement(self):
        with pytest.raises(ConfigurationError):
            ShardRouter(4, placement="round-robin")

    def test_from_spec(self):
        router = ShardRouter.from_spec(ShardingSpec(shards=8, placement="range"))
        assert router.shards == 8 and router.placement == "range"


class TestRouting:
    @pytest.mark.parametrize("placement", ["hash", "range"])
    def test_deterministic_and_in_range(self, placement):
        router = ShardRouter(4, placement=placement)
        for key in KEYS:
            shard = router.shard_of(key)
            assert 0 <= shard < 4
            assert router.shard_of(key) == shard

    def test_single_shard_owns_everything(self):
        router = ShardRouter(1, placement="hash")
        assert {router.shard_of(key) for key in KEYS} == {0}

    def test_hash_spreads_uniform_keys(self):
        """Hash placement lands a synthetic uniform key population on every
        shard, with no shard hoarding more than half of it."""
        router = ShardRouter(4, placement="hash")
        population = [f"key-{index}" for index in range(1000)]
        groups = router.partition(population)
        assert set(groups) == {0, 1, 2, 3}
        assert max(len(group) for group in groups.values()) < 500

    def test_range_placement_is_monotone_in_key_order(self):
        """Lexicographically sorted keys map to non-decreasing shards —
        the contiguous-key-range contract of range placement."""
        router = ShardRouter(8, placement="range")
        shards = [router.shard_of(key) for key in sorted(KEYS)]
        assert shards == sorted(shards)

    def test_range_placement_covers_the_printable_space(self):
        """Single printable-ASCII characters — the span real keys start
        with — reach every shard under range placement."""
        router = ShardRouter(4, placement="range")
        keys = [chr(byte) for byte in range(0x20, 0x7F)]
        assert {router.shard_of(key) for key in keys} == {0, 1, 2, 3}

    def test_range_placement_groups_common_prefixes(self):
        """Keys sharing a long prefix land on one shard — the locality
        contract (and the balance trade) of range placement."""
        router = ShardRouter(4, placement="range")
        shards = {router.shard_of(f"user:{index:04d}") for index in range(100)}
        assert len(shards) == 1

    def test_partition_preserves_membership_and_order(self):
        router = ShardRouter(3, placement="hash")
        groups = router.partition(list(KEYS))
        flattened = [key for group in groups.values() for key in group]
        assert sorted(flattened) == sorted(KEYS)
        for shard, group in groups.items():
            assert all(router.shard_of(key) == shard for key in group)

    def test_stable_across_processes(self):
        """Routing is independent of PYTHONHASHSEED (unlike builtin hash)."""
        src = Path(__file__).resolve().parent.parent / "src"
        script = (
            "from repro.shard import ShardRouter; "
            "router = ShardRouter(8); "
            "print([router.shard_of(f'key-{i}') for i in range(64)])"
        )
        outputs = {
            subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True,
                env={"PYTHONPATH": str(src), "PYTHONHASHSEED": seed},
            ).stdout
            for seed in ("1", "2")
        }
        assert len(outputs) == 1
