"""TCP transport robustness under the races the process launcher creates.

A multi-process deployment starts every replica concurrently, so the
transport must tolerate exactly the situations a single-process demo never
hits: connecting to a peer that has not started listening yet, a peer dying
mid-frame, two tasks racing to open the first connection to the same peer,
and protocol traffic arriving before the replica's handler is wired up.
"""

from __future__ import annotations

import asyncio
import socket
import struct

import pytest

from repro.core.messages import Prepare
from repro.errors import TransportError
from repro.net.message import Envelope, global_registry
from repro.net.tcp import TcpTransport, encode_frame
from repro.types import Command, CommandId, Timestamp


def _prepare(seqno: int) -> Prepare:
    return Prepare(
        Command(CommandId("tcp-test", seqno), b"p%d" % seqno), Timestamp(seqno + 1, 0)
    )


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def run(coro):
    return asyncio.run(coro)


class TestLifecycle:
    def test_start_is_idempotent(self):
        async def scenario():
            transport = TcpTransport(0, "127.0.0.1:0", {})
            await transport.start()
            first = transport.bound_address
            await transport.start()  # must not rebind
            assert transport.bound_address == first
            await transport.stop()

        run(scenario())

    def test_bound_address_resolves_ephemeral_port(self):
        async def scenario():
            transport = TcpTransport(0, "127.0.0.1:0", {})
            with pytest.raises(TransportError):
                transport.bound_address
            await transport.start()
            host, port = transport.bound_address.rsplit(":", 1)
            assert host == "127.0.0.1" and int(port) > 0
            await transport.stop()

        run(scenario())

    def test_set_peers_installs_addresses_after_construction(self):
        async def scenario():
            receiver = TcpTransport(1, "127.0.0.1:0", {})
            received = asyncio.get_running_loop().create_future()
            receiver.set_handler(lambda env: received.set_result(env.message))
            await receiver.start()
            sender = TcpTransport(0, "127.0.0.1:0", {})  # no peers yet
            await sender.start()
            sender.set_peers({1: receiver.bound_address})
            sender.send(Envelope(0, 1, _prepare(7)))
            message = await asyncio.wait_for(received, timeout=5)
            assert message.command.command_id.seqno == 7
            await sender.stop()
            await receiver.stop()

        run(scenario())


class TestConnectBeforeListen:
    def test_send_retries_until_peer_listens(self):
        async def scenario():
            port = _free_port()
            addresses = {1: f"127.0.0.1:{port}"}
            sender = TcpTransport(
                0, "127.0.0.1:0", addresses, connect_retries=30, connect_backoff_s=0.02
            )
            await sender.start()
            sender.send(Envelope(0, 1, _prepare(0)))  # nobody is listening yet

            await asyncio.sleep(0.2)
            receiver = TcpTransport(1, f"127.0.0.1:{port}", {})
            received = asyncio.get_running_loop().create_future()
            receiver.set_handler(lambda env: received.set_result(env.message))
            await receiver.start()

            message = await asyncio.wait_for(received, timeout=5)
            assert message.command.command_id.seqno == 0
            await sender.stop()
            await receiver.stop()

        run(scenario())

    def test_without_retries_send_still_fails_softly(self):
        async def scenario():
            port = _free_port()
            sender = TcpTransport(0, "127.0.0.1:0", {1: f"127.0.0.1:{port}"})
            await sender.start()
            sender.send(Envelope(0, 1, _prepare(0)))  # dropped with a warning
            await asyncio.sleep(0.1)  # the send task must not blow up the loop
            await sender.stop()

        run(scenario())


class TestPeerKilledMidFrame:
    def test_partial_frame_discarded_and_reconnect_resumes(self):
        async def scenario():
            receiver = TcpTransport(1, "127.0.0.1:0", {})
            received: list = []
            done = asyncio.Event()
            receiver.set_handler(
                lambda env: (received.append(env.message), done.set())
            )
            await receiver.start()
            host, port = receiver.bound_address.rsplit(":", 1)

            # A peer connects, announces a 100-byte frame, ships only part of
            # it, and dies (abort: RST, no graceful shutdown).
            _, writer = await asyncio.open_connection(host, int(port))
            writer.write(struct.pack(">I", 100) + b"half a frame")
            await writer.drain()
            writer.transport.abort()
            await asyncio.sleep(0.1)

            # A fresh connection delivers a complete frame; the dead peer's
            # partial bytes must not have corrupted the receiver's state.
            _, writer = await asyncio.open_connection(host, int(port))
            writer.write(encode_frame(Envelope(0, 1, _prepare(3)), global_registry))
            await writer.drain()
            await asyncio.wait_for(done.wait(), timeout=5)
            writer.close()

            assert [m.command.command_id.seqno for m in received] == [3]
            await receiver.stop()

        run(scenario())


class TestDuplicateConnectionRace:
    def test_concurrent_first_sends_share_one_connection(self):
        async def scenario():
            receiver = TcpTransport(1, "127.0.0.1:0", {})
            received: list = []
            done = asyncio.Event()
            receiver.set_handler(
                lambda env: (
                    received.append(env.message),
                    done.set() if len(received) == 8 else None,
                )
            )
            connections = 0
            inner = receiver._handle_connection

            async def counting(reader, writer):
                nonlocal connections
                connections += 1
                await inner(reader, writer)

            receiver._handle_connection = counting
            await receiver.start()

            sender = TcpTransport(0, "127.0.0.1:0", {1: receiver.bound_address})
            await sender.start()
            # Unbatched sends each spawn their own writer task; all eight race
            # to create the first connection to replica 1.
            for index in range(8):
                sender.send(Envelope(0, 1, _prepare(index)))
            await asyncio.wait_for(done.wait(), timeout=5)

            assert connections == 1
            assert sorted(m.command.command_id.seqno for m in received) == list(range(8))
            await sender.stop()
            await receiver.stop()

        run(scenario())


class TestEarlyTraffic:
    def test_envelopes_before_handler_are_buffered_then_flushed_in_order(self):
        async def scenario():
            receiver = TcpTransport(1, "127.0.0.1:0", {})
            await receiver.start()  # note: no handler registered yet
            host, port = receiver.bound_address.rsplit(":", 1)

            _, writer = await asyncio.open_connection(host, int(port))
            for index in range(3):
                writer.write(
                    encode_frame(Envelope(0, 1, _prepare(index)), global_registry)
                )
            await writer.drain()
            await asyncio.sleep(0.1)

            received: list = []
            receiver.set_handler(lambda env: received.append(env.message))
            assert [m.command.command_id.seqno for m in received] == [0, 1, 2]

            # Traffic after the handler is set flows directly.
            done = asyncio.Event()
            receiver.set_handler(
                lambda env: (received.append(env.message), done.set())
            )
            writer.write(encode_frame(Envelope(0, 1, _prepare(9)), global_registry))
            await writer.drain()
            await asyncio.wait_for(done.wait(), timeout=5)
            assert received[-1].command.command_id.seqno == 9

            writer.close()
            await receiver.stop()

        run(scenario())
