"""Tests for Clock-RSM log replay (Section V-B recovery)."""

from __future__ import annotations

import pytest

from repro.core.messages import CommitRecord, PrepareRecord
from repro.core.recovery import replay_log
from repro.errors import LogCorruptionError
from repro.storage.memory_log import InMemoryLog
from repro.types import Command, CommandId, Timestamp, ZERO_TS


def prepare(micros: int, replica: int = 0, seq: int | None = None) -> PrepareRecord:
    seq = micros if seq is None else seq
    return PrepareRecord(Command(CommandId("c", seq), b"p"), Timestamp(micros, replica))


class TestReplayLog:
    def test_empty_log(self):
        recovered = replay_log(InMemoryLog())
        assert recovered.executed == ()
        assert recovered.orphans == ()
        assert recovered.last_committed_ts == ZERO_TS
        assert recovered.highest_ts == ZERO_TS

    def test_committed_commands_are_returned_in_timestamp_order(self):
        log = InMemoryLog()
        # PREPARE entries may appear out of timestamp order; COMMIT marks are
        # in timestamp order (the protocol appends them that way).
        log.append(prepare(20))
        log.append(prepare(10))
        log.append(CommitRecord(Timestamp(10, 0)))
        log.append(CommitRecord(Timestamp(20, 0)))
        recovered = replay_log(log)
        assert [r.ts.micros for r in recovered.executed] == [10, 20]
        assert recovered.last_committed_ts == Timestamp(20, 0)
        assert recovered.orphans == ()

    def test_orphan_prepares_are_reported_sorted(self):
        log = InMemoryLog()
        log.append(prepare(10))
        log.append(CommitRecord(Timestamp(10, 0)))
        log.append(prepare(40))
        log.append(prepare(30))
        recovered = replay_log(log)
        assert [r.ts.micros for r in recovered.executed] == [10]
        assert [r.ts.micros for r in recovered.orphans] == [30, 40]
        assert recovered.highest_ts == Timestamp(40, 0)

    def test_commit_without_prepare_is_corruption(self):
        log = InMemoryLog()
        log.append(CommitRecord(Timestamp(10, 0)))
        with pytest.raises(LogCorruptionError):
            replay_log(log)

    def test_out_of_order_commits_are_corruption(self):
        log = InMemoryLog()
        log.append(prepare(10))
        log.append(prepare(20))
        log.append(CommitRecord(Timestamp(20, 0)))
        log.append(CommitRecord(Timestamp(10, 0)))
        with pytest.raises(LogCorruptionError):
            replay_log(log)

    def test_foreign_record_is_corruption(self):
        log = InMemoryLog()
        log.append("not a clock-rsm record")
        with pytest.raises(LogCorruptionError):
            replay_log(log)

    def test_duplicate_prepare_entries_are_tolerated(self):
        # Reconfiguration may re-append a PREPARE that already exists.
        log = InMemoryLog()
        log.append(prepare(10))
        log.append(prepare(10))
        log.append(CommitRecord(Timestamp(10, 0)))
        recovered = replay_log(log)
        assert [r.ts.micros for r in recovered.executed] == [10]
        # The second copy remains an orphan only if it was never committed;
        # identical timestamps collapse onto one entry, so no orphans here.
        assert recovered.orphans == ()
