"""Tests for repro.types: timestamps, commands, and helpers."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.types import (
    Command,
    CommandId,
    Timestamp,
    ZERO_TS,
    is_noop,
    majority,
    make_noop,
    micros_to_ms,
    micros_to_seconds,
    ms_to_micros,
    seconds_to_micros,
)


class TestTimestamp:
    def test_ordering_by_micros_first(self):
        assert Timestamp(5, 3) < Timestamp(6, 0)
        assert Timestamp(6, 0) > Timestamp(5, 3)

    def test_ties_broken_by_replica_id(self):
        assert Timestamp(5, 1) < Timestamp(5, 2)
        assert Timestamp(5, 2) > Timestamp(5, 1)

    def test_equality(self):
        assert Timestamp(5, 1) == Timestamp(5, 1)
        assert Timestamp(5, 1) != Timestamp(5, 2)

    def test_zero_ts_is_smaller_than_any_real_timestamp(self):
        assert ZERO_TS < Timestamp(0, 0)
        assert ZERO_TS < Timestamp(1, 0)

    def test_advanced_by(self):
        ts = Timestamp(100, 2)
        assert ts.advanced_by(50) == Timestamp(150, 2)

    def test_hashable_and_usable_as_dict_key(self):
        d = {Timestamp(1, 0): "a", Timestamp(1, 1): "b"}
        assert d[Timestamp(1, 0)] == "a"
        assert d[Timestamp(1, 1)] == "b"

    def test_immutable(self):
        with pytest.raises(Exception):
            Timestamp(1, 0).micros = 5  # type: ignore[misc]

    @given(
        st.integers(min_value=0, max_value=10**12),
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=0, max_value=10**12),
        st.integers(min_value=0, max_value=100),
    )
    def test_total_order_is_lexicographic(self, m1, r1, m2, r2):
        a, b = Timestamp(m1, r1), Timestamp(m2, r2)
        assert (a < b) == ((m1, r1) < (m2, r2))
        assert (a == b) == ((m1, r1) == (m2, r2))


class TestTimeConversions:
    def test_ms_to_micros(self):
        assert ms_to_micros(1.0) == 1_000
        assert ms_to_micros(0.5) == 500
        assert ms_to_micros(83.0) == 83_000

    def test_micros_to_ms(self):
        assert micros_to_ms(1_000) == 1.0
        assert micros_to_ms(1_500) == 1.5

    def test_seconds_round_trip(self):
        assert seconds_to_micros(2.5) == 2_500_000
        assert micros_to_seconds(2_500_000) == 2.5

    @given(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    def test_ms_round_trip_within_microsecond(self, ms):
        assert abs(micros_to_ms(ms_to_micros(ms)) - ms) <= 0.001


class TestMajority:
    @pytest.mark.parametrize(
        "n,expected", [(1, 1), (2, 2), (3, 2), (4, 3), (5, 3), (6, 4), (7, 4), (9, 5)]
    )
    def test_majority_sizes(self, n, expected):
        assert majority(n) == expected

    def test_majority_rejects_non_positive(self):
        with pytest.raises(ValueError):
            majority(0)
        with pytest.raises(ValueError):
            majority(-3)

    @given(st.integers(min_value=1, max_value=1000))
    def test_majority_properties(self, n):
        m = majority(n)
        # Any two majorities intersect: 2m > n.
        assert 2 * m > n
        # A majority is never larger than the cluster.
        assert m <= n


class TestCommands:
    def test_command_size_is_payload_length(self):
        cmd = Command(CommandId("c", 1), b"abcde")
        assert cmd.size == 5

    def test_command_id_is_hashable(self):
        assert {CommandId("c", 1): 1}[CommandId("c", 1)] == 1

    def test_noop_round_trip(self):
        noop = make_noop(7)
        assert is_noop(noop)
        assert noop.payload == b""

    def test_regular_command_is_not_noop(self):
        assert not is_noop(Command(CommandId("client", 1), b"data"))
