"""Tests for the benchmark harness (small, fast configurations)."""

from __future__ import annotations

import pytest

from repro.bench.latency_experiments import (
    LatencyExperimentConfig,
    figure1_config,
    figure2_config,
    figure5_config,
    figure6_config,
    latency_cdf_experiment,
    latency_experiment,
    run_imbalanced_comparison,
    run_latency_comparison,
)
from repro.bench.numerical import figure7_data, table2_rows, table4_rows
from repro.bench.reporting import (
    format_cdf,
    format_latency_table,
    format_table,
    format_throughput,
)
from repro.bench.throughput import run_throughput_experiment
from repro.sim.node import CpuModel
from repro.types import seconds_to_micros

#: A deliberately small configuration so harness tests stay fast.
QUICK = dict(
    duration=seconds_to_micros(2.0),
    warmup=seconds_to_micros(0.5),
    clients_per_replica=4,
)


class TestLatencyHarness:
    def test_single_experiment_produces_per_site_summaries(self):
        config = LatencyExperimentConfig(
            sites=("CA", "VA", "IR"), leader_site="VA", **QUICK
        )
        result = latency_experiment("clock-rsm", config)
        assert set(result.summaries) == {"CA", "VA", "IR"}
        assert all(summary.count > 0 for summary in result.summaries.values())
        assert result.average_over_sites() > 0
        assert result.highest_over_sites() >= result.average_over_sites()

    def test_comparison_runs_every_protocol(self):
        config = figure2_config("VA", **QUICK)
        results = run_latency_comparison(config, protocols=("clock-rsm", "paxos-bcast"))
        assert set(results) == {"clock-rsm", "paxos-bcast"}

    def test_cdf_experiment_returns_distributions(self):
        config = figure2_config("VA", **QUICK)
        cdfs = latency_cdf_experiment(config, cdf_site="CA", protocols=("clock-rsm",))
        points = cdfs["clock-rsm"]
        assert points and points[-1][1] == pytest.approx(1.0)
        values = [v for v, _ in points]
        assert values == sorted(values)

    def test_imbalanced_comparison_measures_each_origin(self):
        results = run_imbalanced_comparison(
            sites=("CA", "VA", "IR"), leader_site="CA", protocols=("clock-rsm",), **QUICK
        )
        assert set(results["clock-rsm"].summaries) == {"CA", "VA", "IR"}

    def test_figure_configs_match_paper_setups(self):
        assert figure1_config("CA").sites == ("CA", "VA", "IR", "JP", "SG")
        assert figure2_config("VA").sites == ("CA", "VA", "IR")
        assert figure5_config().balanced is False
        assert figure6_config().origin_site == "SG"
        assert figure6_config().leader_site == "CA"


class TestThroughputHarness:
    def test_throughput_experiment_reports_kops_and_utilization(self):
        result = run_throughput_experiment(
            "clock-rsm",
            100,
            replica_count=3,
            window=100_000,
            warmup=30_000,
            outstanding_per_replica=16,
            cpu_model=CpuModel(10, 0.01, 10, 0.01),
        )
        assert result.committed > 0
        assert result.throughput_kops > 0
        assert set(result.replica_utilization) == {0, 1, 2}
        assert all(0 <= u <= 1 for u in result.replica_utilization.values())


class TestReporting:
    def test_format_table_alignment_and_content(self):
        text = format_table([{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_format_latency_table_and_cdf(self):
        config = figure2_config("VA", **QUICK)
        results = run_latency_comparison(config, protocols=("clock-rsm",))
        table = format_latency_table(results, ("CA", "VA", "IR"), title="fig")
        assert "clock-rsm" in table and "CA" in table
        cdfs = latency_cdf_experiment(config, cdf_site="CA", protocols=("clock-rsm",))
        cdf_text = format_cdf(cdfs, title="cdf")
        assert "p95" in cdf_text

    def test_format_throughput(self):
        result = run_throughput_experiment(
            "paxos",
            10,
            replica_count=3,
            window=50_000,
            warmup=20_000,
            outstanding_per_replica=8,
            cpu_model=CpuModel(10, 0.01, 10, 0.01),
        )
        text = format_throughput([result], title="fig8")
        assert "paxos" in text and "throughput_kops" in text


class TestNumericalBench:
    def test_table2_figure7_table4_are_consistent(self):
        assert len(table2_rows(["CA", "VA", "IR"], "VA")) == 3
        assert len(figure7_data(sizes=(3,))) == 1
        assert len(table4_rows(sizes=(3, 5))) == 4
