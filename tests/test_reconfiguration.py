"""Integration tests for Clock-RSM reconfiguration and recovery (Alg. 3)."""

from __future__ import annotations

import pytest

from repro.sim.failures import FailureSchedule
from repro.types import seconds_to_micros

from tests.helpers import make_cluster


def submit_series(cluster, count, start, spacing=15_000, origins=None):
    """Schedule *count* commands, cycling over *origins* (default: all)."""
    origins = list(origins if origins is not None else cluster.spec.replica_ids)
    commands = []
    for i in range(count):
        origin = origins[i % len(origins)]
        command = cluster.make_command(f"cmd-{start}-{i}".encode(), client=f"client-{origin}")
        cluster.submit_at(start + i * spacing, origin, command)
        commands.append(command)
    return commands


class TestReconfiguration:
    def test_crash_blocks_clock_rsm_until_reconfiguration(self):
        """Without reconfiguration a crashed replica stalls commits; removing
        it from the configuration restores progress (the paper's motivation
        for Algorithm 3)."""
        cluster = make_cluster("clock-rsm", sites=("CA", "VA", "IR"), seed=21)
        cluster.start()
        submit_series(cluster, 3, start=5_000)
        cluster.run_for(seconds_to_micros(1.0))
        assert len(cluster.replies) == 3

        # Crash IR.  New commands cannot commit: the stable-order condition
        # needs IR's clock promise, which will never arrive.
        cluster.crash(2)
        submit_series(cluster, 2, start=cluster.now + 5_000, origins=[0, 1])
        cluster.run_for(seconds_to_micros(1.0))
        assert len(cluster.replies) == 3

        # Replica 0 reconfigures the system to {CA, VA}.
        schedule = FailureSchedule().reconfigure(cluster.now + 10_000, initiator=0, new_config=(0, 1))
        schedule.install(cluster)
        cluster.run_for(seconds_to_micros(1.0))
        assert cluster.replica(0).epoch == 1
        assert cluster.replica(1).epoch == 1
        assert cluster.replica(0).active_config == (0, 1)

        # The parked/new commands now commit with only two replicas.
        submit_series(cluster, 3, start=cluster.now + 5_000, origins=[0, 1])
        cluster.run_for(seconds_to_micros(1.5))
        assert len(cluster.replies) >= 6
        cluster.assert_consistent_order()

    def test_commands_committed_before_the_cut_survive_reconfiguration(self):
        cluster = make_cluster("clock-rsm", sites=("CA", "VA", "IR"), seed=22)
        cluster.start()
        first = submit_series(cluster, 4, start=5_000)
        cluster.run_for(seconds_to_micros(1.0))
        assert len(cluster.replies) == 4
        history_before = tuple(cluster.replica(0).state_machine.history)

        cluster.crash(2)
        FailureSchedule().reconfigure(cluster.now + 5_000, 0, (0, 1)).install(cluster)
        cluster.run_for(seconds_to_micros(1.0))

        for rid in (0, 1):
            replica = cluster.replica(rid)
            assert tuple(replica.state_machine.history)[: len(history_before)] == history_before
            assert replica.executed_count >= 4

    def test_recovered_replica_rejoins_and_catches_up(self):
        cluster = make_cluster("clock-rsm", sites=("CA", "VA", "IR"), seed=23)
        cluster.start()
        submit_series(cluster, 3, start=5_000)
        cluster.run_for(seconds_to_micros(1.0))
        executed_before_crash = cluster.replica(2).executed_count

        # IR crashes; the others reconfigure it out and keep committing.
        cluster.crash(2)
        FailureSchedule().reconfigure(cluster.now + 10_000, 0, (0, 1)).install(cluster)
        cluster.run_for(seconds_to_micros(0.5))
        submit_series(cluster, 4, start=cluster.now + 5_000, origins=[0, 1])
        cluster.run_for(seconds_to_micros(1.0))
        committed_without_ir = cluster.replica(0).executed_count
        assert committed_without_ir >= executed_before_crash + 4

        # IR recovers from its log and asks to rejoin via reconfiguration.
        FailureSchedule().recover(cluster.now + 10_000, 2, rejoin=True).install(cluster)
        cluster.run_for(seconds_to_micros(2.0))
        recovered = cluster.replica(2)
        assert recovered.epoch >= 2
        assert 2 in recovered.active_config
        # State transfer brought it up to date with everything it missed.
        assert recovered.executed_count >= committed_without_ir
        cluster.assert_consistent_order()

        # And the rejoined cluster keeps making progress with all three.
        submit_series(cluster, 3, start=cluster.now + 5_000)
        cluster.run_for(seconds_to_micros(1.5))
        cluster.assert_consistent_order()
        assert cluster.replica(2).executed_count > committed_without_ir

    def test_five_replica_minority_failure(self):
        cluster = make_cluster("clock-rsm", sites=("CA", "VA", "IR", "JP", "SG"), seed=24)
        cluster.start()
        submit_series(cluster, 5, start=5_000)
        cluster.run_for(seconds_to_micros(1.5))
        assert len(cluster.replies) == 5

        cluster.crash(3)
        cluster.crash(4)
        FailureSchedule().reconfigure(cluster.now + 10_000, 0, (0, 1, 2)).install(cluster)
        cluster.run_for(seconds_to_micros(1.5))
        assert cluster.replica(0).active_config == (0, 1, 2)

        submit_series(cluster, 5, start=cluster.now + 5_000, origins=[0, 1, 2])
        cluster.run_for(seconds_to_micros(2.0))
        assert len(cluster.replies) >= 10
        cluster.assert_consistent_order()

    def test_reconfigure_rejects_minority_configurations(self):
        cluster = make_cluster("clock-rsm", sites=("CA", "VA", "IR", "JP", "SG"), seed=25)
        cluster.start()
        replica = cluster.replica(0)
        with pytest.raises(ValueError):
            replica.reconfig.trigger((0, 1))
        with pytest.raises(ValueError):
            replica.reconfig.trigger((0, 1, 9))

    def test_reconfiguration_requires_clock_rsm(self):
        cluster = make_cluster("paxos", sites=("CA", "VA", "IR"), seed=26)
        cluster.start()
        schedule = FailureSchedule().reconfigure(1_000, 0, (0, 1))
        with pytest.raises(ValueError):
            schedule.install(cluster)
            cluster.run_for(10_000)
