"""Tests for the in-memory transport and network hub."""

from __future__ import annotations

import pytest

from repro.errors import TransportError
from repro.net.message import Envelope
from repro.net.transport import InMemoryNetwork, InMemoryTransport


def _collector():
    received = []
    return received, received.append


class TestInMemoryNetwork:
    def test_basic_delivery(self):
        network = InMemoryNetwork()
        t0 = network.transport_for(0)
        t1 = network.transport_for(1)
        received, handler = _collector()
        t1.set_handler(handler)
        t0.set_handler(lambda e: None)
        t0.send(Envelope(0, 1, "hello"))
        assert [e.message for e in received] == ["hello"]

    def test_loopback_is_immediate(self):
        network = InMemoryNetwork(auto_deliver=False)
        t0 = network.transport_for(0)
        received, handler = _collector()
        t0.set_handler(handler)
        t0.send(Envelope(0, 0, "self"))
        assert [e.message for e in received] == ["self"]
        assert network.pending_count() == 0

    def test_deferred_delivery(self):
        network = InMemoryNetwork(auto_deliver=False)
        t0, t1 = network.transport_for(0), network.transport_for(1)
        received, handler = _collector()
        t0.set_handler(lambda e: None)
        t1.set_handler(handler)
        t0.send(Envelope(0, 1, "a"))
        t0.send(Envelope(0, 1, "b"))
        assert received == []
        assert network.pending_count() == 2
        assert network.deliver_one() is True
        assert [e.message for e in received] == ["a"]
        network.deliver_all()
        assert [e.message for e in received] == ["a", "b"]

    def test_fifo_per_channel(self):
        network = InMemoryNetwork(auto_deliver=False)
        t0, t1 = network.transport_for(0), network.transport_for(1)
        received, handler = _collector()
        t0.set_handler(lambda e: None)
        t1.set_handler(handler)
        for i in range(10):
            t0.send(Envelope(0, 1, i))
        network.deliver_all()
        assert [e.message for e in received] == list(range(10))

    def test_partition_drops_messages(self):
        network = InMemoryNetwork()
        t0, t1 = network.transport_for(0), network.transport_for(1)
        received, handler = _collector()
        t0.set_handler(lambda e: None)
        t1.set_handler(handler)
        network.partition(0, 1)
        t0.send(Envelope(0, 1, "lost"))
        assert received == []
        assert len(network.dropped) == 1
        network.heal(0, 1)
        t0.send(Envelope(0, 1, "found"))
        assert [e.message for e in received] == ["found"]

    def test_heal_all(self):
        network = InMemoryNetwork()
        network.transport_for(0).set_handler(lambda e: None)
        network.transport_for(1).set_handler(lambda e: None)
        network.partition(0, 1)
        assert network.is_partitioned(0, 1)
        network.heal_all()
        assert not network.is_partitioned(0, 1)

    def test_unknown_destination_rejected(self):
        network = InMemoryNetwork()
        t0 = network.transport_for(0)
        t0.set_handler(lambda e: None)
        with pytest.raises(TransportError):
            t0.send(Envelope(0, 99, "nobody"))

    def test_duplicate_attach_rejected(self):
        network = InMemoryNetwork()
        network.transport_for(0)
        with pytest.raises(TransportError):
            network.transport_for(0)

    def test_spoofed_source_rejected(self):
        network = InMemoryNetwork()
        t0 = network.transport_for(0)
        network.transport_for(1).set_handler(lambda e: None)
        t0.set_handler(lambda e: None)
        with pytest.raises(TransportError):
            t0.send(Envelope(5, 1, "spoof"))

    def test_delivery_without_handler_is_an_error(self):
        network = InMemoryNetwork()
        t0 = network.transport_for(0)
        network.transport_for(1)  # no handler registered
        t0.set_handler(lambda e: None)
        with pytest.raises(TransportError):
            t0.send(Envelope(0, 1, "early"))

    def test_messages_produced_during_delivery_are_also_delivered(self):
        network = InMemoryNetwork(auto_deliver=False)
        t0, t1 = network.transport_for(0), network.transport_for(1)
        received, handler = _collector()
        t0.set_handler(handler)

        def echo(envelope: Envelope) -> None:
            if envelope.message == "ping":
                t1.send(Envelope(1, 0, "pong"))

        t1.set_handler(echo)
        t0.send(Envelope(0, 1, "ping"))
        network.deliver_all()
        assert [e.message for e in received] == ["pong"]
