"""Tests for the simulated node's CPU/batching cost model."""

from __future__ import annotations

import pytest

from repro.core.messages import Prepare, PrepareOk
from repro.sim.node import CpuModel, MESSAGE_HEADER_BYTES, default_message_size
from repro.types import Command, CommandId, Timestamp, seconds_to_micros

from tests.helpers import make_cluster


class TestMessageSizeEstimate:
    def test_plain_message_is_header_sized(self):
        assert default_message_size(PrepareOk(Timestamp(1, 0), 2)) == MESSAGE_HEADER_BYTES

    def test_command_payload_is_counted(self):
        command = Command(CommandId("c", 1), b"x" * 100)
        size = default_message_size(Prepare(command, Timestamp(1, 0)))
        assert size == MESSAGE_HEADER_BYTES + 100 + 24

    def test_record_batches_count_every_command(self):
        from repro.core.messages import PrepareRecord, SuspendOk

        records = tuple(
            PrepareRecord(Command(CommandId("c", i), b"y" * 10), Timestamp(i, 0)) for i in range(3)
        )
        size = default_message_size(SuspendOk(1, records))
        assert size == MESSAGE_HEADER_BYTES + 3 * (10 + 24)


class TestCpuModel:
    def test_costs_scale_with_groups_and_bytes(self):
        model = CpuModel(recv_fixed=10, recv_per_byte=0.1, send_fixed=20, send_per_byte=0.2)
        assert model.receive_cost(groups=3, total_bytes=100) == 40
        assert model.send_cost(groups=2, total_bytes=50) == 50

    def test_zero_work_costs_nothing(self):
        model = CpuModel()
        assert model.receive_cost(0, 0) == 0
        assert model.send_cost(0, 0) == 0


class TestCpuSimulation:
    def _run(self, cpu_model, command_count=30):
        cluster = make_cluster(
            "clock-rsm",
            sites=("a", "b", "c"),
            uniform_one_way=200,
            seed=1,
            cpu_model=cpu_model,
        )
        cluster.start()
        for i in range(command_count):
            cluster.submit_at(
                i * 500, i % 3, cluster.make_command(b"p" * 64, client=f"c{i % 3}")
            )
        cluster.run_for(seconds_to_micros(3.0))
        return cluster

    def test_zero_cost_model_matches_no_model(self):
        with_none = self._run(cpu_model=None)
        with_zero = self._run(cpu_model=CpuModel(0, 0, 0, 0, 0))
        assert len(with_none.replies) == len(with_zero.replies) == 30
        assert [e.command_id for e in with_none.replies] == [e.command_id for e in with_zero.replies]

    def test_cpu_model_delays_but_preserves_correctness(self):
        fast = self._run(cpu_model=None)
        slow = self._run(cpu_model=CpuModel(recv_fixed=200, recv_per_byte=1.0,
                                            send_fixed=200, send_per_byte=1.0))
        assert len(slow.replies) == 30
        slow.assert_consistent_order()
        # CPU work strictly increases every command's commit latency.
        fast_by_id = {e.command_id: e.time for e in fast.replies}
        slow_by_id = {e.command_id: e.time for e in slow.replies}
        assert all(slow_by_id[cid] > fast_by_id[cid] for cid in fast_by_id)

    def test_busy_time_and_utilization_are_tracked(self):
        cluster = self._run(cpu_model=CpuModel(recv_fixed=100, recv_per_byte=0.5,
                                               send_fixed=100, send_per_byte=0.5))
        for node in cluster.nodes.values():
            assert node.busy_micros > 0
            assert 0.0 < node.utilization(cluster.now) <= 1.0

    def test_throughput_is_bounded_by_the_cpu_model(self):
        # With an extremely slow CPU, fewer commands commit in a fixed window
        # than with a fast one.
        from repro.statemachine import NullStateMachine
        from repro.workload.scenarios import saturating_workload
        from repro.config import ClusterSpec, ProtocolConfig
        from repro.net.latency import LatencyMatrix
        from repro.sim.cluster import SimulatedCluster

        def run(model):
            sites = ["d0", "d1", "d2"]
            cluster = SimulatedCluster(
                ClusterSpec.from_sites(sites),
                LatencyMatrix.uniform(sites, one_way=50),
                "clock-rsm",
                ProtocolConfig(),
                seed=2,
                cpu_model=model,
                state_machine_factory=lambda _rid: NullStateMachine(),
            )
            handle = saturating_workload(cluster, payload_size=64, window_per_replica=16)
            cluster.run_for(200_000)
            handle.stop()
            return handle.collector.count()

        fast = run(CpuModel(5, 0.005, 5, 0.005))
        slow = run(CpuModel(500, 0.5, 500, 0.5))
        assert slow < fast
