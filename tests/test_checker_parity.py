"""Sim-vs-async checker parity: both backends, same spec, same verdict.

The acceptance scenario for the consistency subsystem: one crash+partition
``FaultSpec`` schedule runs unchanged on the discrete-event simulator and the
live asyncio runtime, and the recorded histories pass the linearizability
checker on both, for every registered protocol.
"""

from __future__ import annotations

import pytest

from repro.experiment import ExperimentSpec, FaultSpec, WorkloadSpec, check_spec

from tests.helpers import ALL_PROTOCOLS

#: One crash + one partition (healing mid-run), against a three-site cluster.
#: The crash target is never the default leader site, so leader-based
#: protocols keep committing through the fault.
CRASH_PARTITION_FAULTS = (
    FaultSpec(kind="crash", at_s=0.35, site="IR"),
    FaultSpec(kind="partition", at_s=0.45, site="CA", peer="IR", heal_at_s=0.75),
)


def crash_partition_spec(protocol: str) -> ExperimentSpec:
    return ExperimentSpec(
        name=f"crash-partition-{protocol}",
        protocol=protocol,
        sites=("CA", "VA", "IR"),
        workload=WorkloadSpec(clients_per_site=2, think_time_max_ms=40.0),
        faults=CRASH_PARTITION_FAULTS,
        duration_s=1.0,
        warmup_s=0.0,
        seed=1789,
    ).with_protocol(protocol)


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
def test_crash_partition_schedule_passes_on_both_backends(protocol):
    spec = crash_partition_spec(protocol)
    sim = check_spec(spec)
    live = check_spec(spec, backend="async", time_scale=25, submit_timeout=0.8)
    for run in (sim, live):
        assert run.linearizable, (run.result.backend, run.report.violation)
        assert run.result.total_committed > 0, run.result.backend
        assert run.result.history is not None
    assert {sim.result.backend, live.result.backend} == {"sim", "async"}


@pytest.mark.parametrize("protocol", ["clock-rsm", "paxos"])
def test_checker_verdict_matches_across_backends(protocol):
    """The satellite parity requirement: the *verdict* (not throughput)
    agrees between backends for the same seeded spec."""
    spec = crash_partition_spec(protocol)
    sim = check_spec(spec)
    live = check_spec(spec, backend="async", time_scale=25, submit_timeout=0.8)
    assert sim.report.linearizable == live.report.linearizable is True
    assert sim.report.method == live.report.method == "total-order"
    # Both backends record real, non-trivial histories for the same spec.
    for run in (sim, live):
        assert run.report.completed > 0
        assert run.report.keys > 0
