"""Tests for the message registry and envelope round-trips."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.core.messages import ClockTime, CommitRecord, Prepare, PrepareOk, PrepareRecord
from repro.errors import CodecError
from repro.net.message import Envelope, MessageRegistry, global_registry
from repro.protocols.multipaxos import CommitSlot, Forward, Phase2a, Phase2b
from repro.protocols.mencius import MenciusAck, MenciusCommit, SkipAnnounce, Suggest
from repro.types import Command, CommandId, Timestamp


def _command(seq: int = 1, payload: bytes = b"payload") -> Command:
    return Command(CommandId("client-a", seq), payload, created_at=123)


class TestGlobalRegistryRoundTrips:
    @pytest.mark.parametrize(
        "message",
        [
            Timestamp(1234, 2),
            _command(),
            Prepare(_command(), Timestamp(55, 1), epoch=3),
            PrepareOk(Timestamp(55, 1), 99, epoch=3),
            ClockTime(1_000_000, epoch=1),
            PrepareRecord(_command(), Timestamp(55, 1)),
            CommitRecord(Timestamp(55, 1)),
            Forward(_command()),
            Phase2a(7, _command()),
            Phase2b(7),
            CommitSlot(7),
            Suggest(12, _command(), 17),
            MenciusAck(12, 17),
            MenciusCommit(12),
            SkipAnnounce(22),
        ],
    )
    def test_protocol_messages_round_trip(self, message):
        data = global_registry.encode(message)
        assert global_registry.decode(data) == message

    def test_nested_containers_of_messages(self):
        value = {"batch": [Prepare(_command(i), Timestamp(i, 0)) for i in range(5)]}
        decoded = global_registry.decode(global_registry.encode(value))
        assert decoded["batch"] == [Prepare(_command(i), Timestamp(i, 0)) for i in range(5)]

    def test_tuple_fields_survive_round_trip(self):
        from repro.core.messages import SuspendOk

        message = SuspendOk(2, (PrepareRecord(_command(), Timestamp(9, 0)),))
        decoded = global_registry.decode(global_registry.encode(message))
        assert decoded == message
        assert isinstance(decoded.records, tuple)


class TestCustomRegistry:
    def test_register_and_round_trip(self):
        registry = MessageRegistry()

        @dataclass(frozen=True)
        class Ping:
            nonce: int

        registry.register(Ping)
        assert registry.decode(registry.encode(Ping(9))) == Ping(9)
        assert registry.is_registered(Ping)

    def test_unregistered_type_rejected_on_encode(self):
        registry = MessageRegistry()

        @dataclass(frozen=True)
        class Unknown:
            x: int

        with pytest.raises(CodecError):
            registry.encode(Unknown(1))

    def test_unknown_name_rejected_on_decode(self):
        registry = MessageRegistry()

        @dataclass(frozen=True)
        class Known:
            x: int

        registry.register(Known)
        data = registry.encode(Known(1))
        assert MessageRegistry().decode.__self__ is not registry  # sanity
        with pytest.raises(CodecError):
            MessageRegistry().decode(data)

    def test_conflicting_registration_rejected(self):
        registry = MessageRegistry()

        @dataclass(frozen=True)
        class A:
            x: int

        @dataclass(frozen=True)
        class B:
            x: int

        registry.register(A, name="same")
        with pytest.raises(CodecError):
            registry.register(B, name="same")

    def test_non_dataclass_rejected(self):
        registry = MessageRegistry()
        with pytest.raises(CodecError):
            registry.register(int)  # type: ignore[arg-type]

    def test_unknown_fields_are_ignored_for_forward_compatibility(self):
        registry = MessageRegistry()

        @dataclass(frozen=True)
        class Record:
            x: int = 0

        registry.register(Record, name="Record")
        # Encode by hand with an extra field a future version might add.
        data = registry.encode(Record(5))
        # Decode a manually crafted object with an extra field.
        from repro.net.wire import WireEncoder

        encoder = WireEncoder(object_hook=lambda v: ("Record", {"x": 5, "future": True}))
        crafted = encoder.encode(Record(5))
        assert registry.decode(crafted) == Record(5)
        assert registry.decode(data) == Record(5)


class TestEnvelope:
    def test_with_size(self):
        envelope = Envelope(0, 1, Phase2b(3))
        assert envelope.size_hint == 0
        assert envelope.with_size(128).size_hint == 128
        assert envelope.with_size(128).message == Phase2b(3)
