"""Tests for the state machine implementations."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CodecError
from repro.kvstore.commands import (
    KvOp,
    decode_op,
    encode_delete,
    encode_get,
    encode_put,
    random_update,
)
from repro.kvstore.kv import KVStateMachine
from repro.statemachine import AppendLogStateMachine, CounterStateMachine, NullStateMachine
from repro.types import Command, CommandId


def cmd(payload: bytes, seq: int = 1) -> Command:
    return Command(CommandId("c", seq), payload)


class TestNullStateMachine:
    def test_counts_commands(self):
        machine = NullStateMachine()
        machine.apply(cmd(b"a"))
        machine.apply(cmd(b"b"))
        assert machine.applied_count == 2

    def test_snapshot_restore(self):
        machine = NullStateMachine()
        machine.apply(cmd(b"a"))
        other = NullStateMachine()
        other.restore(machine.snapshot())
        assert other.applied_count == 1


class TestAppendLogStateMachine:
    def test_history_and_output(self):
        machine = AppendLogStateMachine()
        assert machine.apply(cmd(b"one")) == 1
        assert machine.apply(cmd(b"two")) == 2
        assert machine.history == [b"one", b"two"]

    def test_snapshot_restore(self):
        machine = AppendLogStateMachine()
        machine.apply(cmd(b"one"))
        machine.apply(cmd(b"two"))
        other = AppendLogStateMachine()
        other.restore(machine.snapshot())
        assert other.history == [b"one", b"two"]


class TestCounterStateMachine:
    def test_signed_deltas(self):
        machine = CounterStateMachine()
        assert machine.apply(cmd((5).to_bytes(8, "big", signed=True))) == 5
        assert machine.apply(cmd((-3).to_bytes(8, "big", signed=True))) == 2
        assert machine.apply(cmd(b"")) == 2  # empty payload leaves the counter

    def test_snapshot_restore(self):
        machine = CounterStateMachine()
        machine.apply(cmd((42).to_bytes(4, "big", signed=True)))
        other = CounterStateMachine()
        other.restore(machine.snapshot())
        assert other.value == 42


class TestKvCommands:
    def test_put_round_trip(self):
        op = decode_op(encode_put("user:1", b"alice"))
        assert op == KvOp("put", "user:1", b"alice")

    def test_get_round_trip(self):
        op = decode_op(encode_get("user:1"))
        assert op.op == "get" and op.key == "user:1" and op.value is None

    def test_delete_round_trip(self):
        op = decode_op(encode_delete("user:1"))
        assert op.op == "delete" and op.key == "user:1"

    def test_malformed_payload_rejected(self):
        with pytest.raises(CodecError):
            decode_op(b"\x00garbage")
        from repro.net.wire import encode

        with pytest.raises(CodecError):
            decode_op(encode(["unknownop", "k", b""]))
        with pytest.raises(CodecError):
            decode_op(encode(["put", "key-only"]))

    def test_random_update_is_a_valid_put(self):
        import random

        op = decode_op(random_update(random.Random(3), key_space=10, value_size=16))
        assert op.op == "put"
        assert len(op.value) == 16
        assert op.key.startswith("key-")

    @given(st.text(max_size=50), st.binary(max_size=200))
    def test_put_round_trip_property(self, key, value):
        op = decode_op(encode_put(key, value))
        assert op.key == key and op.value == value


class TestKVStateMachine:
    def test_put_get_delete_cycle(self):
        machine = KVStateMachine()
        assert machine.apply(cmd(encode_put("k", b"v1"), 1)) is None
        assert machine.apply(cmd(encode_get("k"), 2)) == b"v1"
        assert machine.apply(cmd(encode_put("k", b"v2"), 3)) == b"v1"
        assert machine.apply(cmd(encode_delete("k"), 4)) is True
        assert machine.apply(cmd(encode_get("k"), 5)) is None
        assert machine.apply(cmd(encode_delete("k"), 6)) is False
        assert machine.applied_count == 6

    def test_local_inspection_helpers(self):
        machine = KVStateMachine()
        machine.apply(cmd(encode_put("b", b"2"), 1))
        machine.apply(cmd(encode_put("a", b"1"), 2))
        assert machine.get("a") == b"1"
        assert machine.keys() == ["a", "b"]
        assert len(machine) == 2

    def test_snapshot_restore_round_trip(self):
        machine = KVStateMachine()
        for i in range(20):
            machine.apply(cmd(encode_put(f"key-{i}", bytes([i])), i))
        other = KVStateMachine()
        other.restore(machine.snapshot())
        assert other.keys() == machine.keys()
        assert other.get("key-7") == bytes([7])
        assert other.applied_count == machine.applied_count

    def test_determinism_across_replicas(self):
        # Two replicas applying the same command sequence reach the same state.
        commands = [cmd(encode_put(f"k{i % 5}", bytes([i])), i) for i in range(50)]
        a, b = KVStateMachine(), KVStateMachine()
        for command in commands:
            a.apply(command)
            b.apply(command)
        assert a.snapshot() == b.snapshot()

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["put", "get", "delete"]),
                st.integers(min_value=0, max_value=5),
                st.binary(max_size=8),
            ),
            max_size=60,
        )
    )
    def test_matches_a_plain_dict_model(self, operations):
        machine = KVStateMachine()
        model: dict[str, bytes] = {}
        for seq, (op, key_index, value) in enumerate(operations):
            key = f"key-{key_index}"
            if op == "put":
                expected = model.get(key)
                model[key] = value
                payload = encode_put(key, value)
            elif op == "get":
                expected = model.get(key)
                payload = encode_get(key)
            else:
                expected = key in model
                model.pop(key, None)
                payload = encode_delete(key)
            assert machine.apply(cmd(payload, seq)) == expected
        assert sorted(model) == machine.keys()
