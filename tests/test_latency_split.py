"""The queue-wait vs protocol-time latency split recorded at the driver.

PR 4 tuned batching windows and pipeline depths by total commit latency
alone; the split separates time a command spends waiting in the batching
accumulator (queue wait) from time inside consensus and execution (protocol
time), so window/depth tuning becomes quantitative.
"""

from __future__ import annotations

import asyncio

from repro.config import BatchingOptions, ClusterSpec
from repro.experiment import BatchingSpec, Deployment, ExperimentSpec, WorkloadSpec
from repro.experiment.result import ExperimentResult, SiteResult
from repro.kvstore.commands import encode_put
from repro.runtime.local import LocalAsyncCluster
from repro.shard.deployment import aggregate_results


def run(coro):
    return asyncio.run(coro)


def _spec(sites=("CA", "VA", "IR")) -> ClusterSpec:
    return ClusterSpec.from_sites(list(sites))


class TestDriverSplit:
    def test_no_samples_before_any_reply(self):
        async def scenario():
            cluster = LocalAsyncCluster("clock-rsm", _spec())
            async with cluster:
                assert cluster.servers[0].driver.latency_split() is None
            return True

        assert run(scenario())

    def test_unbatched_submissions_have_zero_queue_wait(self):
        async def scenario():
            cluster = LocalAsyncCluster("clock-rsm", _spec())
            async with cluster:
                for i in range(4):
                    await cluster.submit(0, encode_put(f"k{i}", b"v"), client="c")
                split = cluster.servers[0].driver.latency_split()
                assert split is not None
                assert split["samples"] == 4
                assert split["queue_wait_s"] == 0.0
                assert split["protocol_s"] > 0.0
            return True

        assert run(scenario())

    def test_window_wait_shows_up_as_queue_time(self):
        async def scenario():
            # A 20 ms window with one lone command: the command sits in the
            # accumulator until the window timer fires, so its queue wait must
            # be on the order of the window.
            cluster = LocalAsyncCluster(
                "paxos",
                _spec(),
                batching=BatchingOptions(max_batch=64, window_us=20_000),
            )
            async with cluster:
                await asyncio.wait_for(
                    cluster.submit(0, encode_put("k", b"v"), client="c"), timeout=5
                )
                split = cluster.servers[0].driver.latency_split()
                assert split is not None and split["samples"] == 1
                assert split["queue_wait_s"] >= 0.010
            return True

        assert run(scenario())

    def test_every_command_of_a_batch_is_settled(self):
        async def scenario():
            cluster = LocalAsyncCluster(
                "clock-rsm",
                _spec(),
                batching=BatchingOptions(max_batch=8, window_us=0),
            )
            async with cluster:
                await asyncio.gather(
                    *(
                        cluster.submit(0, encode_put(f"k{i}", b"v"), client="c")
                        for i in range(8)
                    )
                )
                split = cluster.servers[0].driver.latency_split()
                assert split is not None and split["samples"] == 8
                assert split["queue_wait_s"] >= 0.0
                assert split["protocol_s"] > 0.0
                # Settled commands release their in-flight records.
                driver = cluster.servers[0].driver
                assert not driver._in_flight
            return True

        assert run(scenario())


class TestBackendWiring:
    def _experiment(self, batching) -> ExperimentSpec:
        return ExperimentSpec(
            name="split-rt",
            protocol="clock-rsm",
            sites=("S0", "S1", "S2"),
            latency="uniform",
            one_way_ms=0.1,
            workload=WorkloadSpec(
                scenario="saturating", outstanding_per_site=8, app="kv"
            ),
            duration_s=0.3,
            warmup_s=0.05,
            seed=11,
            batching=batching,
        )

    def test_async_result_reports_the_split(self):
        spec = self._experiment(BatchingSpec(max_batch=8, window_us=0))
        result = Deployment(spec, backend="async", time_scale=10).run()
        split = result.latency_split()
        assert split is not None
        assert split["samples"] > 0
        assert split["protocol_mean_us"] > 0
        assert split["queue_wait_mean_us"] >= 0
        for metrics in result.replica_metrics.values():
            assert "split_samples" in metrics

    def test_sim_result_has_no_split(self):
        spec = self._experiment(None)
        result = Deployment(spec, backend="sim").run()
        assert result.latency_split() is None


class TestShardedAggregation:
    def _result(self, name, queue_us, protocol_us, samples) -> ExperimentResult:
        return ExperimentResult(
            name=name,
            protocol="clock-rsm",
            backend="async",
            duration_s=1.0,
            sites={"S0": SiteResult(site="S0", replica_id=0, committed=int(samples))},
            total_committed=int(samples),
            throughput_kops=samples / 1000.0,
            replica_metrics={
                0: {
                    "executed": samples,
                    "queue_wait_mean_us": queue_us,
                    "protocol_mean_us": protocol_us,
                    "split_samples": samples,
                }
            },
        )

    def test_split_means_merge_sample_weighted(self):
        spec = ExperimentSpec(
            name="split-agg",
            protocol="clock-rsm",
            sites=("S0",),
            latency="uniform",
            one_way_ms=0.1,
            workload=WorkloadSpec(),
            duration_s=1.0,
        )
        shards = [
            self._result("a", queue_us=100.0, protocol_us=1000.0, samples=100.0),
            self._result("b", queue_us=300.0, protocol_us=3000.0, samples=300.0),
        ]
        merged = aggregate_results(spec, "async", shards)
        metrics = merged.replica_metrics[0]
        # Weighted means, not sums: (100*100 + 300*300) / 400 = 250.
        assert metrics["queue_wait_mean_us"] == 250.0
        assert metrics["protocol_mean_us"] == 2500.0
        assert metrics["split_samples"] == 400.0
        assert metrics["executed"] == 400.0
        split = merged.latency_split()
        assert split == {
            "queue_wait_mean_us": 250.0,
            "protocol_mean_us": 2500.0,
            "samples": 400.0,
        }
