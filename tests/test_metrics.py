"""Tests for latency statistics and collectors."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.collector import LatencyCollector, ThroughputCounter
from repro.metrics.stats import cdf_points, percentile, summarize_micros
from repro.types import CommandId


class TestPercentile:
    def test_median_of_odd_list(self):
        assert percentile([1, 2, 3, 4, 5], 0.5) == 3

    def test_interpolation(self):
        assert percentile([0, 10], 0.25) == 2.5

    def test_extremes(self):
        data = [5, 1, 9, 3]
        assert percentile(data, 0.0) == 1
        assert percentile(data, 1.0) == 9

    def test_single_sample(self):
        assert percentile([7], 0.95) == 7

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 1.5)

    @given(
        st.lists(
            st.floats(min_value=0, max_value=1e6, allow_nan=False, allow_subnormal=False),
            min_size=1,
            max_size=200,
        )
    )
    def test_percentile_bounds_and_monotonicity(self, samples):
        p50 = percentile(samples, 0.5)
        p95 = percentile(samples, 0.95)
        assert min(samples) <= p50 <= p95 <= max(samples)


class TestCdf:
    def test_cdf_points_reach_one(self):
        points = cdf_points([3, 1, 2])
        assert points == [(1.0, pytest.approx(1 / 3)), (2.0, pytest.approx(2 / 3)), (3.0, 1.0)]

    def test_empty_cdf(self):
        assert cdf_points([]) == []


class TestSummaries:
    def test_summarize_micros_converts_to_ms(self):
        summary = summarize_micros([100_000, 200_000, 300_000])
        assert summary.count == 3
        assert summary.mean_ms == pytest.approx(200.0)
        assert summary.min_ms == 100.0
        assert summary.max_ms == 300.0
        assert summary.p50_ms == 200.0
        row = summary.as_row()
        assert row["count"] == 3 and row["p95_ms"] >= row["p50_ms"]

    def test_empty_summary_rejected(self):
        with pytest.raises(ValueError):
            summarize_micros([])


class TestLatencyCollector:
    def test_records_latency_per_origin_replica(self):
        collector = LatencyCollector()
        collector.record_submit(CommandId("a", 1), replica_id=0, time=1_000)
        collector.record_submit(CommandId("b", 1), replica_id=1, time=2_000)
        collector.record_commit(CommandId("a", 1), time=101_000)
        collector.record_commit(CommandId("b", 1), time=52_000)
        assert collector.latencies_micros(0) == [100_000]
        assert collector.latencies_micros(1) == [50_000]
        assert collector.count() == 2
        assert collector.count(0) == 1
        assert collector.summary(0).mean_ms == 100.0
        assert collector.cdf_ms(1) == [(50.0, 1.0)]

    def test_warmup_filters_early_submissions(self):
        collector = LatencyCollector(warmup_until=10_000)
        collector.record_submit(CommandId("a", 1), 0, time=5_000)
        collector.record_commit(CommandId("a", 1), time=20_000)
        collector.record_submit(CommandId("a", 2), 0, time=15_000)
        collector.record_commit(CommandId("a", 2), time=25_000)
        assert collector.count(0) == 1

    def test_unknown_commit_is_ignored(self):
        collector = LatencyCollector()
        collector.record_commit(CommandId("ghost", 1), time=5)
        assert collector.count() == 0

    def test_outstanding_tracking(self):
        collector = LatencyCollector()
        collector.record_submit(CommandId("a", 1), 0, time=0)
        assert collector.outstanding == 1
        collector.record_commit(CommandId("a", 1), time=10)
        assert collector.outstanding == 0

    def test_all_latencies_and_summaries(self):
        collector = LatencyCollector()
        for seq in range(10):
            collector.record_submit(CommandId("a", seq), seq % 2, time=0)
            collector.record_commit(CommandId("a", seq), time=(seq + 1) * 1_000)
        assert len(collector.all_latencies_micros()) == 10
        assert set(collector.summaries()) == {0, 1}


class TestThroughputCounter:
    def test_counts_only_inside_window(self):
        counter = ThroughputCounter(window_start=1_000_000, window_end=2_000_000)
        counter.record(500_000)
        counter.record(1_500_000)
        counter.record(1_999_999)
        counter.record(2_500_000)
        assert counter.committed == 2
        assert counter.throughput_kops() == pytest.approx(2 / 1.0 / 1000)

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            ThroughputCounter(0, 0).throughput_kops()
