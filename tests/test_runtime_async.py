"""Tests for the asyncio runtime: drivers, servers, local clusters, TCP."""

from __future__ import annotations

import asyncio

import pytest

from repro.analysis.ec2 import ec2_latency_matrix
from repro.config import ClusterSpec, ProtocolConfig
from repro.errors import TransportError
from repro.kvstore.kv import KVStateMachine
from repro.net.message import Envelope, global_registry
from repro.net.tcp import decode_frame_body, encode_frame
from repro.protocols.multipaxos import Phase2a
from repro.runtime.client import ReplicatedKVClient
from repro.runtime.local import LocalAsyncCluster
from repro.runtime.messages import ClientRequest, ClientResponse
from repro.types import Command, CommandId, Timestamp


def run(coro):
    return asyncio.run(coro)


class TestFrameCodec:
    def test_envelope_round_trip(self):
        command = Command(CommandId("c", 1), b"payload")
        envelope = Envelope(0, 2, Phase2a(7, command))
        frame = encode_frame(envelope, global_registry)
        # Skip the 4-byte length prefix when decoding the body directly.
        decoded = decode_frame_body(frame[4:], global_registry)
        assert decoded.src == 0 and decoded.dst == 2
        assert decoded.message == Phase2a(7, command)
        assert decoded.size_hint == len(frame) - 4

    def test_malformed_body_rejected(self):
        with pytest.raises(TransportError):
            decode_frame_body(global_registry.encode({"nope": 1}), global_registry)

    def test_client_messages_round_trip(self):
        request = ClientRequest(Command(CommandId("cli", 9), b"x"))
        decoded = global_registry.decode(global_registry.encode(request))
        assert decoded == request
        response = ClientResponse(CommandId("cli", 9), b"result")
        assert global_registry.decode(global_registry.encode(response)) == response


def _spec(n: int = 3) -> ClusterSpec:
    return ClusterSpec.from_sites(["CA", "VA", "IR", "JP", "SG"][:n])


class TestLocalAsyncCluster:
    @pytest.mark.parametrize("protocol", ["clock-rsm", "paxos", "paxos-bcast", "mencius-bcast"])
    def test_replicated_kv_store_round_trip(self, protocol):
        async def scenario():
            cluster = LocalAsyncCluster(protocol, _spec(3), protocol_config=ProtocolConfig(leader=1))
            async with cluster:
                client_ca = ReplicatedKVClient(server=cluster.server_at("CA"))
                client_ir = ReplicatedKVClient(server=cluster.server_at("IR"))
                assert await client_ca.put("k", b"v1") is None
                assert await client_ir.get("k") == b"v1"
                assert await client_ir.put("k", b"v2") == b"v1"
                assert await client_ca.delete("k") is True
            return True

        assert run(scenario())

    def test_all_replicas_converge_to_the_same_state(self):
        async def scenario():
            cluster = LocalAsyncCluster("clock-rsm", _spec(3))
            async with cluster:
                client = ReplicatedKVClient(server=cluster.server_at("CA"))
                for i in range(10):
                    await client.put(f"key-{i}", bytes([i]))
                # Give followers a moment to apply the last commit.
                await asyncio.sleep(0.05)
                machines = [
                    server.replica.state_machine for server in cluster.servers.values()
                ]
                assert all(m.applied_count >= 10 for m in machines)
                assert len({m.snapshot() for m in machines}) == 1
            return True

        assert run(scenario())

    def test_injected_wan_delay_slows_commits_down(self):
        async def measure(latency):
            cluster = LocalAsyncCluster("clock-rsm", _spec(3), latency=latency)
            async with cluster:
                client = ReplicatedKVClient(server=cluster.server_at("CA"))
                loop = asyncio.get_running_loop()
                start = loop.time()
                await client.put("k", b"v")
                return loop.time() - start

        fast = run(measure(None))
        # Scale the EC2 delays down 10x to keep the test quick (~8.3 ms RTT).
        matrix = ec2_latency_matrix(["CA", "VA", "IR"])
        scaled = type(matrix)(
            matrix.sites,
            tuple(tuple(d // 10 for d in row) for row in matrix.one_way),
        )
        slow = run(measure(scaled))
        assert slow > fast
        assert slow >= 0.008  # at least one scaled CA-VA round trip

    def test_submit_helper_runs_raw_payloads(self):
        async def scenario():
            from repro.kvstore.commands import encode_put

            cluster = LocalAsyncCluster("paxos-bcast", _spec(3))
            async with cluster:
                output = await cluster.submit(0, encode_put("x", b"1"))
                assert output is None
            return True

        assert run(scenario())


class TestTcpServers:
    def test_replicas_and_clients_over_real_sockets(self):
        async def scenario():
            from repro.runtime.server import ReplicaServer

            spec = _spec(3)
            base = 40310
            peer_addresses = {rid: f"127.0.0.1:{base + rid}" for rid in spec.replica_ids}
            client_addresses = {rid: f"127.0.0.1:{base + 100 + rid}" for rid in spec.replica_ids}
            servers = [
                ReplicaServer(
                    "clock-rsm",
                    rid,
                    spec,
                    KVStateMachine(),
                    listen_address=peer_addresses[rid],
                    peer_addresses=peer_addresses,
                    client_address=client_addresses[rid],
                )
                for rid in spec.replica_ids
            ]
            for server in servers:
                await server.start()
            try:
                async with ReplicatedKVClient(address=client_addresses[0]) as client0:
                    assert await client0.put("tcp-key", b"over-the-wire") is None
                async with ReplicatedKVClient(address=client_addresses[2]) as client2:
                    assert await client2.get("tcp-key") == b"over-the-wire"
            finally:
                for server in servers:
                    await server.stop()
            return True

        assert run(scenario())
