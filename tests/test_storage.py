"""Tests for command logs and checkpoints."""

from __future__ import annotations

import pytest

from repro.core.messages import CommitRecord, PrepareRecord
from repro.errors import LogCorruptionError, StorageError
from repro.storage.checkpoint import (
    Checkpoint,
    FileCheckpointStore,
    InMemoryCheckpointStore,
)
from repro.storage.file_log import FileLog
from repro.storage.memory_log import InMemoryLog
from repro.types import Command, CommandId, Timestamp


def _prepare(i: int) -> PrepareRecord:
    return PrepareRecord(Command(CommandId("c", i), bytes([i % 256])), Timestamp(i * 10, 0))


class TestInMemoryLog:
    def test_append_and_replay_order(self):
        log = InMemoryLog()
        for i in range(5):
            assert log.append(_prepare(i)) == i
        assert [r.ts.micros for r in log.records()] == [0, 10, 20, 30, 40]
        assert len(log) == 5

    def test_sync_tracks_unsynced_records(self):
        log = InMemoryLog()
        log.append(_prepare(1))
        assert log.unsynced_count == 1
        log.sync()
        assert log.unsynced_count == 0
        assert log.fsync_count == 1

    def test_rewrite_replaces_contents(self):
        log = InMemoryLog([_prepare(i) for i in range(4)])
        log.rewrite([_prepare(9)])
        assert [r.ts.micros for r in log.records()] == [90]

    def test_remove_if(self):
        log = InMemoryLog([_prepare(i) for i in range(6)])
        removed = log.remove_if(lambda r: r.ts.micros >= 30)
        assert removed == 3
        assert len(log) == 3

    def test_tail(self):
        log = InMemoryLog([_prepare(i) for i in range(6)])
        assert [r.ts.micros for r in log.tail(2)] == [40, 50]
        assert log.tail(0) == []

    def test_append_all(self):
        log = InMemoryLog()
        log.append_all([_prepare(0), _prepare(1)])
        assert len(log) == 2


class TestFileLog:
    def test_append_and_reload(self, tmp_path):
        path = tmp_path / "wal" / "replica0.log"
        log = FileLog(path)
        records = [_prepare(i) for i in range(10)] + [CommitRecord(Timestamp(10, 0))]
        for record in records:
            log.append(record)
        log.sync()
        log.close()

        reloaded = FileLog(path)
        assert list(reloaded.records()) == records
        reloaded.close()

    def test_torn_tail_is_discarded(self, tmp_path):
        path = tmp_path / "replica.log"
        log = FileLog(path)
        log.append(_prepare(1))
        log.append(_prepare(2))
        log.sync()
        log.close()

        # Simulate a crash in the middle of the last frame.
        data = path.read_bytes()
        path.write_bytes(data[:-3])

        reloaded = FileLog(path)
        assert [r.ts.micros for r in reloaded.records()] == [10]
        # Appending after truncation keeps the log consistent.
        reloaded.append(_prepare(3))
        reloaded.sync()
        reloaded.close()
        again = FileLog(path)
        assert [r.ts.micros for r in again.records()] == [10, 30]
        again.close()

    def test_corruption_in_the_middle_is_detected(self, tmp_path):
        path = tmp_path / "replica.log"
        log = FileLog(path)
        log.append(_prepare(1))
        log.append(_prepare(2))
        log.append(_prepare(3))
        log.sync()
        log.close()

        data = bytearray(path.read_bytes())
        data[15] ^= 0xFF  # flip a payload byte of the first record
        path.write_bytes(bytes(data))
        with pytest.raises(LogCorruptionError):
            FileLog(path)

    def test_rewrite_is_atomic_and_durable(self, tmp_path):
        path = tmp_path / "replica.log"
        log = FileLog(path)
        for i in range(5):
            log.append(_prepare(i))
        log.rewrite([_prepare(7)])
        log.append(_prepare(8))
        log.close()

        reloaded = FileLog(path)
        assert [r.ts.micros for r in reloaded.records()] == [70, 80]
        reloaded.close()

    def test_sync_on_append(self, tmp_path):
        log = FileLog(tmp_path / "wal.log", sync_on_append=True)
        log.append(_prepare(1))
        assert log.fsync_count == 1
        log.close()


class TestCheckpointStores:
    def test_in_memory_round_trip(self):
        store = InMemoryCheckpointStore()
        assert store.load() is None
        checkpoint = Checkpoint(b"state", Timestamp(100, 1), epoch=2, command_count=7)
        store.save(checkpoint)
        assert store.load() == checkpoint

    def test_file_round_trip(self, tmp_path):
        store = FileCheckpointStore(tmp_path / "ckpt" / "snap.bin")
        assert store.load() is None
        checkpoint = Checkpoint(b"\x00" * 100, Timestamp(5, 0), epoch=1, command_count=3)
        store.save(checkpoint)
        assert store.load() == checkpoint
        # Overwriting keeps only the newest checkpoint.
        newer = Checkpoint(b"newer", Timestamp(9, 0), epoch=2, command_count=5)
        store.save(newer)
        assert store.load() == newer

    def test_corrupted_checkpoint_detected(self, tmp_path):
        path = tmp_path / "snap.bin"
        store = FileCheckpointStore(path)
        store.save(Checkpoint(b"state", Timestamp(1, 0)))
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(StorageError):
            store.load()

    def test_truncated_checkpoint_detected(self, tmp_path):
        path = tmp_path / "snap.bin"
        path.write_bytes(b"\x01\x02")
        with pytest.raises(StorageError):
            FileCheckpointStore(path).load()
