"""End-to-end simulation tests: every protocol replicates consistently."""

from __future__ import annotations

import pytest

from repro.kvstore.client import SimKVClient
from repro.types import seconds_to_micros

from tests.helpers import make_cluster


class TestTotalOrderAndAgreement:
    def test_concurrent_commands_from_all_replicas_execute_identically(self, any_protocol):
        cluster = make_cluster(any_protocol, sites=("CA", "VA", "IR"), leader=1, seed=11)
        cluster.start()
        # Each replica submits several commands at staggered, overlapping times.
        for round_index in range(6):
            for replica_id in cluster.spec.replica_ids:
                command = cluster.make_command(
                    f"r{replica_id}-round{round_index}".encode(), client=f"client-{replica_id}"
                )
                cluster.submit_at(1_000 * round_index + replica_id * 137, replica_id, command)
        cluster.run_for(seconds_to_micros(4.0))
        # Every command committed at its origin...
        assert len(cluster.replies) == 18
        # ...every replica executed all of them...
        for replica in cluster.replicas():
            assert replica.executed_count == 18
        # ...in exactly the same order, and with identical state machines.
        cluster.assert_consistent_order()
        histories = [tuple(r.state_machine.history) for r in cluster.replicas()]
        assert len(set(histories)) == 1

    def test_five_replicas_with_ec2_latencies(self, any_protocol):
        cluster = make_cluster(
            any_protocol, sites=("CA", "VA", "IR", "JP", "SG"), leader=0, seed=5
        )
        cluster.start()
        for i in range(10):
            origin = i % 5
            cluster.submit_at(i * 20_000, origin, cluster.make_command(bytes([i]), client=f"c{origin}"))
        cluster.run_for(seconds_to_micros(5.0))
        assert len(cluster.replies) == 10
        cluster.assert_consistent_order()

    def test_command_outputs_are_returned_to_the_right_client(self, any_protocol):
        cluster = make_cluster(any_protocol, use_kv=True, leader=0, seed=3)
        client_ca = SimKVClient(cluster, replica_id=0)
        client_ir = SimKVClient(cluster, replica_id=2)
        assert client_ca.put("shared", b"from-ca") is None
        assert client_ir.put("shared", b"from-ir") == b"from-ca"
        assert client_ca.get("shared") == b"from-ir"
        assert client_ir.delete("shared") is True
        assert client_ca.get("shared") is None

    def test_replies_only_come_from_the_origin_replica(self, any_protocol):
        cluster = make_cluster(any_protocol, leader=0, seed=7)
        cluster.start()
        cluster.submit(1, cluster.make_command(b"hello", client="only-client"))
        cluster.run_for(seconds_to_micros(2.0))
        assert len(cluster.replies) == 1
        assert cluster.replies[0].replica_id == 1


class TestDeterminism:
    def test_same_seed_gives_identical_results(self):
        def run(seed):
            cluster = make_cluster("clock-rsm", sites=("CA", "VA", "IR", "JP", "SG"), seed=seed)
            cluster.start()
            for i in range(12):
                cluster.submit_at(i * 11_000, i % 5, cluster.make_command(bytes([i]), client=f"c{i % 5}"))
            cluster.run_for(seconds_to_micros(3.0))
            return [(e.command_id, e.time) for e in cluster.replies]

        assert run(42) == run(42)
        # A different seed changes jitter-free runs only through workload
        # randomness; here submissions are fixed, so results still match.
        assert [c for c, _ in run(42)] == [c for c, _ in run(43)]


class TestClockSkew:
    @pytest.mark.parametrize("skews", [{0: 20_000}, {1: -15_000, 3: 30_000}])
    def test_clock_rsm_is_correct_under_clock_skew(self, skews):
        cluster = make_cluster(
            "clock-rsm",
            sites=("CA", "VA", "IR", "JP", "SG"),
            seed=9,
            clock_offsets=skews,
        )
        cluster.start()
        for i in range(15):
            cluster.submit_at(
                i * 9_000, i % 5, cluster.make_command(bytes([i]), client=f"c{i % 5}")
            )
        cluster.run_for(seconds_to_micros(5.0))
        assert len(cluster.replies) == 15
        cluster.assert_consistent_order()

    def test_skewed_clock_adds_wait_but_not_incorrectness(self):
        # A replica whose clock runs far ahead forces others to wait before
        # acknowledging its commands (Algorithm 1 line 8), which adds latency
        # but must not break the total order.
        ahead = {0: 200_000}  # 200 ms ahead
        cluster = make_cluster("clock-rsm", sites=("CA", "VA", "IR"), seed=2, clock_offsets=ahead)
        cluster.start()
        cluster.submit_at(1_000, 0, cluster.make_command(b"skewed", client="c0"))
        cluster.submit_at(2_000, 1, cluster.make_command(b"normal", client="c1"))
        cluster.run_for(seconds_to_micros(3.0))
        assert len(cluster.replies) == 2
        cluster.assert_consistent_order()


class TestCrashTolerance:
    def test_minority_crash_does_not_block_majority_protocols(self, any_protocol):
        if any_protocol == "clock-rsm":
            pytest.skip("Clock-RSM needs reconfiguration to make progress; covered separately")
        if any_protocol in ("mencius", "mencius-bcast"):
            pytest.skip("Mencius needs its revocation protocol (out of scope) after a crash")
        # Paxos variants: crash of a non-leader minority replica.
        cluster = make_cluster(any_protocol, sites=("CA", "VA", "IR"), leader=0, seed=4)
        cluster.start()
        cluster.crash(2)
        cluster.submit_at(10_000, 0, cluster.make_command(b"after-crash", client="c0"))
        cluster.run_for(seconds_to_micros(2.0))
        assert len(cluster.replies) == 1

    def test_crashed_replica_does_not_execute(self):
        cluster = make_cluster("paxos-bcast", leader=0, seed=4)
        cluster.start()
        cluster.crash(2)
        cluster.submit_at(10_000, 0, cluster.make_command(b"x", client="c0"))
        cluster.run_for(seconds_to_micros(2.0))
        assert cluster.replica(2).executed_count == 0
        assert cluster.replica(1).executed_count == 1
