"""Wire-level batch envelopes: framing, reassembly, and ordering properties.

The batch frame (one length prefix, a header value, then N concatenated
message values) must round-trip exactly, survive arbitrary TCP segmentation,
interoperate with single-message frames on the same stream, and — the
property batching must never violate — preserve the per-client submission
order of commands however a stream is split into batches and merged back.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import BatchingOptions
from repro.core.messages import Prepare
from repro.errors import TransportError
from repro.net.message import Envelope, EnvelopeBatch, global_registry
from repro.net.tcp import (
    TcpTransport,
    decode_frame_envelopes,
    encode_batch_frame,
    encode_frame,
    read_envelopes,
)
from repro.net.wire import decode_many, encode_many
from repro.protocols.records import CommandBatch, make_unit, unit_commands
from repro.types import Command, CommandId, Timestamp


def _prepare(seqno: int) -> Prepare:
    return Prepare(Command(CommandId("wire", seqno), b"p%d" % seqno), Timestamp(seqno + 1, 0))


def run(coro):
    return asyncio.run(coro)


class TestWireStream:
    def test_encode_decode_many_round_trips(self):
        values = [1, "two", b"three", [4, 5], {"six": 7}, None, True]
        assert decode_many(encode_many(values)) == values

    def test_decode_many_empty(self):
        assert decode_many(b"") == []


class TestBatchFrames:
    def test_batch_frame_round_trips(self):
        messages = [_prepare(i) for i in range(4)]
        batch = EnvelopeBatch.of([Envelope(0, 1, m) for m in messages])
        frame = encode_batch_frame(batch, global_registry)
        envelopes = decode_frame_envelopes(frame[4:], global_registry)
        assert [e.message for e in envelopes] == messages
        assert all(e.src == 0 and e.dst == 1 for e in envelopes)

    def test_single_frame_still_decodes(self):
        envelope = Envelope(2, 0, _prepare(9))
        frame = encode_frame(envelope, global_registry)
        decoded = decode_frame_envelopes(frame[4:], global_registry)
        assert len(decoded) == 1 and decoded[0].message == envelope.message

    def test_nested_command_batch_round_trips(self):
        unit = CommandBatch(tuple(Command(CommandId("c", i), b"x") for i in range(3)))
        message = Prepare(unit, Timestamp(5, 1))
        batch = EnvelopeBatch.of([Envelope(1, 2, message)])
        frame = encode_batch_frame(batch, global_registry)
        decoded = decode_frame_envelopes(frame[4:], global_registry)
        assert decoded[0].message == message

    def test_mixed_channel_batch_rejected(self):
        with pytest.raises(Exception):
            EnvelopeBatch.of([Envelope(0, 1, _prepare(0)), Envelope(0, 2, _prepare(1))])

    def test_miscounted_batch_frame_rejected(self):
        body = global_registry.encode_many(
            [{"src": 0, "dst": 1, "batch": 3}, _prepare(0)]
        )
        with pytest.raises(TransportError):
            decode_frame_envelopes(body, global_registry)

    def test_empty_and_malformed_bodies_rejected(self):
        with pytest.raises(TransportError):
            decode_frame_envelopes(b"", global_registry)
        with pytest.raises(TransportError):
            decode_frame_envelopes(global_registry.encode({"nope": 1}), global_registry)


class TestPartialReadReassembly:
    @pytest.mark.parametrize("chunk", [1, 3, 7, 1000])
    def test_batch_frame_split_across_segments(self, chunk):
        messages = [_prepare(i) for i in range(5)]
        frame = encode_batch_frame(
            EnvelopeBatch.of([Envelope(0, 1, m) for m in messages]), global_registry
        )

        async def scenario():
            reader = asyncio.StreamReader()
            pending = asyncio.ensure_future(read_envelopes(reader, global_registry))
            for start in range(0, len(frame), chunk):
                reader.feed_data(frame[start : start + chunk])
                await asyncio.sleep(0)
            return await pending

        envelopes = run(scenario())
        assert [e.message for e in envelopes] == messages

    def test_mixed_single_and_batch_frames_on_one_stream(self):
        singles = [Envelope(0, 1, _prepare(i)) for i in range(2)]
        batch = EnvelopeBatch.of([Envelope(0, 1, _prepare(10 + i)) for i in range(3)])
        stream = (
            encode_frame(singles[0], global_registry)
            + encode_batch_frame(batch, global_registry)
            + encode_frame(singles[1], global_registry)
        )

        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(stream)
            reader.feed_eof()
            received = []
            for _ in range(3):
                received.extend(await read_envelopes(reader, global_registry))
            return received

        received = run(scenario())
        seqnos = [e.message.command.command_id.seqno for e in received]
        assert seqnos == [0, 10, 11, 12, 1]


class TestTransportCoalescing:
    def test_one_tick_of_sends_arrives_as_one_ordered_group(self):
        async def scenario():
            base = 40610
            addresses = {0: f"127.0.0.1:{base}", 1: f"127.0.0.1:{base + 1}"}
            sender = TcpTransport(
                0, addresses[0], addresses,
                batching=BatchingOptions(max_batch=8, window_us=0),
            )
            receiver = TcpTransport(1, addresses[1], addresses)
            received: list = []
            done = asyncio.Event()
            receiver.set_handler(
                lambda env: (received.append(env.message), done.is_set() or (
                    done.set() if len(received) == 12 else None
                ))
            )
            sender.set_handler(lambda env: None)
            await sender.start()
            await receiver.start()
            try:
                for i in range(12):  # one tick: 8 + 4 after chunking
                    sender.send(Envelope(0, 1, _prepare(i)))
                await asyncio.wait_for(done.wait(), timeout=5)
            finally:
                await sender.stop()
                await receiver.stop()
            return received

        received = run(scenario())
        assert [m.command.command_id.seqno for m in received] == list(range(12))


# ---------------------------------------------------------------------------
# The ordering property
# ---------------------------------------------------------------------------

# A client's stream is a list of seqnos; the split is a list of cut sizes.
_streams = st.dictionaries(
    st.sampled_from(["alpha", "beta", "gamma"]),
    st.integers(min_value=1, max_value=12),
    min_size=1,
    max_size=3,
)


@given(streams=_streams, data=st.data())
@settings(max_examples=60, deadline=None)
def test_splitting_and_merging_batches_never_reorders_a_client(streams, data):
    """However the submission stream is cut into units (and however those
    units' frames are decoded back), each client's commands come out in
    submission order — batching must never reorder one client's pipeline."""
    # Interleave the clients' commands round-robin into one submission stream.
    submission: list[Command] = []
    progress = {client: 0 for client in streams}
    while any(progress[c] < n for c, n in streams.items()):
        for client, total in sorted(streams.items()):
            if progress[client] < total:
                submission.append(Command(CommandId(client, progress[client]), b""))
                progress[client] += 1

    # Cut the stream into arbitrary non-empty batches.
    units = []
    index = 0
    while index < len(submission):
        cut = data.draw(
            st.integers(min_value=1, max_value=len(submission) - index),
            label="cut",
        )
        units.append(make_unit(submission[index : index + cut]))
        index += cut

    # Ship every unit through the batch frame codec and merge back.
    wrapped = [Envelope(0, 1, unit) for unit in units]
    frame = encode_batch_frame(EnvelopeBatch.of(wrapped), global_registry)
    decoded = decode_frame_envelopes(frame[4:], global_registry)
    merged = [
        command
        for envelope in decoded
        for command in unit_commands(envelope.message)
    ]

    assert merged == submission  # global order preserved end to end
    for client, total in streams.items():
        seqnos = [c.command_id.seqno for c in merged if c.command_id.client == client]
        assert seqnos == list(range(total))
