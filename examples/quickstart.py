#!/usr/bin/env python3
"""Quickstart: a geo-replicated key-value store on Clock-RSM in ~30 lines.

Builds a three-replica deployment (California, Virginia, Ireland) inside the
deterministic simulator, using the paper's measured EC2 delays, and issues a
few linearizable operations from different sites.  Virtual time advances only
while the protocol works, so the printed latencies are the protocol's actual
wide-area commit latencies.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import ClusterSpec, ProtocolConfig, SimulatedCluster
from repro.analysis import ec2_latency_matrix
from repro.kvstore import KVStateMachine, SimKVClient
from repro.types import micros_to_ms


def main() -> None:
    spec = ClusterSpec.from_sites(["CA", "VA", "IR"])
    cluster = SimulatedCluster(
        spec,
        ec2_latency_matrix(spec.sites),
        protocol="clock-rsm",
        protocol_config=ProtocolConfig(),
        state_machine_factory=lambda _rid: KVStateMachine(),
    )

    client_ca = SimKVClient(cluster, replica_id=spec.by_site("CA").replica_id)
    client_ir = SimKVClient(cluster, replica_id=spec.by_site("IR").replica_id)

    def timed(label, fn, *args):
        start = cluster.now
        result = fn(*args)
        print(f"{label:<38} -> {result!r:<18} ({micros_to_ms(cluster.now - start):6.1f} ms)")
        return result

    print("Clock-RSM replicated key-value store across CA / VA / IR\n")
    timed('CA: put("greeting", "hello geo-world")', client_ca.put, "greeting", b"hello geo-world")
    timed('IR: get("greeting")', client_ir.get, "greeting")
    timed('IR: put("greeting", "hello from IR")', client_ir.put, "greeting", b"hello from IR")
    timed('CA: get("greeting")', client_ca.get, "greeting")
    timed('CA: delete("greeting")', client_ca.delete, "greeting")

    cluster.run_for(1_000_000)  # let followers apply the tail
    cluster.assert_consistent_order()
    print("\nAll three replicas executed the same command sequence — state is consistent.")


if __name__ == "__main__":
    main()
