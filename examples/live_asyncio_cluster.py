#!/usr/bin/env python3
"""Run the replicated key-value store live on asyncio.

Unlike the other examples (which use the deterministic simulator), this one
runs the very same Clock-RSM protocol objects as real asyncio services inside
one process, with the paper's EC2 one-way delays injected into message
delivery.  Operations therefore take real wall-clock time comparable to a
genuine geo-replicated deployment (scale the delays down with ``--scale`` to
keep the demo snappy).

The deployment is described declaratively: an
:class:`~repro.experiment.ExperimentSpec` names the protocol and sites, and
the experiment API's asyncio backend wires the live cluster from it — the
same spec could equally be run on the simulator.

Run with::

    python examples/live_asyncio_cluster.py [--protocol clock-rsm] [--scale 10]
"""

from __future__ import annotations

import argparse
import asyncio
import time

from repro.experiment import ExperimentSpec
from repro.experiment.async_backend import AsyncBackend
from repro.protocols.registry import protocol_capabilities
from repro.runtime.client import ReplicatedKVClient

SITES = ("CA", "VA", "IR")


async def run(protocol: str, scale: int) -> None:
    spec = ExperimentSpec(
        name="live-asyncio-cluster",
        protocol=protocol,
        sites=SITES,
        leader_site="VA" if protocol_capabilities(protocol).leader_based else None,
        latency="ec2",
    )
    cluster = AsyncBackend(time_scale=scale).build_cluster(spec)
    print(f"Starting a live {protocol} deployment across {', '.join(SITES)} "
          f"(EC2 delays scaled down {scale}x)...\n")
    async with cluster:
        ca_client = ReplicatedKVClient(server=cluster.server_at("CA"), name="app-server-CA")
        ir_client = ReplicatedKVClient(server=cluster.server_at("IR"), name="app-server-IR")

        async def timed(label, coroutine):
            start = time.perf_counter()
            result = await coroutine
            elapsed_ms = (time.perf_counter() - start) * 1_000
            print(f"{label:<40} -> {result!r:<12} ({elapsed_ms:6.1f} ms wall clock)")
            return result

        await timed('CA: put("session:42", "active")', ca_client.put("session:42", b"active"))
        await timed('IR: get("session:42")', ir_client.get("session:42"))
        await timed('IR: put("session:42", "expired")', ir_client.put("session:42", b"expired"))
        await timed('CA: get("session:42")', ca_client.get("session:42"))
        await timed('CA: delete("session:42")', ca_client.delete("session:42"))

        # A short concurrent burst from both application servers.
        start = time.perf_counter()
        await asyncio.gather(
            *(ca_client.put(f"ca-key-{i}", b"1") for i in range(5)),
            *(ir_client.put(f"ir-key-{i}", b"2") for i in range(5)),
        )
        elapsed_ms = (time.perf_counter() - start) * 1_000
        print(f"\n10 concurrent updates from CA and IR committed in {elapsed_ms:.1f} ms total.")

        await asyncio.sleep(0.05)
        snapshots = {
            site: cluster.server_at(site).replica.state_machine.applied_count for site in SITES
        }
        print(f"Commands applied per replica: {snapshots} — identical state machines everywhere.")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--protocol", default="clock-rsm",
                        choices=["clock-rsm", "paxos", "paxos-bcast", "mencius", "mencius-bcast"])
    parser.add_argument("--scale", type=int, default=10,
                        help="divide the EC2 delays by this factor (1 = real wide-area delays)")
    args = parser.parse_args()
    asyncio.run(run(args.protocol, max(1, args.scale)))


if __name__ == "__main__":
    main()
