#!/usr/bin/env python3
"""Compare replication protocols for a geo-replicated service.

The scenario from the paper's introduction: an online service keeps replicas
in five data centers (CA, VA, IR, JP, SG) so users everywhere get low-latency
access, and wants strongly consistent (linearizable) updates.  This example
expresses the deployment as a single declarative
:class:`~repro.experiment.ExperimentSpec` and runs it once per protocol
through the experiment API (:func:`~repro.experiment.run_comparison`),
printing the average and 95th-percentile commit latency observed at each
site — Figure 1 of the paper, regenerated at example scale.

The same experiment, as a data file, lives in
``examples/specs/fig1_balanced_5.toml`` and can be replayed with
``python -m repro.cli run`` on either the simulator or the asyncio backend.

Run with::

    python examples/geo_replicated_store.py [--leader VA] [--seconds 6]
"""

from __future__ import annotations

import argparse

from repro.bench.reporting import format_table
from repro.experiment import ExperimentSpec, WorkloadSpec, run_comparison

SITES = ("CA", "VA", "IR", "JP", "SG")
PROTOCOLS = ("paxos", "mencius-bcast", "paxos-bcast", "clock-rsm")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--leader", default="VA", choices=SITES,
                        help="leader site for Paxos and Paxos-bcast")
    parser.add_argument("--seconds", type=float, default=6.0,
                        help="simulated seconds of workload per protocol")
    parser.add_argument("--clients", type=int, default=10,
                        help="closed-loop clients per data center")
    args = parser.parse_args()

    warmup = min(1.0, args.seconds / 4)
    base = ExperimentSpec(
        name="geo-replicated-store",
        protocol="paxos",
        sites=SITES,
        leader_site=args.leader,
        workload=WorkloadSpec(scenario="balanced", clients_per_site=args.clients),
        duration_s=max(args.seconds - warmup, 0.5),
        warmup_s=warmup,
    )
    print(
        f"Simulating {len(PROTOCOLS)} protocols across {', '.join(SITES)} "
        f"({args.clients} clients/site, {args.seconds:.0f} s simulated, leader {args.leader})...\n"
    )
    results = run_comparison(base, PROTOCOLS)

    rows = []
    for protocol, result in results.items():
        for site in SITES:
            summary = result.sites[site].summary
            if summary is None:
                continue
            rows.append({
                "protocol": protocol,
                "site": site,
                "mean_ms": round(summary.mean_ms, 1),
                "p95_ms": round(summary.p95_ms, 1),
                "count": summary.count,
            })
    print(format_table(rows, "Per-site commit latency (ms)"))

    clock = results["clock-rsm"]
    paxos_bcast = results["paxos-bcast"]
    better = [
        site for site in SITES
        if clock.mean_ms(site) < paxos_bcast.mean_ms(site)
    ]
    print(
        f"Clock-RSM beats Paxos-bcast at {len(better)}/{len(SITES)} sites "
        f"({', '.join(better) or 'none'}); average over all sites: "
        f"{clock.average_over_sites():.1f} ms vs {paxos_bcast.average_over_sites():.1f} ms."
    )


if __name__ == "__main__":
    main()
