#!/usr/bin/env python3
"""Compare replication protocols for a geo-replicated service.

The scenario from the paper's introduction: an online service keeps replicas
in five data centers (CA, VA, IR, JP, SG) so users everywhere get low-latency
access, and wants strongly consistent (linearizable) updates.  This example
deploys the replicated key-value store under Clock-RSM, Paxos, Paxos-bcast
and Mencius-bcast with the paper's closed-loop client workload, and prints
the average and 95th-percentile commit latency observed at each site —
Figure 1 of the paper, regenerated at example scale.

Run with::

    python examples/geo_replicated_store.py [--leader VA] [--seconds 6]
"""

from __future__ import annotations

import argparse

from repro.bench.latency_experiments import (
    FIVE_SITES,
    LATENCY_PROTOCOLS,
    figure1_config,
    run_latency_comparison,
)
from repro.bench.reporting import format_latency_table
from repro.types import seconds_to_micros


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--leader", default="VA", choices=FIVE_SITES,
                        help="leader site for Paxos and Paxos-bcast")
    parser.add_argument("--seconds", type=float, default=6.0,
                        help="simulated seconds of workload per protocol")
    parser.add_argument("--clients", type=int, default=10,
                        help="closed-loop clients per data center")
    args = parser.parse_args()

    config = figure1_config(
        args.leader,
        duration=seconds_to_micros(args.seconds),
        warmup=seconds_to_micros(min(1.0, args.seconds / 4)),
        clients_per_replica=args.clients,
    )
    print(
        f"Simulating {len(LATENCY_PROTOCOLS)} protocols across {', '.join(FIVE_SITES)} "
        f"({args.clients} clients/site, {args.seconds:.0f} s simulated, leader {args.leader})...\n"
    )
    results = run_latency_comparison(config)
    print(format_latency_table(results, FIVE_SITES, "Per-site commit latency (ms)"))

    clock = results["clock-rsm"]
    paxos_bcast = results["paxos-bcast"]
    better = [
        site for site in FIVE_SITES
        if clock.mean_ms(site) < paxos_bcast.mean_ms(site)
    ]
    print(
        f"Clock-RSM beats Paxos-bcast at {len(better)}/{len(FIVE_SITES)} sites "
        f"({', '.join(better) or 'none'}); average over all sites: "
        f"{clock.average_over_sites():.1f} ms vs {paxos_bcast.average_over_sites():.1f} ms."
    )


if __name__ == "__main__":
    main()
