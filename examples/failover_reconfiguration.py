#!/usr/bin/env python3
"""Failure handling: crash a replica, reconfigure it out, reintegrate it.

Demonstrates the Clock-RSM reconfiguration protocol (Algorithm 3 of the
paper).  Clock-RSM stalls when a replica in the current configuration fails,
because committing needs a clock promise from *every* active replica; the
reconfiguration protocol removes the failed replica so the survivors can
continue, and later reintegrates it after it recovers from its on-disk log.

Run with::

    python examples/failover_reconfiguration.py
"""

from __future__ import annotations

from repro import ClusterSpec, ProtocolConfig, SimulatedCluster
from repro.analysis import ec2_latency_matrix
from repro.failure.detector import FailureDetector
from repro.kvstore import KVStateMachine, SimKVClient
from repro.sim.failures import FailureSchedule
from repro.types import micros_to_ms, ms_to_micros, seconds_to_micros


def banner(text: str) -> None:
    print(f"\n--- {text} ---")


def main() -> None:
    sites = ["CA", "VA", "IR"]
    spec = ClusterSpec.from_sites(sites)
    cluster = SimulatedCluster(
        spec,
        ec2_latency_matrix(sites),
        "clock-rsm",
        ProtocolConfig(),
        state_machine_factory=lambda _rid: KVStateMachine(),
    )
    client = SimKVClient(cluster, replica_id=spec.by_site("CA").replica_id)
    ir = spec.by_site("IR").replica_id

    banner("normal operation with three replicas")
    for account, balance in [("alice", b"100"), ("bob", b"250"), ("carol", b"75")]:
        start = cluster.now
        client.put(account, balance)
        print(f"  put {account:<6} committed in {micros_to_ms(cluster.now - start):6.1f} ms")

    banner("the Ireland replica crashes")
    cluster.crash(ir)
    print(f"  t={micros_to_ms(cluster.now):9.1f} ms  IR is down; new commands cannot commit yet")

    # A timeout-based failure detector at CA notices the silence and triggers
    # the reconfiguration protocol to drop IR from the active configuration.
    # (VA keeps sending CLOCKTIME broadcasts, so only IR goes silent.)
    detector = FailureDetector(spec.others(0), timeout=ms_to_micros(500.0), now=cluster.now)
    detection_time = cluster.now + ms_to_micros(600.0)
    cluster.env.run_until(detection_time)
    detector.heard_from(spec.by_site("VA").replica_id, cluster.now)
    suspicions = detector.check(cluster.now)
    suspected = [change.replica_id for change in suspicions] or [ir]
    print(f"  t={micros_to_ms(cluster.now):9.1f} ms  failure detector suspects replica(s) {suspected}")

    survivors = tuple(r for r in spec.replica_ids if r not in suspected)
    FailureSchedule().reconfigure(cluster.now + 1_000, initiator=0, new_config=survivors).install(cluster)
    cluster.run_for(seconds_to_micros(1.0))
    ca_replica = cluster.replica(0)
    print(
        f"  t={micros_to_ms(cluster.now):9.1f} ms  reconfigured to epoch {ca_replica.epoch}, "
        f"active config {ca_replica.active_config}"
    )

    banner("service continues with two replicas")
    for account, balance in [("alice", b"90"), ("dave", b"500")]:
        start = cluster.now
        client.put(account, balance)
        print(f"  put {account:<6} committed in {micros_to_ms(cluster.now - start):6.1f} ms")

    banner("Ireland recovers from its log and rejoins")
    FailureSchedule().recover(cluster.now + 10_000, ir, rejoin=True).install(cluster)
    cluster.run_for(seconds_to_micros(2.0))
    recovered = cluster.replica(ir)
    print(
        f"  IR is back in epoch {recovered.epoch} with config {recovered.active_config}; "
        f"it has executed {recovered.executed_count} commands after state transfer"
    )

    start = cluster.now
    client.put("eve", b"10")
    print(f"  put eve    committed in {micros_to_ms(cluster.now - start):6.1f} ms (three replicas again)")

    cluster.run_for(seconds_to_micros(1.0))
    cluster.assert_consistent_order()
    values = {
        site: cluster.replica_by_site(site).state_machine.get("alice")
        for site in sites
    }
    print(f"\nalice's balance at every site: {values} — all replicas agree.")


if __name__ == "__main__":
    main()
