#!/usr/bin/env python3
"""A sharded geo-replicated key-value store with client-side routing.

Clock-RSM orders *every* command through one replica group, so one
deployment's throughput is capped by a single total order.  This example
scales out the quickstart's store instead: four independent Clock-RSM groups
over the same three sites, a hash router keeping every key on exactly one
group, and a :class:`~repro.shard.ShardedKVClient` hiding the partitioning
behind the usual ``put``/``get``/``delete`` API.  All four groups interleave
inside one discrete-event scheduler, so the run is deterministic.

At the end, the recorded session is split per shard and every shard's
history is verified linearizable — the consistency contract sharding keeps
(what it gives up is any ordering *across* shards).

Run with::

    python examples/sharded_store.py [--shards 4] [--keys 24]
"""

from __future__ import annotations

import argparse

from repro.checker import OpHistory, check_history
from repro.experiment import ExperimentSpec, ShardingSpec, WorkloadSpec
from repro.experiment.sim_backend import SimBackend
from repro.shard import ShardRouter, ShardedKVClient
from repro.shard.check import client_order_violation, split_history
from repro.shard.deployment import shard_subspecs
from repro.sim.environment import SimulationEnvironment

SITES = ("CA", "VA", "IR")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shards", type=int, default=4,
                        help="independent protocol groups over the same sites")
    parser.add_argument("--keys", type=int, default=24,
                        help="keys written and read back through the router")
    args = parser.parse_args()

    spec = ExperimentSpec(
        name="sharded-store",
        protocol="clock-rsm",
        sites=SITES,
        workload=WorkloadSpec(app="kv"),
        duration_s=5.0,
        seed=7,
        sharding=ShardingSpec(shards=args.shards, placement="hash"),
    )

    # One scheduler, N interleaved groups: every shard cluster shares the
    # same simulation environment (exactly how ShardedDeployment wires runs).
    backend = SimBackend()
    env = SimulationEnvironment(seed=spec.seed)
    clusters = [backend.build_cluster(sub, env=env) for sub in shard_subspecs(spec)]
    router = ShardRouter.from_spec(spec.sharding)
    history = OpHistory()
    client = ShardedKVClient(clusters, router=router, history=history)

    keys = [f"user:{index:04d}" for index in range(args.keys)]
    for index, key in enumerate(keys):
        client.put(key, f"profile-{index}".encode())
    placement = router.partition(keys)
    print(f"{len(keys)} keys over {router.shards} shards "
          f"({router.placement} placement): "
          + ", ".join(f"s{shard}={len(group)}" for shard, group in sorted(placement.items())))

    snapshot = client.get_many(keys)
    assert snapshot == {k: f"profile-{i}".encode() for i, k in enumerate(keys)}
    assert client.delete(keys[0]) and client.get(keys[0]) is None
    print(f"read back {len(snapshot)} keys through per-shard linearizable reads")

    # Verify: per-shard linearizability + cross-shard client order.
    parts = split_history(history, router)
    for shard, part in sorted(parts.items()):
        part.record_apply_orders(clusters[shard].execution_orders())
        report = check_history(part)
        assert report.linearizable, f"shard {shard}: {report.violation}"
    assert client_order_violation(list(parts.values())) is None
    print("every shard linearizable; cross-shard client order ok")


if __name__ == "__main__":
    main()
