#!/usr/bin/env python3
"""Explore expected commit latency for your own replica placement.

Uses the paper's analytical model (Table II) with the measured EC2 delays
(Table III) to answer planning questions without running anything: given a
set of data centers, what commit latency should each site expect under
Clock-RSM, Paxos, Paxos-bcast and Mencius-bcast, which Paxos leader is best,
and does Clock-RSM pay off for this placement?

Run with::

    python examples/latency_explorer.py --sites CA VA IR JP SG
    python examples/latency_explorer.py --sites CA IR BR --leader CA
"""

from __future__ import annotations

import argparse

from repro.analysis.comparison import best_paxos_bcast_leader, compare_group
from repro.analysis.ec2 import EC2_SITES, ec2_latency_matrix
from repro.bench.numerical import table2_rows
from repro.bench.reporting import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sites", nargs="+", default=["CA", "VA", "IR", "JP", "SG"],
                        choices=EC2_SITES, help="data centers hosting a replica")
    parser.add_argument("--leader", default=None, choices=EC2_SITES,
                        help="Paxos leader site (default: the analytically best one)")
    args = parser.parse_args()

    sites = list(dict.fromkeys(args.sites))  # dedupe, keep order
    if len(sites) < 3:
        parser.error("pick at least three sites (a replicated system needs a majority)")

    matrix = ec2_latency_matrix(sites)
    leader = args.leader or sites[best_paxos_bcast_leader(matrix)]
    if leader not in sites:
        parser.error(f"leader {leader} is not among the selected sites {sites}")

    print(f"Replica placement: {', '.join(sites)}   (Paxos leader: {leader})\n")
    print(format_table(table2_rows(sites, leader, matrix),
                       "Expected commit latency per site (ms, Table II model)"))

    comparison = compare_group(sites)
    print(format_table(
        [
            {
                "metric": "average over all sites",
                "paxos_bcast_ms": round(comparison.paxos_bcast_average, 1),
                "clock_rsm_ms": round(comparison.clock_rsm_average, 1),
            },
            {
                "metric": "worst site",
                "paxos_bcast_ms": round(comparison.paxos_bcast_highest, 1),
                "clock_rsm_ms": round(comparison.clock_rsm_highest, 1),
            },
        ],
        f"Clock-RSM vs best-leader Paxos-bcast (leader {comparison.paxos_bcast_leader})",
    ))

    delta = comparison.paxos_bcast_average - comparison.clock_rsm_average
    if delta > 1.0:
        print(f"Clock-RSM lowers the average commit latency by {delta:.1f} ms for this placement.")
    elif delta < -1.0:
        print(f"Paxos-bcast with leader {comparison.paxos_bcast_leader} is better by "
              f"{-delta:.1f} ms on average (typical for three-replica placements).")
    else:
        print("The two protocols are essentially tied for this placement.")


if __name__ == "__main__":
    main()
