"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works in
offline environments whose setuptools lacks the PEP 660 editable-wheel path
(it falls back to the classic ``setup.py develop`` route).  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
