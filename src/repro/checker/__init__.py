"""Consistency checking: operation histories and a linearizability checker.

This package is how the repository *falsifies* (or fails to falsify) the
paper's central claim — that Clock-RSM provides the same strong consistency
as Paxos and Mencius — instead of merely measuring latency:

* :mod:`repro.checker.history` records an operation history (invoke / ok /
  fail events with per-site timing) plus the per-replica apply orders, on
  either experiment backend;
* :mod:`repro.checker.linearizability` decides whether a recorded history
  is linearizable with respect to the key-value model, using a fast
  total-order pre-pass (Clock-RSM commits form a single total order) and a
  key-partitioned Wing–Gong search as the general fallback.

The package deliberately imports nothing from :mod:`repro.experiment`; the
experiment layer depends on the checker, never the reverse.  To run a spec
and check its history in one call, use :func:`repro.experiment.check.check_spec`.
"""

from .history import HistoryRecorder, OpHistory, OpRecord
from .linearizability import CheckReport, CheckerError, check_history

__all__ = [
    "CheckReport",
    "CheckerError",
    "HistoryRecorder",
    "OpHistory",
    "OpRecord",
    "check_history",
]
