"""Operation histories: what clients invoked, what came back, and when.

An :class:`OpHistory` is the raw material of consistency checking: one
:class:`OpRecord` per client operation (its payload, the site it was
submitted at, invoke/return times in experiment microseconds, and the
observed output), plus the per-replica *apply orders* — the sequence in which
each replica's state machine executed committed commands.  Both experiment
backends emit one when a spec sets ``record_history``; the
:class:`HistoryRecorder` helper captures one from any
:class:`~repro.sim.cluster.SimulatedCluster` (workload generators and
:class:`~repro.kvstore.client.SimKVClient` sessions alike).

Histories serialize to plain dictionaries so adversarial cases can be
committed as fixtures and replayed through the checker without re-running
the experiment that produced them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Mapping, Optional

from ..types import Command, CommandId, Micros, ReplicaId

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a heavy import
    from ..sim.cluster import ReplyEvent, SimulatedCluster

#: Op lifecycle states.
PENDING = "pending"  #: invoked, fate unknown when the run ended
OK = "ok"  #: returned a committed result to the client
FAILED = "fail"  #: the client gave up (timeout); the op may still commit


@dataclass
class OpRecord:
    """One client operation: invocation, and (maybe) its response."""

    client: str
    seqno: int
    replica_id: ReplicaId
    payload: bytes
    invoked_at: Micros
    returned_at: Optional[Micros] = None
    output: Any = None
    status: str = PENDING

    @property
    def command_id(self) -> CommandId:
        return CommandId(self.client, self.seqno)

    @property
    def completed(self) -> bool:
        return self.status == OK

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "client": self.client,
            "seqno": self.seqno,
            "replica_id": self.replica_id,
            "payload": self.payload.hex(),
            "invoked_at": self.invoked_at,
            "status": self.status,
        }
        if self.returned_at is not None:
            data["returned_at"] = self.returned_at
        if self.status == OK:
            data["output"] = _encode_output(self.output)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "OpRecord":
        return cls(
            client=str(data["client"]),
            seqno=int(data["seqno"]),
            replica_id=int(data["replica_id"]),
            payload=bytes.fromhex(data["payload"]),
            invoked_at=int(data["invoked_at"]),
            returned_at=(
                int(data["returned_at"]) if data.get("returned_at") is not None else None
            ),
            output=_decode_output(data.get("output")),
            status=str(data.get("status", PENDING)),
        )


def _encode_output(output: Any) -> dict[str, Any]:
    """JSON-safe tagged encoding of a state-machine output."""
    if output is None:
        return {"t": "none"}
    if isinstance(output, bool):
        return {"t": "bool", "v": output}
    if isinstance(output, int):
        return {"t": "int", "v": output}
    if isinstance(output, (bytes, bytearray)):
        return {"t": "bytes", "v": bytes(output).hex()}
    if isinstance(output, str):
        return {"t": "str", "v": output}
    return {"t": "repr", "v": repr(output)}


def _decode_output(data: Any) -> Any:
    if data is None:
        return None
    tag = data["t"]
    if tag == "none":
        return None
    if tag == "bytes":
        return bytes.fromhex(data["v"])
    return data["v"]


class OpHistory:
    """A recorded operation history plus per-replica apply orders."""

    def __init__(self) -> None:
        self.ops: list[OpRecord] = []
        self._index: dict[CommandId, int] = {}
        #: Replica id -> the command ids its state machine applied, in order.
        self.apply_orders: dict[ReplicaId, tuple[CommandId, ...]] = {}

    # -- recording -----------------------------------------------------------

    def invoke(
        self, command_id: CommandId, replica_id: ReplicaId, payload: bytes, at: Micros
    ) -> None:
        """Record an operation leaving a client toward *replica_id*."""
        if command_id in self._index:
            return
        self._index[command_id] = len(self.ops)
        self.ops.append(
            OpRecord(
                client=command_id.client,
                seqno=command_id.seqno,
                replica_id=replica_id,
                payload=payload,
                invoked_at=at,
            )
        )

    def complete(self, command_id: CommandId, output: Any, at: Micros) -> None:
        """Record the committed response of a previously invoked operation.

        An operation the client already gave up on (:meth:`fail`) stays
        failed even if its commit reply arrives later: the client never
        observed the response, so treating it as an ``ok`` would invent a
        real-time constraint that did not exist.
        """
        index = self._index.get(command_id)
        if index is None:
            return
        record = self.ops[index]
        if record.status != PENDING:
            return
        record.returned_at = at
        record.output = output
        record.status = OK

    def fail(self, command_id: CommandId, at: Micros) -> None:
        """Record that the client gave up on an operation (it may still commit)."""
        index = self._index.get(command_id)
        if index is None:
            return
        record = self.ops[index]
        if record.status == PENDING:
            record.returned_at = at
            record.status = FAILED

    def record_apply_orders(
        self, orders: Mapping[ReplicaId, Iterable[CommandId]]
    ) -> None:
        """Record the per-replica state-machine apply orders (end of run)."""
        self.apply_orders = {rid: tuple(order) for rid, order in orders.items()}

    def add(self, record: OpRecord) -> None:
        """Append an existing record (splitting/merging histories)."""
        if record.command_id in self._index:
            return
        self._index[record.command_id] = len(self.ops)
        self.ops.append(record)

    # -- inspection ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[OpRecord]:
        return iter(self.ops)

    def get(self, command_id: CommandId) -> Optional[OpRecord]:
        index = self._index.get(command_id)
        return self.ops[index] if index is not None else None

    def count(self, status: str) -> int:
        return sum(1 for op in self.ops if op.status == status)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "ops": [op.to_dict() for op in self.ops],
            "apply_orders": {
                str(rid): [[cid.client, cid.seqno] for cid in order]
                for rid, order in self.apply_orders.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "OpHistory":
        history = cls()
        for entry in data.get("ops", []):
            record = OpRecord.from_dict(entry)
            history._index[record.command_id] = len(history.ops)
            history.ops.append(record)
        history.apply_orders = {
            int(rid): tuple(CommandId(str(c), int(s)) for c, s in order)
            for rid, order in data.get("apply_orders", {}).items()
        }
        return history


class HistoryRecorder:
    """Captures an :class:`OpHistory` from a simulated cluster.

    Hooks the cluster's submit and reply paths, so every client command —
    whether issued by the workload generators or a
    :class:`~repro.kvstore.client.SimKVClient` — is recorded with its invoke
    and return times.  Call :meth:`finish` once the run is over to snapshot
    the per-replica apply orders and obtain the final history.
    """

    def __init__(self, cluster: "SimulatedCluster") -> None:
        self._cluster = cluster
        self.history = OpHistory()
        cluster.on_submit(self._on_submit)
        cluster.on_reply(self._on_reply)

    def _on_submit(self, replica_id: ReplicaId, command: Command, at: Micros) -> None:
        self.history.invoke(command.command_id, replica_id, command.payload, at)

    def _on_reply(self, event: "ReplyEvent") -> None:
        self.history.complete(event.command_id, event.output, event.time)

    def finish(self) -> OpHistory:
        """Snapshot apply orders from the cluster and return the history."""
        self.history.record_apply_orders(self._cluster.execution_orders())
        return self.history


__all__ = [
    "PENDING",
    "OK",
    "FAILED",
    "OpRecord",
    "OpHistory",
    "HistoryRecorder",
]
