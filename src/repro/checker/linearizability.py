"""Linearizability checking for recorded key-value histories.

Two cooperating strategies decide whether an :class:`~repro.checker.history.OpHistory`
is linearizable with respect to the key-value model:

1. **Total-order pre-pass.**  Clock-RSM (and every other protocol in the
   registry) commits commands in a single total order, so a recorded history
   normally carries per-replica apply orders.  The pre-pass verifies that
   those orders are prefix-consistent, that every acknowledged operation
   appears in the order, that replaying the order through a model key-value
   store reproduces every observed output, and that the order respects
   real-time precedence (an operation that returned before another was
   invoked must come first).  When all four hold, the apply order itself is a
   linearization witness and the check is O(n).

2. **Wing–Gong search.**  Without apply orders — or when the pre-pass finds
   an output or real-time discrepancy — the checker falls back to the
   classic Wing & Gong (1993) search, made tractable by linearizability's
   locality: each key is an independent object, so the history is partitioned
   per key and each partition searched separately with memoization on
   (remaining operations, key value).  Operations the client gave up on
   (timeouts, run cut-offs) may or may not have taken effect; the search
   accounts for both possibilities.

Divergent apply orders are reported as a violation without a fallback: two
state machines that executed different command sequences have already broken
the protocol's total-order contract, whatever the clients observed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..errors import CodecError, ReproError
from ..kvstore.commands import DELETE, GET, PUT, KvOp, decode_op
from ..types import CommandId
from .history import OK, OpHistory, OpRecord

#: Sentinel "never returned" time, larger than any microsecond reading.
_NEVER = float("inf")


class CheckerError(ReproError):
    """The checker was given a history it cannot decide (not a violation)."""


@dataclass
class CheckReport:
    """The verdict of one history check."""

    linearizable: bool
    method: str
    ops: int
    completed: int
    pending: int
    failed: int
    keys: int
    violation: Optional[str] = None

    @property
    def verdict(self) -> str:
        if self.linearizable:
            return "linearizable"
        return f"NOT linearizable: {self.violation}"

    def describe(self) -> str:
        return (
            f"{self.verdict} ({self.ops} ops: {self.completed} ok, "
            f"{self.pending} pending, {self.failed} timed out; "
            f"{self.keys} keys, method {self.method})"
        )

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "linearizable": self.linearizable,
            "method": self.method,
            "ops": self.ops,
            "completed": self.completed,
            "pending": self.pending,
            "failed": self.failed,
            "keys": self.keys,
        }
        if self.violation is not None:
            data["violation"] = self.violation
        return data


# ---------------------------------------------------------------------------
# KV model
# ---------------------------------------------------------------------------


def _apply_model(value: Optional[bytes], op: KvOp) -> tuple[Optional[bytes], Any]:
    """Apply *op* to a single key's value; return (new value, output)."""
    if op.op == PUT:
        return op.value if op.value is not None else b"", value
    if op.op == GET:
        return value, value
    if op.op == DELETE:
        return None, value is not None
    raise AssertionError(f"unreachable operation {op.op!r}")


def _decode_ops(history: OpHistory) -> Optional[dict[CommandId, KvOp]]:
    """Decode every payload as a KV operation, or ``None`` if any is opaque."""
    decoded: dict[CommandId, KvOp] = {}
    for record in history.ops:
        try:
            decoded[record.command_id] = decode_op(record.payload)
        except CodecError:
            return None
    return decoded


# ---------------------------------------------------------------------------
# Total-order pre-pass
# ---------------------------------------------------------------------------


def _reference_order(history: OpHistory) -> tuple[Optional[tuple[CommandId, ...]], Optional[str]]:
    """The longest apply order, after checking prefix consistency."""
    orders = list(history.apply_orders.values())
    if not orders:
        return None, None
    reference = max(orders, key=len)
    for rid, order in history.apply_orders.items():
        if tuple(order) != tuple(reference[: len(order)]):
            return None, (
                f"divergent apply orders: replica {rid} executed "
                f"{[str(c) for c in order[:5]]}... which is not a prefix of the "
                f"longest order {[str(c) for c in reference[:5]]}..."
            )
    return reference, None


def _integrity_pass(
    history: OpHistory, reference: tuple[CommandId, ...]
) -> Optional[str]:
    """Hard total-order integrity checks (no fallback can excuse these).

    An acknowledged operation that no replica ever executed means its reply
    was fabricated — a broken state machine, whatever the clients could
    observe — so it is reported as a violation outright, like divergent
    apply orders.
    """
    positions = set(reference)
    for record in history.ops:
        if record.status == OK and record.command_id not in positions:
            return (
                f"operation {record.command_id} returned ok but never appears "
                "in any replica's apply order"
            )
    return None


def _total_order_pass(
    history: OpHistory,
    reference: tuple[CommandId, ...],
    decoded: Optional[dict[CommandId, KvOp]],
) -> Optional[str]:
    """Validate the apply order as a linearization witness.

    Returns ``None`` on success or a human-readable discrepancy.  With
    *decoded* set, outputs are checked against the KV model; opaque histories
    (append-log / null apps) only get the order and real-time checks.

    Output checking also stands down when the apply order contains commands
    the history never recorded (a partial recording, e.g. one
    :class:`~repro.kvstore.client.SimKVClient` session among other traffic):
    those foreign commands mutate state the model cannot reproduce, so
    comparing outputs against it would reject correct histories.
    """
    if decoded is not None and all(history.get(cid) is not None for cid in reference):
        values: dict[str, bytes] = {}
        for cid in reference:
            record = history.get(cid)
            op = decoded[cid]
            expected: Any
            if op.op == PUT:
                expected = values.get(op.key)
                values[op.key] = op.value if op.value is not None else b""
            elif op.op == GET:
                expected = values.get(op.key)
            else:
                expected = values.pop(op.key, None) is not None
            if record.status == OK and record.output != expected:
                return (
                    f"output mismatch at {cid} ({op.op} {op.key!r}): observed "
                    f"{record.output!r}, the apply order implies {expected!r}"
                )

    # Real-time precedence: no operation may be ordered after one that was
    # invoked only after it had already returned.  Scanning the order from
    # the end with the minimum return time of the suffix makes this O(n).
    sequence = [history.get(cid) for cid in reference]
    min_suffix_return = _NEVER
    for record in reversed(sequence):
        if record is None:
            continue
        if min_suffix_return < record.invoked_at:
            return (
                f"real-time order violated around {record.command_id}: an "
                "operation ordered later returned before this one was invoked"
            )
        if record.status == OK and record.returned_at is not None:
            min_suffix_return = min(min_suffix_return, record.returned_at)
    return None


# ---------------------------------------------------------------------------
# Wing–Gong search (per key)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class _Entry:
    """One operation prepared for the per-key search."""

    invoked: float
    returned: float  # _NEVER while pending
    op: KvOp
    output: Any
    completed: bool
    command_id: CommandId


def _search_key(entries: list[_Entry], max_states: int = 2_000_000) -> bool:
    """Wing–Gong search over one key's operations.

    An operation is a *candidate* for the next linearization point when every
    other remaining operation was still outstanding at its invocation (no
    remaining op returned before it was invoked).  Completed candidates must
    reproduce their observed output; operations the client never saw return
    may either take effect (linearized like any other) or be left behind —
    leftovers are harmless because only completed operations must be placed.
    """
    indexed = tuple(range(len(entries)))
    seen: set[tuple[frozenset[int], Optional[bytes]]] = set()

    def recurse(remaining: frozenset[int], value: Optional[bytes]) -> bool:
        if not any(entries[i].completed for i in remaining):
            return True
        state = (remaining, value)
        if state in seen:
            return False
        if len(seen) >= max_states:
            raise CheckerError(
                f"linearizability search exceeded {max_states} states for one key"
            )
        seen.add(state)
        for i in sorted(remaining):
            entry = entries[i]
            if any(
                entries[j].returned < entry.invoked for j in remaining if j != i
            ):
                continue
            new_value, output = _apply_model(value, entry.op)
            if entry.completed and output != entry.output:
                continue
            if recurse(remaining - {i}, new_value):
                return True
        return False

    return recurse(frozenset(indexed), None)


def _wing_gong_pass(
    history: OpHistory, decoded: dict[CommandId, KvOp]
) -> tuple[bool, Optional[str], int]:
    """Per-key Wing–Gong search; returns (ok, violation, key count)."""
    by_key: dict[str, list[_Entry]] = {}
    for record in history.ops:
        op = decoded[record.command_id]
        completed = record.status == OK
        by_key.setdefault(op.key, []).append(
            _Entry(
                invoked=record.invoked_at,
                returned=record.returned_at if completed and record.returned_at is not None else _NEVER,
                op=op,
                output=record.output,
                completed=completed,
                command_id=record.command_id,
            )
        )
    for key, entries in sorted(by_key.items()):
        entries.sort(key=lambda e: (e.invoked, e.returned))
        if not _search_key(entries):
            return False, (
                f"no linearization exists for key {key!r} "
                f"({len(entries)} operations)"
            ), len(by_key)
    return True, None, len(by_key)


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def check_history(history: OpHistory) -> CheckReport:
    """Decide whether *history* is linearizable under the KV model.

    The history should record *all* client traffic of the run (the
    experiment backends do).  A partial recording alongside unrecorded
    traffic is still checked for total-order integrity and real-time
    precedence via its apply orders, but output validation stands down —
    and without apply orders, the Wing–Gong search may reject a correct
    partial history whose reads observed unrecorded writes.
    """
    decoded = _decode_ops(history)
    counts = dict(
        ops=len(history),
        completed=history.count(OK),
        pending=history.count("pending"),
        failed=history.count("fail"),
    )
    keys = len({op.key for op in decoded.values()}) if decoded is not None else 0

    reference, divergence = _reference_order(history)
    if divergence is not None:
        return CheckReport(
            linearizable=False, method="total-order", keys=keys,
            violation=divergence, **counts,
        )

    if reference is not None:
        integrity = _integrity_pass(history, reference)
        if integrity is not None:
            return CheckReport(
                linearizable=False, method="total-order", keys=keys,
                violation=integrity, **counts,
            )
        discrepancy = _total_order_pass(history, reference, decoded)
        if discrepancy is None:
            return CheckReport(
                linearizable=True, method="total-order", keys=keys, **counts
            )
        if decoded is None:
            # Opaque history: no model to search against, the order evidence
            # is all there is.
            return CheckReport(
                linearizable=False, method="total-order", keys=keys,
                violation=discrepancy, **counts,
            )
        ok, violation, keys = _wing_gong_pass(history, decoded)
        return CheckReport(
            linearizable=ok, method="total-order+wing-gong", keys=keys,
            violation=violation if not ok else None, **counts,
        )

    if decoded is None:
        raise CheckerError(
            "history has neither decodable KV operations nor apply orders; "
            "nothing to check"
        )
    ok, violation, keys = _wing_gong_pass(history, decoded)
    return CheckReport(
        linearizable=ok, method="wing-gong", keys=keys,
        violation=violation if not ok else None, **counts,
    )


__all__ = ["CheckReport", "CheckerError", "check_history"]
