"""A timeout-based failure detector.

The paper assumes an eventually-accurate failure detector ("failure detectors
may provide wrong results, but eventually all faulty processes are suspected
and at least one non-faulty process is not suspected") implemented in
practice with timeouts.  :class:`FailureDetector` records when a replica was
last heard from and suspects replicas that have been silent for longer than
the configured timeout; the surrounding runtime decides what to do with a
suspicion (typically trigger the Clock-RSM reconfiguration protocol).

The detector is sans-IO like the protocols: callers feed it heartbeats (any
received message counts) and poll it with the current time.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable

from ..types import Micros, ReplicaId


class ReplicaStatus(Enum):
    """Detector verdict for one replica."""

    ALIVE = "alive"
    SUSPECTED = "suspected"


@dataclass(frozen=True, slots=True)
class SuspicionChange:
    """A replica transitioned between alive and suspected."""

    replica_id: ReplicaId
    status: ReplicaStatus
    at: Micros


class FailureDetector:
    """Suspects replicas that have been silent for longer than *timeout*.

    Args:
        monitored: The replicas to monitor (typically the spec minus self).
        timeout: Silence threshold in microseconds.
        now: The current time; subsequent calls pass the current time too,
            which keeps the detector independent of any particular clock.
    """

    def __init__(self, monitored: Iterable[ReplicaId], timeout: Micros, now: Micros = 0) -> None:
        if timeout <= 0:
            raise ValueError("failure detector timeout must be positive")
        self.timeout = timeout
        self._last_heard: dict[ReplicaId, Micros] = {r: now for r in monitored}
        self._suspected: set[ReplicaId] = set()

    # -- inputs ------------------------------------------------------------------

    def heard_from(self, replica_id: ReplicaId, now: Micros) -> None:
        """Record that a message (or heartbeat) arrived from *replica_id*."""
        if replica_id in self._last_heard:
            self._last_heard[replica_id] = max(self._last_heard[replica_id], now)

    def monitor(self, replica_id: ReplicaId, now: Micros) -> None:
        """Start monitoring a replica (e.g. after it rejoins)."""
        self._last_heard.setdefault(replica_id, now)
        self._suspected.discard(replica_id)

    def forget(self, replica_id: ReplicaId) -> None:
        """Stop monitoring a replica (e.g. removed from the configuration)."""
        self._last_heard.pop(replica_id, None)
        self._suspected.discard(replica_id)

    # -- queries -------------------------------------------------------------------

    def check(self, now: Micros) -> list[SuspicionChange]:
        """Re-evaluate every monitored replica; returns status transitions."""
        changes: list[SuspicionChange] = []
        for replica_id, last in self._last_heard.items():
            silent_for = now - last
            if silent_for > self.timeout and replica_id not in self._suspected:
                self._suspected.add(replica_id)
                changes.append(SuspicionChange(replica_id, ReplicaStatus.SUSPECTED, now))
            elif silent_for <= self.timeout and replica_id in self._suspected:
                self._suspected.discard(replica_id)
                changes.append(SuspicionChange(replica_id, ReplicaStatus.ALIVE, now))
        return changes

    def is_suspected(self, replica_id: ReplicaId) -> bool:
        return replica_id in self._suspected

    def suspected(self) -> frozenset[ReplicaId]:
        return frozenset(self._suspected)

    def alive(self) -> frozenset[ReplicaId]:
        return frozenset(set(self._last_heard) - self._suspected)

    def status(self, replica_id: ReplicaId) -> ReplicaStatus:
        return (
            ReplicaStatus.SUSPECTED
            if replica_id in self._suspected
            else ReplicaStatus.ALIVE
        )


__all__ = ["FailureDetector", "ReplicaStatus", "SuspicionChange"]
