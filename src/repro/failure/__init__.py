"""Failure detection."""

from .detector import FailureDetector, ReplicaStatus

__all__ = ["FailureDetector", "ReplicaStatus"]
