"""Exception hierarchy for the Clock-RSM reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every library-specific error."""


class ConfigurationError(ReproError):
    """A cluster or protocol configuration is invalid."""


class ProtocolError(ReproError):
    """A protocol invariant was violated (indicates a bug or corruption)."""


class StaleEpochError(ProtocolError):
    """A message from an older epoch was received after a reconfiguration."""

    def __init__(self, message_epoch: int, current_epoch: int) -> None:
        super().__init__(
            f"message epoch {message_epoch} is older than current epoch {current_epoch}"
        )
        self.message_epoch = message_epoch
        self.current_epoch = current_epoch


class NotLeaderError(ProtocolError):
    """A leader-only operation was attempted on a non-leader replica."""


class StorageError(ReproError):
    """Stable storage (command log / checkpoint) failure."""


class LogCorruptionError(StorageError):
    """The on-disk command log failed integrity checks during replay."""


class TransportError(ReproError):
    """A transport could not deliver or encode a message."""


class CodecError(TransportError):
    """Wire-format encoding or decoding failed."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly."""


class ClockError(ReproError):
    """A clock produced a non-monotonic or otherwise invalid reading."""


class ReconfigurationError(ReproError):
    """Reconfiguration could not complete (e.g. no majority reachable)."""


class UnavailableError(ReproError):
    """The requested operation cannot currently be served (no quorum)."""


class LaunchError(ReproError):
    """A multi-process deployment failed (worker crash, handshake timeout).

    Raised by :mod:`repro.launch` instead of hanging: a worker that dies or
    stalls during any phase of the deployment surfaces here, after the
    supervisor has torn every remaining process down.
    """


class ClientError(ReproError):
    """Client-side request failure (timeout, redirected, cancelled)."""


class RequestTimeout(ClientError):
    """A client request did not commit within its deadline."""


__all__ = [
    "ReproError",
    "ConfigurationError",
    "ProtocolError",
    "StaleEpochError",
    "NotLeaderError",
    "StorageError",
    "LogCorruptionError",
    "TransportError",
    "CodecError",
    "SimulationError",
    "ClockError",
    "ReconfigurationError",
    "UnavailableError",
    "LaunchError",
    "ClientError",
    "RequestTimeout",
]
