"""Networking substrate: wire format, latency model, and transports.

The replication protocols themselves are sans-IO (see
:mod:`repro.protocols.base`); this package supplies everything needed to move
their messages between replicas:

* :mod:`repro.net.wire` — a compact self-describing binary codec used by the
  TCP transport and the file-backed command log (the paper uses Protocol
  Buffers; any compact codec preserves the evaluated behaviour).
* :mod:`repro.net.message` — message registry and the :class:`Envelope`
  wrapper that transports exchange.
* :mod:`repro.net.latency` — one-way latency matrices, including helpers to
  build them from round-trip measurements such as the paper's Table III.
* :mod:`repro.net.transport` — the transport interface plus an in-memory
  implementation; :mod:`repro.net.tcp` adds an asyncio TCP transport.
"""

from .latency import LatencyMatrix
from .message import Envelope, MessageRegistry, global_registry, register_message
from .transport import InMemoryNetwork, InMemoryTransport, Transport
from .wire import WireDecoder, WireEncoder, decode, encode

__all__ = [
    "LatencyMatrix",
    "Envelope",
    "MessageRegistry",
    "global_registry",
    "register_message",
    "Transport",
    "InMemoryNetwork",
    "InMemoryTransport",
    "WireEncoder",
    "WireDecoder",
    "encode",
    "decode",
]
