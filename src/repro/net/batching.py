"""One accumulate-and-flush primitive for every asyncio batching site.

Three places coalesce work on the event loop — the replica driver (commands
into :class:`~repro.protocols.records.CommandBatch` units), the TCP
transport (per-peer envelopes into multi-message frames), and the KV client
(request frames into one write).  They all share the same semantics, so they
share this accumulator: flush when ``max_batch`` items are queued or when
the window expires, where ``window_us = 0`` means "flush whatever the
current event-loop tick queues, never wait".

A size-triggered flush cancels the armed window timer (and vice versa), so
a flush can never fire into the *next* accumulation — the queue length at
flush time is always ≤ ``max_batch``, which callers may rely on.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Generic, List, Optional, TypeVar, Union

from ..config import BatchingOptions
from ..types import micros_to_seconds

T = TypeVar("T")

_Handle = Union[asyncio.Handle, asyncio.TimerHandle]


class BatchAccumulator(Generic[T]):
    """Accumulates items and hands them to *flush* in bounded groups."""

    def __init__(
        self, options: BatchingOptions, flush: Callable[[List[T]], None]
    ) -> None:
        self._options = options
        self._flush_cb = flush
        self._items: list[T] = []
        self._handle: Optional[_Handle] = None

    def __len__(self) -> int:
        return len(self._items)

    def add(self, item: T) -> None:
        """Queue *item*; flushes immediately once ``max_batch`` is reached."""
        self._items.append(item)
        if len(self._items) >= self._options.max_batch:
            self.flush()
        elif self._handle is None:
            loop = asyncio.get_running_loop()
            if self._options.window_us == 0:
                self._handle = loop.call_soon(self.flush)
            else:
                self._handle = loop.call_later(
                    micros_to_seconds(self._options.window_us), self.flush
                )

    def flush(self) -> None:
        """Deliver everything queued (≤ max_batch items) to the callback."""
        self._cancel_timer()
        if not self._items:
            return
        items, self._items = self._items, []
        self._flush_cb(items)

    def clear(self) -> None:
        """Drop queued items and disarm the timer (owner is shutting down)."""
        self._cancel_timer()
        self._items.clear()

    def _cancel_timer(self) -> None:
        if self._handle is not None:
            # Cancelling the handle currently running this flush is a no-op.
            self._handle.cancel()
            self._handle = None


__all__ = ["BatchAccumulator"]
