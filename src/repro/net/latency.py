"""One-way latency matrices between replica sites.

The paper measures round-trip times between Amazon EC2 data centers
(Table III) and assumes symmetric one-way latencies of half the RTT.  A
:class:`LatencyMatrix` stores one-way delays in microseconds, indexed either
by replica id or by site name, and feeds both the discrete-event simulator
(:mod:`repro.sim.network`) and the analytical model
(:mod:`repro.analysis.latency_model`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..config import ClusterSpec
from ..errors import ConfigurationError
from ..types import Micros, ReplicaId, ms_to_micros


@dataclass(frozen=True)
class LatencyMatrix:
    """Symmetric one-way latency matrix between a fixed, ordered set of sites.

    Attributes:
        sites: Site names, in replica-id order (index ``i`` is replica ``i``).
        one_way: ``one_way[i][j]`` is the one-way delay from site ``i`` to
            site ``j`` in microseconds.  The diagonal is the local
            (intra-data-center) delay; the paper measures ~0.6 ms RTT inside
            a data center but ignores it analytically, so it defaults to 0.
    """

    sites: tuple[str, ...]
    one_way: tuple[tuple[Micros, ...], ...]

    def __post_init__(self) -> None:
        n = len(self.sites)
        if len(self.one_way) != n or any(len(row) != n for row in self.one_way):
            raise ConfigurationError("latency matrix shape does not match site count")
        for i in range(n):
            for j in range(n):
                if self.one_way[i][j] < 0:
                    raise ConfigurationError("latencies must be non-negative")
                if self.one_way[i][j] != self.one_way[j][i]:
                    raise ConfigurationError(
                        f"latency matrix must be symmetric: "
                        f"{self.sites[i]}->{self.sites[j]} differs from the reverse"
                    )

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_rtt_ms(
        cls,
        sites: Sequence[str],
        rtt_ms: Mapping[tuple[str, str], float],
        local_rtt_ms: float = 0.0,
    ) -> "LatencyMatrix":
        """Build a matrix from pairwise RTTs in milliseconds.

        ``rtt_ms`` needs each unordered pair exactly once (either direction).
        One-way delay is RTT / 2, as the paper assumes symmetric links.
        """
        n = len(sites)
        index = {site: i for i, site in enumerate(sites)}
        if len(index) != n:
            raise ConfigurationError(f"duplicate sites: {sites}")
        grid: list[list[Micros]] = [[0] * n for _ in range(n)]
        local_one_way = ms_to_micros(local_rtt_ms / 2.0)
        for i in range(n):
            grid[i][i] = local_one_way
        for (a, b), rtt in rtt_ms.items():
            if a not in index or b not in index:
                continue
            i, j = index[a], index[b]
            one_way = ms_to_micros(rtt / 2.0)
            grid[i][j] = one_way
            grid[j][i] = one_way
        for i in range(n):
            for j in range(n):
                if i != j and grid[i][j] == 0:
                    raise ConfigurationError(
                        f"missing RTT for pair ({sites[i]}, {sites[j]})"
                    )
        return cls(tuple(sites), tuple(tuple(row) for row in grid))

    @classmethod
    def uniform(cls, sites: Sequence[str], one_way: Micros, local: Micros = 0) -> "LatencyMatrix":
        """A matrix where every inter-site delay equals *one_way*."""
        n = len(sites)
        grid = tuple(
            tuple(local if i == j else one_way for j in range(n)) for i in range(n)
        )
        return cls(tuple(sites), grid)

    # -- accessors ---------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self.sites)

    def site_index(self, site: str) -> int:
        try:
            return self.sites.index(site)
        except ValueError:
            raise ConfigurationError(f"unknown site {site!r}") from None

    def delay(self, src: ReplicaId, dst: ReplicaId) -> Micros:
        """One-way delay between two replicas, by replica id."""
        return self.one_way[src][dst]

    def delay_between_sites(self, a: str, b: str) -> Micros:
        return self.one_way[self.site_index(a)][self.site_index(b)]

    def rtt(self, src: ReplicaId, dst: ReplicaId) -> Micros:
        return 2 * self.delay(src, dst)

    def row(self, src: ReplicaId) -> tuple[Micros, ...]:
        """One-way delays from *src* to every replica (including itself)."""
        return self.one_way[src]

    def restricted_to(self, sites: Sequence[str]) -> "LatencyMatrix":
        """A sub-matrix covering only *sites*, in the given order."""
        indices = [self.site_index(s) for s in sites]
        grid = tuple(
            tuple(self.one_way[i][j] for j in indices) for i in indices
        )
        return LatencyMatrix(tuple(sites), grid)

    def for_spec(self, spec: ClusterSpec) -> "LatencyMatrix":
        """Reorder/restrict the matrix to match a cluster spec's sites."""
        return self.restricted_to(spec.sites)

    def max_delay_from(self, src: ReplicaId) -> Micros:
        return max(self.one_way[src])

    def median_delay_from(self, src: ReplicaId) -> Micros:
        """The majority-forming delay from *src*: the ⌊N/2⌋-th smallest delay
        in the row including the local (self) delay.

        With N replicas this is the delay to the farthest member of the
        closest majority that includes *src* itself, which is exactly the
        quantity written ``median({d(ri, rk) | ∀rk ∈ R})`` in the paper.
        """
        row = sorted(self.one_way[src])
        return row[len(row) // 2]


__all__ = ["LatencyMatrix"]
