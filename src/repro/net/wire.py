"""A compact, self-describing binary codec.

The paper serializes messages with Google Protocol Buffers.  The evaluated
quantities (message counts and wide-area latencies) do not depend on the wire
format, so this reproduction ships a small dependency-free codec instead.  It
supports the primitive types the protocols need plus *registered* dataclass
types (see :mod:`repro.net.message`), and is used by the asyncio TCP
transport and the file-backed command log.

Wire grammar (all integers big-endian)::

    value   := NONE | TRUE | FALSE | INT | BIGINT | FLOAT | STR | BYTES
             | LIST | MAP | OBJ
    NONE    := 'N'
    TRUE    := 'T'
    FALSE   := 'F'
    INT     := 'I' int64
    BIGINT  := 'J' u32 length, two's-complement bytes
    FLOAT   := 'D' float64
    STR     := 'S' u32 length, utf-8 bytes
    BYTES   := 'B' u32 length, raw bytes
    LIST    := 'L' u32 count, value*
    MAP     := 'M' u32 count, (value value)*
    OBJ     := 'O' STR(type-name) MAP(field-name -> value)

Implementation notes (the wire hot path):

* Both directions are **iterative** (an explicit work stack), so nesting
  depth is a checked limit (:data:`MAX_DEPTH`) raising
  :class:`~repro.errors.CodecError` — never a Python ``RecursionError`` a
  malicious peer could trigger remotely.
* The encoder appends into one reusable ``bytearray`` using preallocated
  :class:`struct.Struct` ``pack_into`` calls for the fixed-width tags — no
  per-value ``bytes`` temporaries joined at the end.  ``encode_into`` /
  ``encode_many_into`` expose the same path to callers (the TCP transport)
  that want to fuse their own framing header into the same buffer.
* The decoder walks a ``memoryview`` of the input and only materializes the
  STR/BYTES leaves; fixed-width fields are ``unpack_from`` reads and BIGINT
  uses a zero-copy subview.  Declared lengths are validated against the
  remaining buffer *before* any allocation, so a corrupted length field
  fails fast instead of attempting a giant allocation.
* Every malformed-input failure mode — truncation, unknown tags, lengths
  beyond the buffer or beyond u32, unhashable MAP keys, invalid UTF-8, and
  object hooks choking on bad fields — surfaces as ``CodecError``, the
  documented contract that lets transport readers treat any decode failure
  as a protocol error instead of dying on a stray ``TypeError``.
"""

from __future__ import annotations

import dataclasses
import struct
from typing import Any, Callable, Optional

from ..errors import CodecError

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1
_U32_MAX = 2**32 - 1

#: Maximum container nesting the codec will encode or decode.  Deeper
#: payloads raise :class:`~repro.errors.CodecError`; protocol messages are a
#: handful of levels deep, so the limit only ever triggers on hostile or
#: corrupted input (each OBJ costs two levels: the OBJ and its field MAP).
MAX_DEPTH = 64

_U32 = struct.Struct(">I")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")

# Fused tag+payload packers for the fixed-width wire forms: one pack_into
# writes both the tag byte and the big-endian payload, no temporaries.
_TAG_I64 = struct.Struct(">Bq")   # 'I' int64
_TAG_F64 = struct.Struct(">Bd")   # 'D' float64
_TAG_U32 = struct.Struct(">BI")   # any tag followed by a u32 length/count

_PAD9 = bytes(_TAG_I64.size)
_PAD5 = bytes(_TAG_U32.size)

_TAG_N = 0x4E  # 'N'
_TAG_T = 0x54  # 'T'
_TAG_F = 0x46  # 'F'
_TAG_I = 0x49  # 'I'
_TAG_J = 0x4A  # 'J'
_TAG_D = 0x44  # 'D'
_TAG_S = 0x53  # 'S'
_TAG_B = 0x42  # 'B'
_TAG_L = 0x4C  # 'L'
_TAG_M = 0x4D  # 'M'
_TAG_O = 0x4F  # 'O'


class WireEncoder:
    """Encodes Python values into the wire format.

    Args:
        object_hook: Callback invoked for values that are not primitives; it
            must return a ``(type_name, field_dict)`` pair or raise
            :class:`~repro.errors.CodecError`.  The message registry supplies
            this hook for registered dataclasses.
        max_depth: Container nesting limit (:data:`MAX_DEPTH` by default);
            deeper values raise :class:`~repro.errors.CodecError`.
    """

    def __init__(
        self,
        object_hook: Optional[Callable[[Any], tuple[str, dict[str, Any]]]] = None,
        max_depth: int = MAX_DEPTH,
    ) -> None:
        self._object_hook = object_hook
        self._max_depth = max_depth
        self._buf = bytearray()

    def encode(self, value: Any) -> bytes:
        """Encode *value* and return the wire bytes."""
        buf = self._buf
        del buf[:]  # reuse the allocation across frames
        self._write(buf, value)
        return bytes(buf)

    def encode_many(self, values: Any) -> bytes:
        """Encode an iterable of values as a concatenated stream.

        The stream has no outer container: each value is self-delimiting, so
        decoding with :meth:`WireDecoder.decode_many` recovers the sequence.
        Multi-message envelopes (one TCP frame carrying a whole batch) are
        framed this way — one length prefix for the frame, zero per-message
        framing overhead beyond the values themselves.
        """
        buf = self._buf
        del buf[:]
        write = self._write
        for value in values:
            write(buf, value)
        return bytes(buf)

    def encode_into(self, buf: bytearray, value: Any) -> int:
        """Append the encoding of *value* to *buf*; returns bytes written.

        This is the frame-fusion entry point: a transport can reserve its
        length-prefix bytes in *buf*, encode the body straight after them,
        and patch the prefix — header and body leave as one buffer, with no
        intermediate ``bytes`` copy.
        """
        start = len(buf)
        self._write(buf, value)
        return len(buf) - start

    def encode_many_into(self, buf: bytearray, values: Any) -> int:
        """Append a concatenated value stream to *buf*; returns bytes written."""
        start = len(buf)
        write = self._write
        for value in values:
            write(buf, value)
        return len(buf) - start

    # -- writer ------------------------------------------------------------

    def _write(self, buf: bytearray, value: Any) -> None:
        # Iterative depth-first encode: the stack holds (value, depth)
        # pairs still to be emitted; container children are pushed in
        # reverse so they pop in document order.
        max_depth = self._max_depth
        stack: list[tuple[Any, int]] = [(value, 0)]
        pop = stack.pop
        push = stack.append
        while stack:
            value, depth = pop()
            if value is None:
                buf.append(_TAG_N)
            elif value is True:
                buf.append(_TAG_T)
            elif value is False:
                buf.append(_TAG_F)
            elif isinstance(value, int):
                if _INT64_MIN <= value <= _INT64_MAX:
                    pos = len(buf)
                    buf += _PAD9
                    _TAG_I64.pack_into(buf, pos, _TAG_I, value)
                else:
                    raw = value.to_bytes(
                        (value.bit_length() + 8) // 8, "big", signed=True
                    )
                    if len(raw) > _U32_MAX:
                        raise CodecError(
                            f"BIGINT of {len(raw)} bytes exceeds the u32 length field"
                        )
                    pos = len(buf)
                    buf += _PAD5
                    _TAG_U32.pack_into(buf, pos, _TAG_J, len(raw))
                    buf += raw
            elif isinstance(value, float):
                pos = len(buf)
                buf += _PAD9
                _TAG_F64.pack_into(buf, pos, _TAG_D, value)
            elif isinstance(value, str):
                raw = value.encode("utf-8")
                if len(raw) > _U32_MAX:
                    raise CodecError(
                        f"string of {len(raw)} utf-8 bytes exceeds the u32 length field"
                    )
                pos = len(buf)
                buf += _PAD5
                _TAG_U32.pack_into(buf, pos, _TAG_S, len(raw))
                buf += raw
            elif isinstance(value, (bytes, bytearray, memoryview)):
                if len(value) > _U32_MAX:
                    raise CodecError(
                        f"bytes of length {len(value)} exceed the u32 length field"
                    )
                pos = len(buf)
                buf += _PAD5
                _TAG_U32.pack_into(buf, pos, _TAG_B, len(value))
                buf += value
            elif isinstance(value, (list, tuple)):
                if len(value) > _U32_MAX:
                    raise CodecError(
                        f"list of {len(value)} items exceeds the u32 count field"
                    )
                if depth >= max_depth:
                    raise CodecError(f"value nests deeper than max_depth={max_depth}")
                pos = len(buf)
                buf += _PAD5
                _TAG_U32.pack_into(buf, pos, _TAG_L, len(value))
                child_depth = depth + 1
                for item in reversed(value):
                    push((item, child_depth))
            elif isinstance(value, dict):
                if len(value) > _U32_MAX:
                    raise CodecError(
                        f"map of {len(value)} entries exceeds the u32 count field"
                    )
                if depth >= max_depth:
                    raise CodecError(f"value nests deeper than max_depth={max_depth}")
                pos = len(buf)
                buf += _PAD5
                _TAG_U32.pack_into(buf, pos, _TAG_M, len(value))
                child_depth = depth + 1
                for key, item in reversed(list(value.items())):
                    push((item, child_depth))
                    push((key, child_depth))
            else:
                if self._object_hook is None:
                    raise CodecError(
                        f"cannot encode value of type {type(value).__name__}"
                    )
                type_name, fields = self._object_hook(value)
                if depth >= max_depth:
                    raise CodecError(f"value nests deeper than max_depth={max_depth}")
                buf.append(_TAG_O)
                child_depth = depth + 1
                push((fields, child_depth))
                push((type_name, child_depth))


# Decoder frame kinds (the explicit stack replacing recursion).
_F_LIST = 0
_F_MAP = 1
_F_OBJ = 2


class WireDecoder:
    """Decodes wire-format bytes back into Python values.

    Args:
        object_hook: Callback invoked for OBJ values; it receives the type
            name and field dict and must return the reconstructed object.
        max_depth: Container nesting limit (:data:`MAX_DEPTH` by default);
            deeper input raises :class:`~repro.errors.CodecError`.
    """

    def __init__(
        self,
        object_hook: Optional[Callable[[str, dict[str, Any]], Any]] = None,
        max_depth: int = MAX_DEPTH,
    ) -> None:
        self._object_hook = object_hook
        self._max_depth = max_depth

    def decode(self, data: Any) -> Any:
        """Decode a single value from *data*; trailing bytes are an error.

        Accepts any bytes-like object (``bytes``, ``bytearray``,
        ``memoryview``) and never copies the buffer wholesale: only STR and
        BYTES leaves are materialized.
        """
        view = memoryview(data)
        try:
            end = len(view)
            value, pos = self._read(view, 0, end)
            if pos != end:
                raise CodecError(f"trailing garbage after value: {end - pos} bytes")
            return value
        finally:
            view.release()

    def decode_many(self, data: Any) -> list[Any]:
        """Decode a concatenated stream of values (see ``encode_many``).

        Values are self-delimiting, so the decoder reads until the buffer is
        exhausted; a truncated final value raises
        :class:`~repro.errors.CodecError` like any other short read.
        """
        view = memoryview(data)
        try:
            end = len(view)
            values: list[Any] = []
            pos = 0
            read = self._read
            while pos < end:
                value, pos = read(view, pos, end)
                values.append(value)
            return values
        finally:
            view.release()

    # -- reader ------------------------------------------------------------

    def _read(self, view: memoryview, pos: int, end: int) -> tuple[Any, int]:
        """Read one value starting at *pos*; returns ``(value, new_pos)``.

        Iterative: container frames live on an explicit stack.  A LIST frame
        is ``[kind, items, remaining]``; a MAP frame is ``[kind, dict,
        remaining, key, have_key]`` (entries are inserted as their pair
        completes, so an unhashable key fails right where it decodes); an
        OBJ frame is ``[kind, children]`` collecting the type name and field
        map before invoking the object hook.
        """
        max_depth = self._max_depth
        stack: list[list[Any]] = []
        while True:
            # ---- read exactly one leaf, or open a container frame -------
            if pos >= end:
                raise CodecError("truncated wire data")
            tag = view[pos]
            pos += 1
            have_value = True
            value: Any = None
            if tag == _TAG_I:
                if pos + 8 > end:
                    raise CodecError("truncated wire data")
                value = _I64.unpack_from(view, pos)[0]
                pos += 8
            elif tag == _TAG_S:
                if pos + 4 > end:
                    raise CodecError("truncated wire data")
                n = _U32.unpack_from(view, pos)[0]
                pos += 4
                if n > end - pos:
                    raise CodecError(
                        f"declared length {n} exceeds the {end - pos} bytes remaining"
                    )
                try:
                    value = str(view[pos : pos + n], "utf-8")
                except UnicodeDecodeError as exc:
                    raise CodecError(f"invalid utf-8 in string: {exc}") from exc
                pos += n
            elif tag == _TAG_B:
                if pos + 4 > end:
                    raise CodecError("truncated wire data")
                n = _U32.unpack_from(view, pos)[0]
                pos += 4
                if n > end - pos:
                    raise CodecError(
                        f"declared length {n} exceeds the {end - pos} bytes remaining"
                    )
                value = bytes(view[pos : pos + n])
                pos += n
            elif tag == _TAG_N:
                value = None
            elif tag == _TAG_T:
                value = True
            elif tag == _TAG_F:
                value = False
            elif tag == _TAG_D:
                if pos + 8 > end:
                    raise CodecError("truncated wire data")
                value = _F64.unpack_from(view, pos)[0]
                pos += 8
            elif tag == _TAG_J:
                if pos + 4 > end:
                    raise CodecError("truncated wire data")
                n = _U32.unpack_from(view, pos)[0]
                pos += 4
                if n > end - pos:
                    raise CodecError(
                        f"declared length {n} exceeds the {end - pos} bytes remaining"
                    )
                value = int.from_bytes(view[pos : pos + n], "big", signed=True)
                pos += n
            elif tag == _TAG_L:
                if pos + 4 > end:
                    raise CodecError("truncated wire data")
                count = _U32.unpack_from(view, pos)[0]
                pos += 4
                # Each element costs at least its one tag byte: a count the
                # remaining buffer cannot possibly satisfy fails here, fast,
                # instead of looping (or preallocating) towards a huge list.
                if count > end - pos:
                    raise CodecError(
                        f"declared count {count} exceeds the {end - pos} bytes remaining"
                    )
                if count == 0:
                    value = []
                else:
                    if len(stack) >= max_depth:
                        raise CodecError(
                            f"input nests deeper than max_depth={max_depth}"
                        )
                    stack.append([_F_LIST, [], count])
                    have_value = False
            elif tag == _TAG_M:
                if pos + 4 > end:
                    raise CodecError("truncated wire data")
                count = _U32.unpack_from(view, pos)[0]
                pos += 4
                if count > (end - pos) // 2:
                    raise CodecError(
                        f"declared count {count} exceeds the {end - pos} bytes remaining"
                    )
                if count == 0:
                    value = {}
                else:
                    if len(stack) >= max_depth:
                        raise CodecError(
                            f"input nests deeper than max_depth={max_depth}"
                        )
                    stack.append([_F_MAP, {}, count, None, False])
                    have_value = False
            elif tag == _TAG_O:
                if len(stack) >= max_depth:
                    raise CodecError(f"input nests deeper than max_depth={max_depth}")
                stack.append([_F_OBJ, []])
                have_value = False
            else:
                raise CodecError(f"unknown wire tag {bytes((tag,))!r}")

            if not have_value:
                continue  # a container frame was opened; read its first child

            # ---- feed the completed value into the enclosing frames -----
            while True:
                if not stack:
                    return value, pos
                frame = stack[-1]
                kind = frame[0]
                if kind == _F_LIST:
                    items = frame[1]
                    items.append(value)
                    frame[2] -= 1
                    if frame[2]:
                        break  # more elements to read
                    stack.pop()
                    value = items
                elif kind == _F_MAP:
                    if not frame[4]:
                        frame[3] = value
                        frame[4] = True
                        break  # the key's value is next
                    try:
                        frame[1][frame[3]] = value
                    except TypeError as exc:
                        raise CodecError(
                            f"unhashable map key of type {type(frame[3]).__name__}"
                        ) from exc
                    frame[3] = None
                    frame[4] = False
                    frame[2] -= 1
                    if frame[2]:
                        break  # more pairs to read
                    stack.pop()
                    value = frame[1]
                else:  # _F_OBJ
                    children = frame[1]
                    children.append(value)
                    if len(children) < 2:
                        break  # the field map is next
                    stack.pop()
                    type_name, fields = children
                    if not isinstance(type_name, str) or not isinstance(fields, dict):
                        raise CodecError("malformed object encoding")
                    if self._object_hook is None:
                        raise CodecError(
                            f"no object hook to decode type {type_name!r}"
                        )
                    try:
                        value = self._object_hook(type_name, fields)
                    except CodecError:
                        raise
                    except Exception as exc:
                        # A registered hook choking on adversarial field
                        # values is still a malformed frame, not a crash.
                        raise CodecError(
                            f"object hook failed for type {type_name!r}: {exc}"
                        ) from exc


def encode(value: Any) -> bytes:
    """Encode a value containing only primitive types."""
    return WireEncoder().encode(value)


def decode(data: Any) -> Any:
    """Decode a value containing only primitive types."""
    return WireDecoder().decode(data)


def encode_many(values: Any) -> bytes:
    """Encode an iterable of primitive-typed values as one stream."""
    return WireEncoder().encode_many(values)


def decode_many(data: Any) -> list[Any]:
    """Decode a stream of concatenated primitive-typed values."""
    return WireDecoder().decode_many(data)


def dataclass_fields(value: Any) -> dict[str, Any]:
    """Shallow field dict of a dataclass instance (no recursion)."""
    if not dataclasses.is_dataclass(value) or isinstance(value, type):
        raise CodecError(f"{value!r} is not a dataclass instance")
    return {f.name: getattr(value, f.name) for f in dataclasses.fields(value)}


__all__ = [
    "MAX_DEPTH",
    "WireEncoder",
    "WireDecoder",
    "encode",
    "decode",
    "encode_many",
    "decode_many",
    "dataclass_fields",
]
