"""A compact, self-describing binary codec.

The paper serializes messages with Google Protocol Buffers.  The evaluated
quantities (message counts and wide-area latencies) do not depend on the wire
format, so this reproduction ships a small dependency-free codec instead.  It
supports the primitive types the protocols need plus *registered* dataclass
types (see :mod:`repro.net.message`), and is used by the asyncio TCP
transport and the file-backed command log.

Wire grammar (all integers big-endian)::

    value   := NONE | TRUE | FALSE | INT | BIGINT | FLOAT | STR | BYTES
             | LIST | MAP | OBJ
    NONE    := 'N'
    TRUE    := 'T'
    FALSE   := 'F'
    INT     := 'I' int64
    BIGINT  := 'J' u32 length, two's-complement bytes
    FLOAT   := 'D' float64
    STR     := 'S' u32 length, utf-8 bytes
    BYTES   := 'B' u32 length, raw bytes
    LIST    := 'L' u32 count, value*
    MAP     := 'M' u32 count, (value value)*
    OBJ     := 'O' STR(type-name) MAP(field-name -> value)
"""

from __future__ import annotations

import dataclasses
import struct
from typing import Any, Callable, Optional

from ..errors import CodecError

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1

_U32 = struct.Struct(">I")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")


class WireEncoder:
    """Encodes Python values into the wire format.

    Args:
        object_hook: Callback invoked for values that are not primitives; it
            must return a ``(type_name, field_dict)`` pair or raise
            :class:`~repro.errors.CodecError`.  The message registry supplies
            this hook for registered dataclasses.
    """

    def __init__(
        self, object_hook: Optional[Callable[[Any], tuple[str, dict[str, Any]]]] = None
    ) -> None:
        self._object_hook = object_hook
        self._parts: list[bytes] = []

    def encode(self, value: Any) -> bytes:
        """Encode *value* and return the wire bytes."""
        self._parts = []
        self._write(value)
        return b"".join(self._parts)

    def encode_many(self, values: Any) -> bytes:
        """Encode an iterable of values as a concatenated stream.

        The stream has no outer container: each value is self-delimiting, so
        decoding with :meth:`WireDecoder.decode_many` recovers the sequence.
        Multi-message envelopes (one TCP frame carrying a whole batch) are
        framed this way — one length prefix for the frame, zero per-message
        framing overhead beyond the values themselves.
        """
        self._parts = []
        for value in values:
            self._write(value)
        return b"".join(self._parts)

    # -- writers -----------------------------------------------------------

    def _write(self, value: Any) -> None:
        if value is None:
            self._parts.append(b"N")
        elif value is True:
            self._parts.append(b"T")
        elif value is False:
            self._parts.append(b"F")
        elif isinstance(value, int):
            self._write_int(value)
        elif isinstance(value, float):
            self._parts.append(b"D" + _F64.pack(value))
        elif isinstance(value, str):
            raw = value.encode("utf-8")
            self._parts.append(b"S" + _U32.pack(len(raw)) + raw)
        elif isinstance(value, (bytes, bytearray, memoryview)):
            raw = bytes(value)
            self._parts.append(b"B" + _U32.pack(len(raw)) + raw)
        elif isinstance(value, (list, tuple)):
            self._parts.append(b"L" + _U32.pack(len(value)))
            for item in value:
                self._write(item)
        elif isinstance(value, dict):
            self._parts.append(b"M" + _U32.pack(len(value)))
            for key, item in value.items():
                self._write(key)
                self._write(item)
        else:
            self._write_object(value)

    def _write_int(self, value: int) -> None:
        if _INT64_MIN <= value <= _INT64_MAX:
            self._parts.append(b"I" + _I64.pack(value))
        else:
            length = (value.bit_length() + 8) // 8
            raw = value.to_bytes(length, "big", signed=True)
            self._parts.append(b"J" + _U32.pack(len(raw)) + raw)

    def _write_object(self, value: Any) -> None:
        if self._object_hook is None:
            raise CodecError(f"cannot encode value of type {type(value).__name__}")
        type_name, fields = self._object_hook(value)
        self._parts.append(b"O")
        self._write(type_name)
        self._write(fields)


class WireDecoder:
    """Decodes wire-format bytes back into Python values.

    Args:
        object_hook: Callback invoked for OBJ values; it receives the type
            name and field dict and must return the reconstructed object.
    """

    def __init__(
        self, object_hook: Optional[Callable[[str, dict[str, Any]], Any]] = None
    ) -> None:
        self._object_hook = object_hook
        self._data = b""
        self._pos = 0

    def decode(self, data: bytes) -> Any:
        """Decode a single value from *data*; trailing bytes are an error."""
        self._data = data
        self._pos = 0
        value = self._read()
        if self._pos != len(self._data):
            raise CodecError(
                f"trailing garbage after value: {len(self._data) - self._pos} bytes"
            )
        return value

    def decode_many(self, data: bytes) -> list[Any]:
        """Decode a concatenated stream of values (see ``encode_many``).

        Values are self-delimiting, so the decoder reads until the buffer is
        exhausted; a truncated final value raises
        :class:`~repro.errors.CodecError` like any other short read.
        """
        self._data = data
        self._pos = 0
        values: list[Any] = []
        while self._pos < len(self._data):
            values.append(self._read())
        return values

    # -- readers -----------------------------------------------------------

    def _take(self, count: int) -> bytes:
        if self._pos + count > len(self._data):
            raise CodecError("truncated wire data")
        chunk = self._data[self._pos : self._pos + count]
        self._pos += count
        return chunk

    def _read_u32(self) -> int:
        return _U32.unpack(self._take(4))[0]

    def _read(self) -> Any:
        tag = self._take(1)
        if tag == b"N":
            return None
        if tag == b"T":
            return True
        if tag == b"F":
            return False
        if tag == b"I":
            return _I64.unpack(self._take(8))[0]
        if tag == b"J":
            raw = self._take(self._read_u32())
            return int.from_bytes(raw, "big", signed=True)
        if tag == b"D":
            return _F64.unpack(self._take(8))[0]
        if tag == b"S":
            return self._take(self._read_u32()).decode("utf-8")
        if tag == b"B":
            return self._take(self._read_u32())
        if tag == b"L":
            count = self._read_u32()
            return [self._read() for _ in range(count)]
        if tag == b"M":
            count = self._read_u32()
            return {self._read(): self._read() for _ in range(count)}
        if tag == b"O":
            type_name = self._read()
            fields = self._read()
            if not isinstance(type_name, str) or not isinstance(fields, dict):
                raise CodecError("malformed object encoding")
            if self._object_hook is None:
                raise CodecError(f"no object hook to decode type {type_name!r}")
            return self._object_hook(type_name, fields)
        raise CodecError(f"unknown wire tag {tag!r}")


def encode(value: Any) -> bytes:
    """Encode a value containing only primitive types."""
    return WireEncoder().encode(value)


def decode(data: bytes) -> Any:
    """Decode a value containing only primitive types."""
    return WireDecoder().decode(data)


def encode_many(values: Any) -> bytes:
    """Encode an iterable of primitive-typed values as one stream."""
    return WireEncoder().encode_many(values)


def decode_many(data: bytes) -> list[Any]:
    """Decode a stream of concatenated primitive-typed values."""
    return WireDecoder().decode_many(data)


def dataclass_fields(value: Any) -> dict[str, Any]:
    """Shallow field dict of a dataclass instance (no recursion)."""
    if not dataclasses.is_dataclass(value) or isinstance(value, type):
        raise CodecError(f"{value!r} is not a dataclass instance")
    return {f.name: getattr(value, f.name) for f in dataclasses.fields(value)}


__all__ = [
    "WireEncoder",
    "WireDecoder",
    "encode",
    "decode",
    "encode_many",
    "decode_many",
    "dataclass_fields",
]
