"""Transport interfaces and an in-memory implementation.

A transport moves :class:`~repro.net.message.Envelope` objects between
replicas.  The discrete-event simulator has its own delivery machinery
(:mod:`repro.sim.network`); the transports here serve the asyncio runtime and
unit tests.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from typing import Callable, Optional

from ..errors import TransportError
from ..types import ReplicaId
from .message import Envelope

DeliveryHandler = Callable[[Envelope], None]


class Transport(ABC):
    """Sends envelopes to peers and delivers incoming ones to a handler."""

    def __init__(self, local_id: ReplicaId) -> None:
        self._local_id = local_id
        self._handler: Optional[DeliveryHandler] = None

    @property
    def local_id(self) -> ReplicaId:
        return self._local_id

    def set_handler(self, handler: DeliveryHandler) -> None:
        """Register the callback invoked for each incoming envelope."""
        self._handler = handler

    def _dispatch(self, envelope: Envelope) -> None:
        if self._handler is None:
            raise TransportError(
                f"replica {self._local_id} received a message before a handler was set"
            )
        self._handler(envelope)

    @abstractmethod
    def send(self, envelope: Envelope) -> None:
        """Queue *envelope* for delivery to ``envelope.dst``."""

    def close(self) -> None:
        """Release any resources held by the transport."""


class InMemoryNetwork:
    """A hub connecting :class:`InMemoryTransport` instances in one process.

    Delivery is either immediate (``auto_deliver=True``) or deferred until
    :meth:`deliver_all` / :meth:`deliver_one` is called, which lets unit tests
    interleave message deliveries deterministically, drop messages, or
    reorder them between replicas (FIFO per channel is always preserved, as
    the paper's model assumes).
    """

    def __init__(self, auto_deliver: bool = True) -> None:
        self._auto_deliver = auto_deliver
        self._transports: dict[ReplicaId, "InMemoryTransport"] = {}
        self._queues: dict[tuple[ReplicaId, ReplicaId], deque[Envelope]] = {}
        self._dropped: list[Envelope] = []
        self._partitions: set[frozenset[ReplicaId]] = set()

    # -- wiring ------------------------------------------------------------

    def attach(self, transport: "InMemoryTransport") -> None:
        if transport.local_id in self._transports:
            raise TransportError(f"replica {transport.local_id} already attached")
        self._transports[transport.local_id] = transport

    def transport_for(self, replica_id: ReplicaId) -> "InMemoryTransport":
        transport = InMemoryTransport(replica_id, self)
        self.attach(transport)
        return transport

    # -- fault injection ----------------------------------------------------

    def partition(self, a: ReplicaId, b: ReplicaId) -> None:
        """Silently drop all traffic between *a* and *b* until healed."""
        self._partitions.add(frozenset((a, b)))

    def heal(self, a: ReplicaId, b: ReplicaId) -> None:
        self._partitions.discard(frozenset((a, b)))

    def heal_all(self) -> None:
        self._partitions.clear()

    def is_partitioned(self, a: ReplicaId, b: ReplicaId) -> bool:
        return frozenset((a, b)) in self._partitions

    @property
    def dropped(self) -> list[Envelope]:
        """Envelopes dropped due to partitions (for assertions in tests)."""
        return list(self._dropped)

    # -- delivery ------------------------------------------------------------

    def submit(self, envelope: Envelope) -> None:
        if self.is_partitioned(envelope.src, envelope.dst):
            self._dropped.append(envelope)
            return
        if envelope.dst not in self._transports:
            raise TransportError(f"unknown destination replica {envelope.dst}")
        key = (envelope.src, envelope.dst)
        self._queues.setdefault(key, deque()).append(envelope)
        if self._auto_deliver:
            self.deliver_all()

    def pending_count(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def deliver_one(self) -> bool:
        """Deliver the oldest queued envelope; return False if none queued."""
        for key in list(self._queues):
            queue = self._queues[key]
            if queue:
                envelope = queue.popleft()
                self._transports[envelope.dst]._dispatch(envelope)
                return True
        return False

    def deliver_all(self, limit: int = 100_000) -> int:
        """Deliver queued envelopes (including ones produced while delivering).

        Returns the number delivered.  *limit* guards against livelock in
        tests exercising protocols that keep generating traffic.
        """
        delivered = 0
        while delivered < limit and self.deliver_one():
            delivered += 1
        return delivered


class InMemoryTransport(Transport):
    """Transport endpoint attached to an :class:`InMemoryNetwork`."""

    def __init__(self, local_id: ReplicaId, network: InMemoryNetwork) -> None:
        super().__init__(local_id)
        self._network = network

    def send(self, envelope: Envelope) -> None:
        if envelope.src != self.local_id:
            raise TransportError(
                f"transport of replica {self.local_id} cannot send as {envelope.src}"
            )
        if envelope.dst == self.local_id:
            # Loopback: deliver immediately, matching the protocols'
            # expectation that self-addressed messages incur no delay.
            self._dispatch(envelope)
            return
        self._network.submit(envelope)


__all__ = ["Transport", "InMemoryNetwork", "InMemoryTransport", "DeliveryHandler"]
