"""Asyncio TCP transport with length-prefixed framing.

Used by :mod:`repro.runtime.server` to run a real replicated key-value store
on a set of sockets (the examples run all replicas in one process on
localhost; the same code works across machines).

Framing: each message is ``u32 big-endian length`` followed by the
registry-encoded envelope payload ``{"src": int, "dst": int, "message": obj}``.
"""

from __future__ import annotations

import asyncio
import logging
import struct
from typing import Optional

from ..errors import TransportError
from ..types import ReplicaId
from .message import Envelope, MessageRegistry, global_registry
from .transport import Transport

_LOGGER = logging.getLogger(__name__)
_LENGTH = struct.Struct(">I")

#: Upper bound on a single frame; protects against corrupted length prefixes.
MAX_FRAME_BYTES = 64 * 1024 * 1024


def encode_frame(envelope: Envelope, registry: MessageRegistry) -> bytes:
    """Serialize an envelope into a length-prefixed frame."""
    body = registry.encode(
        {"src": envelope.src, "dst": envelope.dst, "message": envelope.message}
    )
    if len(body) > MAX_FRAME_BYTES:
        raise TransportError(f"frame too large: {len(body)} bytes")
    return _LENGTH.pack(len(body)) + body


def decode_frame_body(body: bytes, registry: MessageRegistry) -> Envelope:
    """Deserialize a frame body (without the length prefix) into an envelope."""
    decoded = registry.decode(body)
    if not isinstance(decoded, dict) or not {"src", "dst", "message"} <= decoded.keys():
        raise TransportError("malformed frame body")
    return Envelope(
        src=decoded["src"], dst=decoded["dst"], message=decoded["message"], size_hint=len(body)
    )


async def read_frame(reader: asyncio.StreamReader, registry: MessageRegistry) -> Envelope:
    """Read one frame from *reader*; raises ``IncompleteReadError`` at EOF."""
    header = await reader.readexactly(_LENGTH.size)
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise TransportError(f"frame length {length} exceeds limit")
    body = await reader.readexactly(length)
    return decode_frame_body(body, registry)


class TcpTransport(Transport):
    """A TCP transport endpoint for one replica.

    Maintains one outbound connection per peer (created lazily and re-created
    on failure) and accepts inbound connections from peers and clients.
    Incoming envelopes are handed to the registered handler on the event
    loop; the handler must be non-blocking (the sans-IO protocols are).
    """

    def __init__(
        self,
        local_id: ReplicaId,
        listen_address: str,
        peer_addresses: dict[ReplicaId, str],
        registry: Optional[MessageRegistry] = None,
    ) -> None:
        super().__init__(local_id)
        self._listen_host, self._listen_port = _split_address(listen_address)
        self._peer_addresses = dict(peer_addresses)
        self._registry = registry or global_registry
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: dict[ReplicaId, asyncio.StreamWriter] = {}
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Start listening for inbound peer connections."""
        self._server = await asyncio.start_server(
            self._handle_connection, self._listen_host, self._listen_port
        )
        _LOGGER.info("replica %s listening on %s:%s", self.local_id, self._listen_host, self._listen_port)

    async def stop(self) -> None:
        self._closed = True
        for writer in self._writers.values():
            writer.close()
        self._writers.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def close(self) -> None:
        self._closed = True

    # -- sending -------------------------------------------------------------

    def send(self, envelope: Envelope) -> None:
        """Queue an envelope; the actual write happens as an asyncio task."""
        if envelope.dst == self.local_id:
            self._dispatch(envelope)
            return
        asyncio.get_running_loop().create_task(self._send_async(envelope))

    async def _send_async(self, envelope: Envelope) -> None:
        if self._closed:
            return
        try:
            writer = await self._writer_for(envelope.dst)
            writer.write(encode_frame(envelope, self._registry))
            await writer.drain()
        except (OSError, TransportError, asyncio.IncompleteReadError) as exc:
            _LOGGER.warning(
                "replica %s failed to send to %s: %s", self.local_id, envelope.dst, exc
            )
            self._writers.pop(envelope.dst, None)

    async def _writer_for(self, dst: ReplicaId) -> asyncio.StreamWriter:
        writer = self._writers.get(dst)
        if writer is not None and not writer.is_closing():
            return writer
        address = self._peer_addresses.get(dst)
        if address is None:
            raise TransportError(f"no address configured for replica {dst}")
        host, port = _split_address(address)
        _, writer = await asyncio.open_connection(host, port)
        self._writers[dst] = writer
        return writer

    # -- receiving -----------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        try:
            while not self._closed:
                envelope = await read_frame(reader, self._registry)
                self._dispatch(envelope)
        except (asyncio.IncompleteReadError, ConnectionResetError):
            _LOGGER.debug("replica %s: connection from %s closed", self.local_id, peer)
        finally:
            writer.close()


def _split_address(address: str) -> tuple[str, int]:
    host, _, port = address.rpartition(":")
    if not host or not port.isdigit():
        raise TransportError(f"invalid address {address!r}, expected host:port")
    return host, int(port)


__all__ = [
    "TcpTransport",
    "encode_frame",
    "decode_frame_body",
    "read_frame",
    "MAX_FRAME_BYTES",
]
