"""Asyncio TCP transport with length-prefixed framing and batch envelopes.

Used by :mod:`repro.runtime.server` to run a real replicated key-value store
on a set of sockets (the examples run all replicas in one process on
localhost; the same code works across machines).

Framing: each frame is ``u32 big-endian length`` followed by a body in one
of two forms —

* **single**: the registry-encoded envelope payload
  ``{"src": int, "dst": int, "message": obj}`` (one protocol message);
* **batch**: a concatenated value stream (see
  :meth:`~repro.net.message.MessageRegistry.encode_many`) whose first value
  is the header ``{"src": int, "dst": int, "batch": n}`` followed by the
  ``n`` message values — one TCP write, one length prefix, ``n`` messages.

:func:`read_envelopes` accepts both, so batched and unbatched peers
interoperate on the same socket.
"""

from __future__ import annotations

import asyncio
import logging
import struct
from collections import deque
from typing import Any, Optional

from ..config import BatchingOptions
from ..errors import TransportError
from ..types import ReplicaId
from .batching import BatchAccumulator
from .message import Envelope, EnvelopeBatch, MessageRegistry, global_registry
from .transport import Transport

_LOGGER = logging.getLogger(__name__)
_LENGTH = struct.Struct(">I")

#: Upper bound on a single frame; protects against corrupted length prefixes.
MAX_FRAME_BYTES = 64 * 1024 * 1024


def _seal_frame(buf: bytearray) -> bytes:
    """Patch the reserved length prefix at the head of *buf* and freeze it.

    Frame fusion: the encoder appended the body straight after the 4
    reserved prefix bytes, so header and body leave as one buffer in one
    ``write()`` — no join of per-value parts, no prefix+body concatenation.
    """
    body_len = len(buf) - _LENGTH.size
    if body_len > MAX_FRAME_BYTES:
        raise TransportError(f"frame too large: {body_len} bytes")
    _LENGTH.pack_into(buf, 0, body_len)
    return bytes(buf)


def encode_frame(envelope: Envelope, registry: MessageRegistry) -> bytes:
    """Serialize an envelope into a length-prefixed single-message frame."""
    buf = bytearray(_LENGTH.size)
    registry.encode_into(
        buf, {"src": envelope.src, "dst": envelope.dst, "message": envelope.message}
    )
    return _seal_frame(buf)


def encode_batch_frame(batch: EnvelopeBatch, registry: MessageRegistry) -> bytes:
    """Serialize a multi-message envelope into one length-prefixed frame."""
    buf = bytearray(_LENGTH.size)
    header = {"src": batch.src, "dst": batch.dst, "batch": len(batch.messages)}
    registry.encode_into(buf, header)
    registry.encode_many_into(buf, batch.messages)
    return _seal_frame(buf)


def decode_frame_body(body: Any, registry: MessageRegistry) -> Envelope:
    """Deserialize a single-message frame body into an envelope."""
    decoded = registry.decode(body)
    if not isinstance(decoded, dict) or not {"src", "dst", "message"} <= decoded.keys():
        raise TransportError("malformed frame body")
    return Envelope(
        src=decoded["src"], dst=decoded["dst"], message=decoded["message"], size_hint=len(body)
    )


def decode_frame_envelopes(body: Any, registry: MessageRegistry) -> list[Envelope]:
    """Deserialize a frame body of either form into its envelopes, in order.

    Accepts any bytes-like *body*; the registry decoder walks it as a
    ``memoryview``, so envelope batches are decoded straight from the
    received buffer with only the string/bytes leaves materialized.
    """
    values = registry.decode_many(body)
    if not values:
        raise TransportError("empty frame body")
    header = values[0]
    if not isinstance(header, dict) or not {"src", "dst"} <= header.keys():
        raise TransportError("malformed frame body")
    if "message" in header:
        if len(values) != 1:
            raise TransportError("single-message frame carries trailing values")
        return [
            Envelope(
                src=header["src"],
                dst=header["dst"],
                message=header["message"],
                size_hint=len(body),
            )
        ]
    count = header.get("batch")
    if not isinstance(count, int) or count < 1 or len(values) != count + 1:
        raise TransportError(
            f"batch frame announces {count!r} messages but carries {len(values) - 1}"
        )
    # The frame's bytes are shared work; attribute them evenly so the
    # size_hint stays meaningful per message.
    hint = len(body) // count
    return [
        Envelope(src=header["src"], dst=header["dst"], message=message, size_hint=hint)
        for message in values[1:]
    ]


async def read_frame(reader: asyncio.StreamReader, registry: MessageRegistry) -> Envelope:
    """Read one single-message frame; raises ``IncompleteReadError`` at EOF."""
    header = await reader.readexactly(_LENGTH.size)
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise TransportError(f"frame length {length} exceeds limit")
    body = await reader.readexactly(length)
    return decode_frame_body(body, registry)


async def read_envelopes(
    reader: asyncio.StreamReader, registry: MessageRegistry
) -> list[Envelope]:
    """Read one frame of either form and return its envelopes, in order.

    ``readexactly`` reassembles partial reads, so a batch frame split across
    arbitrarily many TCP segments decodes identically to one delivered whole.
    """
    header = await reader.readexactly(_LENGTH.size)
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise TransportError(f"frame length {length} exceeds limit")
    body = await reader.readexactly(length)
    return decode_frame_envelopes(body, registry)


class TcpTransport(Transport):
    """A TCP transport endpoint for one replica.

    Maintains one outbound connection per peer (created lazily and re-created
    on failure) and accepts inbound connections from peers and clients.
    Incoming envelopes are handed to the registered handler on the event
    loop; the handler must be non-blocking (the sans-IO protocols are).

    With ``batching`` enabled, outbound envelopes are coalesced per peer:
    messages queued for the same destination within the accumulation window
    (``window_us = 0`` — the current event-loop tick) ship as framed
    multi-message envelopes of at most ``max_batch`` messages each, written
    in one ``write()`` call.  Message order per channel is preserved.
    """

    def __init__(
        self,
        local_id: ReplicaId,
        listen_address: str,
        peer_addresses: dict[ReplicaId, str],
        registry: Optional[MessageRegistry] = None,
        batching: Optional[BatchingOptions] = None,
        connect_retries: int = 0,
        connect_backoff_s: float = 0.05,
    ) -> None:
        super().__init__(local_id)
        self._listen_host, self._listen_port = _split_address(listen_address)
        self._peer_addresses = dict(peer_addresses)
        self._registry = registry or global_registry
        self._batching = batching if batching is not None and batching.enabled else None
        self._connect_retries = connect_retries
        self._connect_backoff_s = connect_backoff_s
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: dict[ReplicaId, asyncio.StreamWriter] = {}
        self._connect_locks: dict[ReplicaId, asyncio.Lock] = {}
        self._outbound: dict[ReplicaId, deque[list[Envelope]]] = {}
        self._senders: dict[ReplicaId, asyncio.Task] = {}
        self._accumulators: dict[ReplicaId, BatchAccumulator[Envelope]] = {}
        self._early: list[Envelope] = []
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Start listening for inbound peer connections (idempotent)."""
        if self._server is not None:
            return
        self._server = await asyncio.start_server(
            self._handle_connection, self._listen_host, self._listen_port
        )
        _LOGGER.info("replica %s listening on %s:%s", self.local_id, self._listen_host, self._listen_port)

    @property
    def bound_address(self) -> str:
        """The actual listen address (resolves an ephemeral port 0 request)."""
        if self._server is None or not self._server.sockets:
            raise TransportError(f"replica {self.local_id} transport not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        # Report the configured host: a wildcard bind keeps its request name.
        return f"{self._listen_host}:{port}"

    def set_peers(self, peer_addresses: dict[ReplicaId, str]) -> None:
        """Install or update peer addresses (used once ephemeral ports are known)."""
        self._peer_addresses.update(peer_addresses)

    async def stop(self) -> None:
        self._closed = True
        for accumulator in self._accumulators.values():
            accumulator.clear()
        for task in self._senders.values():
            task.cancel()
        self._senders.clear()
        self._outbound.clear()
        for writer in self._writers.values():
            writer.close()
        self._writers.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def close(self) -> None:
        self._closed = True
        for accumulator in self._accumulators.values():
            accumulator.clear()

    # -- sending -------------------------------------------------------------
    #
    # Per-destination FIFO is a correctness requirement, not a nicety:
    # Clock-RSM's stability rule (LatestTV) assumes each replica's messages
    # arrive in non-decreasing clock-reading order, which holds iff the
    # channel preserves send order.  A task-per-envelope design breaks this
    # while a connection is being established — sends issued during the
    # connect park on the lock and are woken one by one, while sends issued
    # just after it completes find the cached writer and write immediately,
    # jumping the queue.  So every destination gets one outbound queue
    # drained by a single sender task: order is preserved by construction,
    # through connection setup, retries, and reconnects alike.

    def send(self, envelope: Envelope) -> None:
        """Queue an envelope; the actual write happens on the sender task."""
        if envelope.dst == self.local_id:
            self._dispatch(envelope)
            return
        if self._batching is None:
            self._enqueue(envelope.dst, [envelope])
            return
        accumulator = self._accumulators.get(envelope.dst)
        if accumulator is None:
            accumulator = BatchAccumulator(
                self._batching,
                lambda envelopes, dst=envelope.dst: self._enqueue(dst, envelopes),
            )
            self._accumulators[envelope.dst] = accumulator
        accumulator.add(envelope)

    def _enqueue(self, dst: ReplicaId, envelopes: list[Envelope]) -> None:
        """Append a write unit to ``dst``'s queue and ensure its drainer runs."""
        if self._closed:
            return
        self._outbound.setdefault(dst, deque()).append(envelopes)
        task = self._senders.get(dst)
        if task is None or task.done():
            self._senders[dst] = asyncio.get_running_loop().create_task(
                self._drain_outbound(dst)
            )

    async def _drain_outbound(self, dst: ReplicaId) -> None:
        """Write ``dst``'s queued units in order; exits when the queue drains."""
        queue = self._outbound[dst]
        while queue and not self._closed:
            try:
                writer = await self._writer_for(dst)
            except (OSError, TransportError) as exc:
                _LOGGER.warning(
                    "replica %s cannot reach %s, dropping %d queued writes: %s",
                    self.local_id,
                    dst,
                    len(queue),
                    exc,
                )
                queue.clear()
                return
            envelopes = queue.popleft()
            if len(envelopes) == 1:
                frame = encode_frame(envelopes[0], self._registry)
            else:
                frame = encode_batch_frame(EnvelopeBatch.of(envelopes), self._registry)
            try:
                writer.write(frame)
                await writer.drain()
            except (OSError, TransportError, asyncio.IncompleteReadError) as exc:
                _LOGGER.warning(
                    "replica %s failed to send %d message(s) to %s: %s",
                    self.local_id,
                    len(envelopes),
                    dst,
                    exc,
                )
                self._writers.pop(dst, None)

    async def _writer_for(self, dst: ReplicaId) -> asyncio.StreamWriter:
        writer = self._writers.get(dst)
        if writer is not None and not writer.is_closing():
            return writer
        # One connection attempt per destination at a time: without the lock,
        # two concurrent sends each open a connection and the loser's writer
        # leaks (the peer then sees a duplicate inbound connection).
        lock = self._connect_locks.setdefault(dst, asyncio.Lock())
        async with lock:
            writer = self._writers.get(dst)
            if writer is not None and not writer.is_closing():
                return writer
            address = self._peer_addresses.get(dst)
            if address is None:
                raise TransportError(f"no address configured for replica {dst}")
            host, port = _split_address(address)
            attempt = 0
            while True:
                try:
                    _, writer = await asyncio.open_connection(host, port)
                    break
                except OSError:
                    # The peer may not be listening yet (process-mode replicas
                    # start concurrently); back off and retry within budget.
                    if attempt >= self._connect_retries or self._closed:
                        raise
                    attempt += 1
                    await asyncio.sleep(self._connect_backoff_s * attempt)
            self._writers[dst] = writer
            return writer

    # -- receiving -----------------------------------------------------------

    def set_handler(self, handler) -> None:
        super().set_handler(handler)
        early, self._early = self._early, []
        for envelope in early:
            handler(envelope)

    def _dispatch(self, envelope: Envelope) -> None:
        # A peer can connect and speak before this replica's protocol handler
        # is wired up (process-mode replicas start concurrently); buffer such
        # envelopes instead of raising, and flush them on set_handler.
        if self._handler is None:
            self._early.append(envelope)
            return
        self._handler(envelope)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        try:
            while not self._closed:
                for envelope in await read_envelopes(reader, self._registry):
                    self._dispatch(envelope)
        except (asyncio.IncompleteReadError, ConnectionResetError):
            _LOGGER.debug("replica %s: connection from %s closed", self.local_id, peer)
        finally:
            writer.close()


def _split_address(address: str) -> tuple[str, int]:
    host, _, port = address.rpartition(":")
    if not host or not port.isdigit():
        raise TransportError(f"invalid address {address!r}, expected host:port")
    return host, int(port)


__all__ = [
    "TcpTransport",
    "encode_frame",
    "encode_batch_frame",
    "decode_frame_body",
    "decode_frame_envelopes",
    "read_frame",
    "read_envelopes",
    "MAX_FRAME_BYTES",
]
