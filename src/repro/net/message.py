"""Message registry and transport envelopes.

Every protocol message in this library is a frozen dataclass.  To cross a
real transport (TCP) or be appended to a file-backed log, a message type must
be *registered* so the wire codec can round-trip it by name.  Registration is
done with the :func:`register_message` decorator; the protocols register all
their message types at import time.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Iterator, Optional, Type, TypeVar

from ..errors import CodecError
from ..types import ReplicaId
from .wire import WireDecoder, WireEncoder, dataclass_fields

T = TypeVar("T")


class MessageRegistry:
    """Maps message type names to dataclass types for codec round-trips."""

    def __init__(self) -> None:
        self._by_name: dict[str, type] = {}
        self._by_type: dict[type, str] = {}
        # One codec pair per registry: the hooks resolve names dynamically,
        # so registration after construction is still picked up, and reusing
        # the encoder keeps its internal bytearray warm across frames.  The
        # encoder's buffer makes ``encode``/``encode_many`` single-threaded
        # (like the event loop that calls them); the ``*_into`` variants and
        # the decoder only touch caller-owned state and are reentrant.
        self._encoder = WireEncoder(object_hook=self._encode_hook)
        self._decoder = WireDecoder(object_hook=self._decode_hook)

    def register(self, cls: Type[T], name: Optional[str] = None) -> Type[T]:
        """Register *cls* under *name* (defaults to the class name)."""
        if not dataclasses.is_dataclass(cls):
            raise CodecError(f"only dataclasses can be registered, got {cls!r}")
        key = name or cls.__name__
        existing = self._by_name.get(key)
        if existing is not None and existing is not cls:
            raise CodecError(f"message name {key!r} already registered to {existing!r}")
        self._by_name[key] = cls
        self._by_type[cls] = key
        return cls

    def names(self) -> Iterator[str]:
        return iter(self._by_name)

    def is_registered(self, cls: type) -> bool:
        return cls in self._by_type

    # -- codec hooks -------------------------------------------------------

    def _encode_hook(self, value: Any) -> tuple[str, dict[str, Any]]:
        name = self._by_type.get(type(value))
        if name is None:
            raise CodecError(f"unregistered message type {type(value).__name__}")
        return name, dataclass_fields(value)

    def _decode_hook(self, name: str, fields: dict[str, Any]) -> Any:
        cls = self._by_name.get(name)
        if cls is None:
            raise CodecError(f"unknown message type {name!r}")
        converted = _convert_fields(cls, fields)
        return cls(**converted)

    # -- public encode/decode ----------------------------------------------

    def encode(self, value: Any) -> bytes:
        """Encode a value that may contain registered message instances."""
        return self._encoder.encode(value)

    def decode(self, data: Any) -> Any:
        """Decode wire bytes produced by :meth:`encode` (any bytes-like)."""
        return self._decoder.decode(data)

    def encode_many(self, values: Any) -> bytes:
        """Encode an iterable of values as one concatenated stream."""
        return self._encoder.encode_many(values)

    def decode_many(self, data: Any) -> list[Any]:
        """Decode a concatenated stream produced by :meth:`encode_many`."""
        return self._decoder.decode_many(data)

    def encode_into(self, buf: bytearray, value: Any) -> int:
        """Append the encoding of *value* to *buf*; returns bytes written.

        Frame-fusion path for transports: lets a caller reserve its length
        prefix in *buf* and encode the body directly after it, with no
        intermediate ``bytes`` object.
        """
        return self._encoder.encode_into(buf, value)

    def encode_many_into(self, buf: bytearray, values: Any) -> int:
        """Append a concatenated value stream to *buf*; returns bytes written."""
        return self._encoder.encode_many_into(buf, values)


def _convert_fields(cls: type, fields: dict[str, Any]) -> dict[str, Any]:
    """Coerce decoded collections back to the declared field container types.

    The wire format does not distinguish tuples from lists; frozen dataclass
    fields declared as tuples are converted back so equality round-trips.
    """
    converted: dict[str, Any] = {}
    declared = {f.name: f for f in dataclasses.fields(cls)}
    for key, value in fields.items():
        field = declared.get(key)
        if field is None:
            # Forward compatibility: ignore unknown fields.
            continue
        type_repr = str(field.type)
        if isinstance(value, list) and ("tuple" in type_repr or "Tuple" in type_repr):
            value = tuple(value)
        converted[key] = value
    return converted


#: The library-wide registry used by the default transports and logs.
global_registry = MessageRegistry()


def register_message(cls: Type[T]) -> Type[T]:
    """Class decorator registering a protocol message with the global registry."""
    return global_registry.register(cls)


# Core value types that appear inside protocol messages are registered here
# so any message embedding them round-trips through the codec.
from ..types import Command, CommandId, CommandResult, Timestamp  # noqa: E402

global_registry.register(Timestamp)
global_registry.register(CommandId)
global_registry.register(Command)
global_registry.register(CommandResult)


@dataclass(frozen=True, slots=True)
class Envelope:
    """A protocol message in flight between two replicas.

    Attributes:
        src: Sending replica id.
        dst: Destination replica id.
        message: The protocol message (a registered dataclass).
        size_hint: Approximate serialized size in bytes; the simulator's
            throughput model charges CPU proportional to this.  ``0`` means
            "unknown", in which case transports may compute the real size.
    """

    src: ReplicaId
    dst: ReplicaId
    message: Any
    size_hint: int = 0

    def with_size(self, size: int) -> "Envelope":
        return Envelope(self.src, self.dst, self.message, size)


@dataclass(frozen=True, slots=True)
class EnvelopeBatch:
    """Several protocol messages between the same pair of replicas.

    The unit of *message pipelining*: a transport that has accumulated
    multiple envelopes for one destination ships them as a single framed
    multi-message envelope — one length prefix, one TCP write, one delivery
    — instead of one frame per message.  Order within the batch is the send
    order, so FIFO channel semantics (which Mencius's skip detection relies
    on) are preserved.
    """

    src: ReplicaId
    dst: ReplicaId
    messages: tuple[Any, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "messages", tuple(self.messages))
        if not self.messages:
            raise CodecError("an envelope batch cannot be empty")

    @classmethod
    def of(cls, envelopes: "list[Envelope]") -> "EnvelopeBatch":
        """Bundle same-channel envelopes, preserving their order."""
        if not envelopes:
            raise CodecError("an envelope batch cannot be empty")
        src, dst = envelopes[0].src, envelopes[0].dst
        for envelope in envelopes:
            if envelope.src != src or envelope.dst != dst:
                raise CodecError(
                    "an envelope batch must share one (src, dst) channel; got "
                    f"({src}->{dst}) and ({envelope.src}->{envelope.dst})"
                )
        return cls(src, dst, tuple(e.message for e in envelopes))

    def envelopes(self) -> list[Envelope]:
        """Unbundle back into per-message envelopes, in batch order."""
        return [Envelope(self.src, self.dst, message) for message in self.messages]

    def __len__(self) -> int:
        return len(self.messages)


__all__ = [
    "MessageRegistry",
    "global_registry",
    "register_message",
    "Envelope",
    "EnvelopeBatch",
]
