"""Fan an experiment spec out to N shard groups and aggregate the results.

:func:`shard_subspecs` turns one spec with a ``[sharding]`` table into N
plain sub-specs — one independent protocol group per shard over the same
site list, with the client population partitioned across the groups (the
workload table describes the *total* offered load; every shard always
receives at least one client per site).  Site-level faults apply to every
shard: crashing a site crashes that site's replica process in each group.

:class:`ShardedDeployment` runs the sub-specs:

* **sim** — every shard group is built on one shared
  :class:`~repro.sim.environment.SimulationEnvironment`, so the groups'
  events interleave deterministically in a single virtual timeline (one
  scheduler, N clusters), then each group is summarized as usual;
* **async** — the groups run as concurrent
  :class:`~repro.runtime.local.LocalAsyncCluster` deployments inside one
  event loop.

Either way, :func:`aggregate_results` reduces the per-shard results to one
:class:`~repro.experiment.result.ExperimentResult`: committed counts and
throughput sum, per-site latency summaries merge count-weighted, CDFs merge
exactly, and the full per-shard results stay attached under ``.shards``.

Each shard group is modelled with its own per-site node (its own CPU in the
simulator's cost model): operationally, one shard is one single-threaded
replica process per site, and sharding scales throughput by running N such
processes per site on N cores — which is exactly the state-partitioning
escape hatch the paper proposes for the single-total-order bottleneck.
"""

from __future__ import annotations

import asyncio
import zlib
from dataclasses import replace
from typing import Any

from ..errors import ConfigurationError
from ..experiment.async_backend import AsyncBackend
from ..experiment.deployment import build_backend
from ..experiment.result import ExperimentResult, SiteResult
from ..experiment.sim_backend import SimBackend
from ..experiment.spec import ExperimentSpec, ShardingSpec
from ..metrics.stats import merge_cdfs, merge_summaries
from ..sim.environment import SimulationEnvironment
from ..types import ReplicaId


def _split(total: int, shard: int, shards: int) -> int:
    """Shard *shard*'s portion of *total* clients (never below one)."""
    base, remainder = divmod(total, shards)
    return max(1, base + (1 if shard < remainder else 0))


def shard_subspecs(spec: ExperimentSpec) -> list[ExperimentSpec]:
    """The per-shard sub-specs of a sharded spec (single-group specs pass through)."""
    sharding = spec.sharding
    if sharding is None or sharding.shards == 1:
        return [replace(spec, sharding=None)]
    subspecs = []
    for shard in range(sharding.shards):
        workload = replace(
            spec.workload,
            clients_per_site=_split(
                spec.workload.clients_per_site, shard, sharding.shards
            ),
            outstanding_per_site=_split(
                spec.workload.outstanding_per_site, shard, sharding.shards
            ),
        )
        subspec = replace(
            spec,
            name=f"{spec.name}/shard{shard}",
            workload=workload,
            seed=sharding.seed_for(shard, spec.seed),
            sharding=None,
        )
        protocol = sharding.protocol_for(shard, spec.protocol)
        if protocol != spec.protocol:
            subspec = subspec.with_protocol(protocol, name=subspec.name)
        subspecs.append(subspec)
    return subspecs


def aggregate_results(
    spec: ExperimentSpec, backend: str, shard_results: list[ExperimentResult]
) -> ExperimentResult:
    """Reduce per-shard results to one aggregate :class:`ExperimentResult`."""
    if not shard_results:
        raise ConfigurationError("cannot aggregate zero shard results")
    sites: dict[str, SiteResult] = {}
    for site in spec.sites:
        parts = [result.sites[site] for result in shard_results if site in result.sites]
        if not parts:
            continue
        summaries = [part.summary for part in parts if part.summary is not None]
        cdf_parts = [
            (part.cdf_ms, part.summary.count)
            for part in parts
            if part.cdf_ms is not None and part.summary is not None
        ]
        sites[site] = SiteResult(
            site=site,
            replica_id=parts[0].replica_id,
            committed=sum(part.committed for part in parts),
            summary=merge_summaries(summaries) if summaries else None,
            cdf_ms=(
                merge_cdfs([cdf for cdf, _ in cdf_parts], [n for _, n in cdf_parts])
                if cdf_parts
                else None
            ),
        )

    # Per-replica metrics: replica ids coincide across shard groups (replica
    # r of every group lives at site r), so "executed" sums over the site's
    # shard processes, "utilization" averages over them, and the latency-split
    # means merge weighted by each shard's sample count.
    replica_metrics: dict[ReplicaId, dict[str, float]] = {}
    split_means = ("queue_wait_mean_us", "protocol_mean_us")
    for result in shard_results:
        for rid, metrics in result.replica_metrics.items():
            merged = replica_metrics.setdefault(rid, {})
            weight = metrics.get("split_samples", 0.0)
            for key, value in metrics.items():
                if key in split_means:
                    value *= weight  # de-averaged; re-divided below
                merged[key] = merged.get(key, 0.0) + value
    for metrics in replica_metrics.values():
        if "utilization" in metrics:
            metrics["utilization"] = round(
                metrics["utilization"] / len(shard_results), 3
            )
        samples = metrics.get("split_samples", 0.0)
        for key in split_means:
            if key in metrics:
                metrics[key] = round(metrics[key] / samples, 1) if samples else 0.0

    total = sum(result.total_committed for result in shard_results)
    sharding = spec.sharding or ShardingSpec()
    return ExperimentResult(
        name=spec.name,
        protocol=spec.protocol,
        backend=backend,
        duration_s=spec.duration_s,
        sites=sites,
        total_committed=total,
        throughput_kops=sum(result.throughput_kops for result in shard_results),
        replica_metrics=replica_metrics,
        metadata={
            "seed": spec.seed,
            "shards": sharding.shards,
            "placement": sharding.placement,
            "per_shard": [
                {
                    "shard": index,
                    "name": result.name,
                    "protocol": result.protocol,
                    "committed": result.total_committed,
                    "throughput_kops": round(result.throughput_kops, 3),
                }
                for index, result in enumerate(shard_results)
            ],
        },
        history=None,  # per-shard histories stay on .shards (no global order)
        shards=list(shard_results),
    )


class ShardedDeployment:
    """One sharded experiment spec bound to a backend, ready to run.

    Accepts the same backend names and options as
    :class:`~repro.experiment.deployment.Deployment`; plain
    ``Deployment(spec).run()`` delegates here whenever the spec carries a
    ``[sharding]`` table with more than one shard, so sharded specs run
    through the ordinary entry points (`repro run`, `repro check`, tests).
    """

    def __init__(
        self,
        spec: ExperimentSpec,
        backend: str = "sim",
        *,
        backend_instance: Any = None,
        **options: Any,
    ) -> None:
        # Backends come from the same registry (and take the same options)
        # as single-group deployments, so spec files move freely between
        # sharded and unsharded runs; Deployment passes its already-built
        # backend through instead of constructing a second one.
        self.spec = spec
        self.backend_name = backend
        self.subspecs = shard_subspecs(spec)
        self.backend = (
            backend_instance
            if backend_instance is not None
            else build_backend(backend, **options)
        )

    def run(self) -> ExperimentResult:
        """Deploy every shard group, run them together, aggregate the results."""
        from ..launch.backend import ProcessBackend  # lazy: avoids a cycle

        if isinstance(self.backend, SimBackend):
            shard_results = self._run_sim()
        elif isinstance(self.backend, (AsyncBackend, ProcessBackend)):
            # Both expose ``run_in_loop``; gathering them runs every shard
            # group concurrently — as coroutine sets sharing one loop on the
            # async backend, as independent process groups on proc (each
            # shard group gets its own supervisor and worker processes).
            shard_results = self._run_async()
        else:
            raise ConfigurationError(
                f"the {self.backend_name!r} backend does not support sharded "
                "deployments"
            )
        return aggregate_results(self.spec, self.backend_name, shard_results)

    # -- backends ------------------------------------------------------------

    def _run_sim(self) -> list[ExperimentResult]:
        # One scheduler: every shard group shares a single simulation
        # environment, so their events interleave in one virtual timeline and
        # one seeded random source keeps the run deterministic.  The shared
        # stream's seed mixes every shard's seed, so a per-shard seed
        # override changes the run on this backend too (the async backend
        # additionally gives each shard fully independent client streams).
        env = SimulationEnvironment(
            seed=zlib.crc32(repr([sub.seed for sub in self.subspecs]).encode())
        )
        prepared = [self.backend.prepare(sub, env=env) for sub in self.subspecs]
        env.run_for(self.spec.total_runtime_micros)
        return [self.backend.collect(run) for run in prepared]

    def _run_async(self) -> list[ExperimentResult]:
        async def run_all() -> list[ExperimentResult]:
            return list(
                await asyncio.gather(
                    *(self.backend.run_in_loop(sub) for sub in self.subspecs)
                )
            )

        # Honour the async backend's event-loop policy (``[runtime] uvloop``
        # or the CLI override) for the shared loop all shard groups run in.
        factory = None
        if isinstance(self.backend, AsyncBackend):
            factory = self.backend.loop_factory(self.spec)
        if factory is None:
            return asyncio.run(run_all())
        with asyncio.Runner(loop_factory=factory) as runner:
            return runner.run(run_all())


__all__ = ["ShardedDeployment", "aggregate_results", "shard_subspecs"]
