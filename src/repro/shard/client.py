"""A key-value client spanning every shard of a sharded simulation.

:class:`ShardedKVClient` gives scripts and tests the same synchronous
``put``/``get``/``delete`` API as :class:`~repro.kvstore.client.SimKVClient`,
but against N shard groups at once: each single-key operation is routed to
the shard that owns the key, and :meth:`get_many` fans a multi-key read out
shard by shard and merges the per-shard reads back into one mapping.

All operations can be recorded into one shared
:class:`~repro.checker.history.OpHistory`; because the router keeps every
key on exactly one shard, that history splits cleanly per shard for
linearizability checking (see :func:`repro.shard.check.split_history`).
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence

from ..checker.history import OpHistory
from ..errors import ConfigurationError
from ..kvstore.client import SimKVClient
from ..sim.cluster import SimulatedCluster
from ..types import Micros, ReplicaId, seconds_to_micros
from .router import ShardRouter


class ShardedKVClient:
    """Routes key-value commands across the shard groups of one deployment.

    Args:
        clusters: One simulated cluster per shard, in shard order.  The
            clusters should share one simulation environment (as built by
            :class:`~repro.shard.deployment.ShardedDeployment`); each
            operation advances that shared virtual time until its commit.
        router: The key→shard router; defaults to hash placement over
            ``len(clusters)`` shards.
        replica_id: The replica (site index) this client submits to, on
            every shard group.
        history: Record every operation into this history for checking.

    The whole sharded client is ONE logical client: every per-shard
    sub-client shares one name and one sequence-number stream, so a recorded
    history shows a single sequential client whose operations span shards —
    which is exactly what the cross-shard client-order pass of
    :func:`repro.shard.check.client_order_violation` verifies.
    """

    _client_ids = itertools.count(1)

    def __init__(
        self,
        clusters: Sequence[SimulatedCluster],
        router: Optional[ShardRouter] = None,
        replica_id: ReplicaId = 0,
        timeout: Micros = seconds_to_micros(30.0),
        history: Optional[OpHistory] = None,
    ) -> None:
        if not clusters:
            raise ConfigurationError("a sharded client needs at least one cluster")
        self.router = router if router is not None else ShardRouter(len(clusters))
        if self.router.shards != len(clusters):
            raise ConfigurationError(
                f"router expects {self.router.shards} shards, got "
                f"{len(clusters)} clusters"
            )
        self.history = history
        self.name = f"sharded-kv-{next(self._client_ids)}@r{replica_id}"
        shared_seq = itertools.count(1)
        self._clients = [
            SimKVClient(
                cluster,
                replica_id,
                timeout=timeout,
                history=history,
                name=self.name,
                seq=shared_seq,
            )
            for cluster in clusters
        ]

    # -- public API ----------------------------------------------------------

    @property
    def shards(self) -> int:
        return self.router.shards

    def client_for(self, key: str) -> SimKVClient:
        """The per-shard client owning *key*."""
        return self._clients[self.router.shard_of(key)]

    def put(self, key: str, value: bytes) -> Optional[bytes]:
        """Replicate a PUT on the owning shard; returns the previous value."""
        return self.client_for(key).put(key, value)

    def get(self, key: str) -> Optional[bytes]:
        """Replicate a linearizable GET on the owning shard."""
        return self.client_for(key).get(key)

    def delete(self, key: str) -> bool:
        """Replicate a DELETE on the owning shard; returns whether it existed."""
        return self.client_for(key).delete(key)

    def get_many(self, keys: Sequence[str]) -> dict[str, Optional[bytes]]:
        """Read several keys, merging the per-shard reads into one mapping.

        Keys are grouped by owning shard and each group is read through that
        shard's protocol, so every individual read is linearizable on its
        shard; the merged mapping is *not* a cross-shard snapshot (no global
        total order exists across shards — that is the trade sharding makes).
        """
        merged: dict[str, Optional[bytes]] = {}
        for shard, group in self.router.partition(list(keys)).items():
            client = self._clients[shard]
            for key in group:
                merged[key] = client.get(key)
        return merged


__all__ = ["ShardedKVClient"]
