"""Key→shard routing: which protocol group owns a key.

The router is the contract the whole sharding subsystem rests on: it is a
pure function of the key (deterministic across processes, independent of
``PYTHONHASHSEED``), so every client — and the consistency checker after the
fact — agrees on which shard a key lives on.  Two placements are offered:

* ``hash`` — CRC-32 of the UTF-8 key, modulo the shard count.  Spreads any
  key population near-uniformly; no locality.
* ``range`` — lexicographic range partitioning: the key's leading bytes are
  read as a fraction in [0, 1) over the printable-ASCII alphabet (bytes
  outside it clamp to the ends) and bucketed into equal-width intervals, so
  keys that sort adjacently land on the same shard (``shard_of`` is
  monotone in the key's byte order for printable keys).  Balance then
  depends on the key distribution — keys sharing a long common prefix pile
  onto one shard, which is the locality/balance trade range partitioning
  makes; hash placement balances better for synthetic uniform keys.
"""

from __future__ import annotations

import zlib

from ..errors import ConfigurationError
from ..experiment.spec import PLACEMENTS, ShardingSpec

#: How many leading bytes the range placement reads as a fraction.
_RANGE_PREFIX_BYTES = 8
#: The range alphabet: printable ASCII (space .. tilde), the span real key
#: populations live in; equal-width intervals over the raw 0..255 byte space
#: would leave most shards empty for ASCII keys.
_RANGE_LOW, _RANGE_BASE = 0x20, 0x5F


class ShardRouter:
    """Maps keys to shard indices under a fixed placement strategy."""

    def __init__(self, shards: int, placement: str = "hash") -> None:
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        if placement not in PLACEMENTS:
            raise ConfigurationError(
                f"unknown placement {placement!r}; one of {PLACEMENTS}"
            )
        self.shards = shards
        self.placement = placement

    @classmethod
    def from_spec(cls, sharding: ShardingSpec) -> "ShardRouter":
        return cls(sharding.shards, sharding.placement)

    def shard_of(self, key: str) -> int:
        """The shard index owning *key* (stable across runs and processes)."""
        if self.shards == 1:
            return 0
        if self.placement == "hash":
            return zlib.crc32(key.encode("utf-8")) % self.shards
        return self._range_shard(key)

    def _range_shard(self, key: str) -> int:
        raw = key.encode("utf-8")[:_RANGE_PREFIX_BYTES]
        fraction, scale = 0.0, 1.0
        for byte in raw:
            digit = min(max(byte, _RANGE_LOW), _RANGE_LOW + _RANGE_BASE - 1) - _RANGE_LOW
            scale /= _RANGE_BASE
            fraction += digit * scale
        return min(int(fraction * self.shards), self.shards - 1)

    def partition(self, keys: list[str]) -> dict[int, list[str]]:
        """Group *keys* by owning shard (insertion order preserved)."""
        groups: dict[int, list[str]] = {}
        for key in keys:
            groups.setdefault(self.shard_of(key), []).append(key)
        return groups

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardRouter(shards={self.shards}, placement={self.placement!r})"


__all__ = ["ShardRouter"]
