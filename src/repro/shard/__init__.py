"""Sharded keyspace deployments: N independent protocol groups, one keyspace.

Clock-RSM totally orders *all* commands through one replica group, so a
single deployment's throughput is capped by one total order no matter how
many clients submit.  This package opens the scale-out axis the paper defers
to state partitioning: an experiment spec with a ``[sharding]`` table deploys
``shards`` independent protocol groups over the same site list, a
key→shard :class:`ShardRouter` keeps every key on exactly one group, and the
:class:`ShardedDeployment` runs the groups on either backend (simulator:
all groups interleaved on one scheduler; asyncio: concurrent clusters in one
event loop) and aggregates the per-shard results.

Consistency checking composes: linearizability is per-key local, and the
router guarantees per-key single-shard residency, so each shard's history is
checked independently, plus a cross-shard sanity pass that each client's
operations stayed sequential (see :mod:`repro.shard.check`).
"""

from .check import ShardedCheckReport, check_sharded_spec, client_order_violation
from .client import ShardedKVClient
from .deployment import ShardedDeployment, aggregate_results, shard_subspecs
from .router import ShardRouter

__all__ = [
    "ShardRouter",
    "ShardedKVClient",
    "ShardedDeployment",
    "ShardedCheckReport",
    "aggregate_results",
    "shard_subspecs",
    "check_sharded_spec",
    "client_order_violation",
]
