"""Consistency checking for sharded deployments.

Linearizability is a *local* property: a history over many objects is
linearizable iff its per-object sub-histories are (Herlihy & Wing 1990,
Theorem 1), and the shard router keeps every key on exactly one shard.  A
sharded run is therefore checked shard by shard — each shard group's
history, with its own apply orders, goes through the ordinary
:func:`repro.checker.check_history` — plus one cross-shard sanity pass over
client ordering, because the per-shard checks silently assume a sane client
harness and a broken one would otherwise vacuously pass.  The pass adapts to
the workload: closed-loop clients must be *sequential* (never invoking an
operation before the previous one returned), while open-loop clients
(saturating windows, pipelined submissions) are only required to invoke in
submission (seqno) order — demanding sequentiality of them would false-flag
healthy runs (see :func:`spec_is_closed_loop`).

What sharding deliberately gives up is also visible here: there is no total
order *across* shards, so no cross-shard snapshot guarantee is checked —
only per-key linearizability and per-client ordering, which is the
consistency contract a sharded Clock-RSM offers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional, Sequence

from ..checker.history import OpHistory
from ..checker.linearizability import CheckerError, CheckReport, check_history
from ..experiment.check import CheckedRun
from ..experiment.spec import ExperimentSpec
from ..kvstore.commands import decode_op
from .deployment import ShardedDeployment
from .router import ShardRouter


def split_history(history: OpHistory, router: ShardRouter) -> dict[int, OpHistory]:
    """Partition one recorded history by the shard that owns each op's key.

    This is for histories recorded through a shared
    :class:`~repro.shard.client.ShardedKVClient` session; apply orders are
    per shard group and must be recorded onto the returned histories by the
    caller (they are not derivable from the merged history).
    """
    shards: dict[int, OpHistory] = {index: OpHistory() for index in range(router.shards)}
    for op in history:
        try:
            key = decode_op(op.payload).key
        except Exception as exc:
            raise CheckerError(
                f"cannot route op {op.command_id} to a shard: {exc}"
            ) from exc
        shards[router.shard_of(key)].add(op)
    return shards


def client_order_violation(
    histories: Sequence[OpHistory], closed_loop: bool = True
) -> Optional[str]:
    """Check that every client's operation stream is properly ordered.

    With ``closed_loop=True`` (the default), a client must be *sequential*:
    it never invokes an operation before its previous operation (possibly on
    another shard) returned.  Operations still pending when the run ended
    terminate their client's stream, so they constrain nothing.

    With ``closed_loop=False`` — saturating workloads and pipelined clients,
    which intentionally keep a window of operations outstanding — the
    sequential condition does not hold and must not be demanded: the
    invariant an open-loop client still guarantees is that its seqnos are
    assigned in submission order, so invocation times must be non-decreasing
    in seqno.  Demanding the closed-loop condition of an open-loop run
    false-flags perfectly healthy histories (the PR-4 gap).

    Returns a description of the first violation, or ``None``.
    """
    by_client: dict[str, list] = {}
    for history in histories:
        for op in history:
            by_client.setdefault(op.client, []).append(op)
    for client, ops in by_client.items():
        ops.sort(key=lambda op: op.seqno)
        previous = None
        for op in ops:
            if previous is not None:
                if closed_loop:
                    if (
                        previous.returned_at is not None
                        and op.invoked_at < previous.returned_at
                    ):
                        return (
                            f"client {client!r} invoked op #{op.seqno} at "
                            f"{op.invoked_at} before op #{previous.seqno} returned "
                            f"at {previous.returned_at}"
                        )
                elif op.invoked_at < previous.invoked_at:
                    return (
                        f"client {client!r} invoked op #{op.seqno} at "
                        f"{op.invoked_at}, before op #{previous.seqno} invoked at "
                        f"{previous.invoked_at} (submission order broken)"
                    )
            previous = op
    return None


def spec_is_closed_loop(spec: ExperimentSpec) -> bool:
    """Whether *spec*'s clients await each commit before the next invocation.

    Saturating workloads keep a window of outstanding commands per site, and
    a ``pipeline_depth`` above one lets even think-time clients race several
    submissions — both are open-loop in the sense the cross-shard
    client-order pass cares about.
    """
    if spec.workload.scenario == "saturating":
        return False
    if spec.batching is not None and spec.batching.pipeline_depth > 1:
        return False
    return True


@dataclass
class ShardedCheckReport:
    """The verdict of a sharded run: one report per shard plus the
    cross-shard client-order pass.  Mirrors the
    :class:`~repro.checker.linearizability.CheckReport` interface so CLI and
    tests treat sharded and single-group verdicts uniformly."""

    shard_reports: list[CheckReport]
    client_order: Optional[str] = None
    #: Which client-order condition was applied: sequential (closed-loop) or
    #: submission-order (open-loop; saturating / pipelined clients).
    closed_loop: bool = True

    @property
    def linearizable(self) -> bool:
        return self.client_order is None and all(
            report.linearizable for report in self.shard_reports
        )

    @property
    def violation(self) -> Optional[str]:
        for index, report in enumerate(self.shard_reports):
            if not report.linearizable:
                return f"shard {index}: {report.violation}"
        if self.client_order is not None:
            return f"cross-shard client order: {self.client_order}"
        return None

    @property
    def ops(self) -> int:
        return sum(report.ops for report in self.shard_reports)

    def describe(self) -> str:
        mode = "sequential" if self.closed_loop else "open-loop"
        if self.linearizable:
            per_shard = ", ".join(
                f"s{index}:{report.ops}" for index, report in enumerate(self.shard_reports)
            )
            return (
                f"linearizable on every shard ({len(self.shard_reports)} shards, "
                f"{self.ops} ops: {per_shard}; cross-shard client order ok, "
                f"{mode})"
            )
        return f"NOT linearizable: {self.violation}"

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "linearizable": self.linearizable,
            "method": "per-shard",
            "shards": [report.to_dict() for report in self.shard_reports],
            "client_order_ok": self.client_order is None,
            "client_order_mode": "sequential" if self.closed_loop else "open-loop",
        }
        if self.violation is not None:
            data["violation"] = self.violation
        return data


def check_sharded_spec(
    spec: ExperimentSpec, backend: str = "sim", **options: Any
) -> CheckedRun:
    """Run a sharded *spec* with history recording and check every shard.

    The returned :class:`~repro.experiment.check.CheckedRun` carries the
    aggregate result (per-shard results under ``result.shards``) and a
    :class:`ShardedCheckReport` verdict.
    """
    recorded = replace(spec, record_history=True)
    result = ShardedDeployment(recorded, backend, **options).run()
    assert result.shards is not None  # sharded deployments always attach them
    histories = []
    shard_reports = []
    for shard_result in result.shards:
        assert shard_result.history is not None  # record_history guarantees it
        histories.append(shard_result.history)
        shard_reports.append(check_history(shard_result.history))
    closed_loop = spec_is_closed_loop(spec)
    report = ShardedCheckReport(
        shard_reports=shard_reports,
        client_order=client_order_violation(histories, closed_loop=closed_loop),
        closed_loop=closed_loop,
    )
    return CheckedRun(result=result, report=report)


__all__ = [
    "ShardedCheckReport",
    "check_sharded_spec",
    "client_order_violation",
    "spec_is_closed_loop",
    "split_history",
]
