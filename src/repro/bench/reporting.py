"""Plain-text reporting of experiment results.

The harness prints the same rows/series the paper's tables and figures show,
so a benchmark run's output can be compared side by side with the paper (see
EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from .latency_experiments import LatencyExperimentResult
from .throughput import ThroughputResult


def format_table(rows: Sequence[Mapping[str, object]], title: str = "") -> str:
    """Render a list of homogeneous dict rows as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)\n" if title else "(no rows)\n"
    columns = list(rows[0].keys())
    widths = {
        column: max(len(str(column)), *(len(str(row.get(column, ""))) for row in rows))
        for column in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(column).ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[column] for column in columns))
    for row in rows:
        lines.append(
            " | ".join(str(row.get(column, "")).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines) + "\n"


def format_latency_table(
    results: Mapping[str, LatencyExperimentResult], sites: Sequence[str], title: str = ""
) -> str:
    """Per-site mean and 95th-percentile latency for every protocol."""
    rows = []
    for protocol, result in results.items():
        for site in sites:
            summary = result.summaries.get(site)
            if summary is None:
                continue
            rows.append(
                {
                    "protocol": protocol,
                    "site": site,
                    "mean_ms": round(summary.mean_ms, 1),
                    "p95_ms": round(summary.p95_ms, 1),
                    "count": summary.count,
                }
            )
    return format_table(rows, title)


def format_cdf(
    cdfs: Mapping[str, list[tuple[float, float]]],
    title: str = "",
    fractions: Iterable[float] = (0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99),
) -> str:
    """Summarize latency CDFs at a fixed set of cumulative fractions."""
    rows = []
    for protocol, points in cdfs.items():
        if not points:
            continue
        row: dict[str, object] = {"protocol": protocol}
        for fraction in fractions:
            value = next((v for v, cumulative in points if cumulative >= fraction), points[-1][0])
            row[f"p{int(fraction * 100)}"] = round(value, 1)
        rows.append(row)
    return format_table(rows, title)


def format_throughput(results: Sequence[ThroughputResult], title: str = "") -> str:
    """Figure 8 series: throughput (kop/s) per protocol and command size."""
    rows = [
        {
            "command_size": result.command_size,
            "protocol": result.protocol,
            "throughput_kops": round(result.throughput_kops, 1),
            "committed": result.committed,
            "max_replica_utilization": max(result.replica_utilization.values()),
        }
        for result in results
    ]
    return format_table(rows, title)


__all__ = ["format_table", "format_latency_table", "format_cdf", "format_throughput"]
