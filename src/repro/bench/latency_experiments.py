"""Wide-area latency experiments (Figures 1-6).

Each experiment deploys the replicated key-value store across a set of EC2
sites (one-way delays from Table III), attaches the paper's closed-loop
clients, runs for a configurable amount of virtual time, and reports per-site
average and 95th-percentile commit latency (and full CDFs for the
distribution figures).

Since the experiment-API redesign, this harness is a thin adapter over
:mod:`repro.experiment`: every run converts its
:class:`LatencyExperimentConfig` into a declarative
:class:`~repro.experiment.ExperimentSpec` (see :meth:`~LatencyExperimentConfig.to_spec`)
and executes it through a :class:`~repro.experiment.Deployment` on the
simulator backend.  The same specs can be saved as TOML/JSON and replayed
with ``repro run``, on either backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..experiment.deployment import Deployment
from ..experiment.result import ExperimentResult
from ..experiment.spec import ExperimentSpec, WorkloadSpec
from ..metrics.stats import LatencySummary
from ..protocols.registry import protocol_capabilities
from ..types import Micros, ms_to_micros, seconds_to_micros

#: The protocols compared in every latency figure of the paper.
LATENCY_PROTOCOLS: tuple[str, ...] = ("paxos", "mencius-bcast", "paxos-bcast", "clock-rsm")

#: Replica placements used by the paper's EC2 experiments.
FIVE_SITES: tuple[str, ...] = ("CA", "VA", "IR", "JP", "SG")
THREE_SITES: tuple[str, ...] = ("CA", "VA", "IR")


@dataclass(frozen=True)
class LatencyExperimentConfig:
    """Shared knobs of a latency experiment run."""

    sites: tuple[str, ...]
    leader_site: str
    balanced: bool = True
    origin_site: Optional[str] = None
    duration: Micros = seconds_to_micros(12.0)
    warmup: Micros = seconds_to_micros(2.0)
    clients_per_replica: int = 20
    payload_size: int = 64
    clocktime_interval: Micros = ms_to_micros(5.0)
    jitter_fraction: float = 0.02
    seed: int = 42

    def to_spec(
        self, protocol: str, cdf_sites: Sequence[str] = ()
    ) -> ExperimentSpec:
        """The declarative experiment spec equivalent to this configuration.

        ``duration`` is the total run time including the warmup (historical
        harness semantics); the spec separates measurement duration and
        warmup explicitly.
        """
        if self.balanced:
            workload = WorkloadSpec(
                scenario="balanced",
                clients_per_site=self.clients_per_replica,
                payload_size=self.payload_size,
            )
        else:
            workload = WorkloadSpec(
                scenario="imbalanced",
                clients_per_site=self.clients_per_replica,
                payload_size=self.payload_size,
                origin_site=self.origin_site or self.sites[0],
            )
        leader_based = protocol_capabilities(protocol).leader_based
        measured = max(self.duration - self.warmup, 1)
        return ExperimentSpec(
            name=f"{protocol}-{'balanced' if self.balanced else 'imbalanced'}",
            protocol=protocol,
            sites=self.sites,
            leader_site=self.leader_site if leader_based else None,
            latency="ec2",
            jitter_fraction=self.jitter_fraction,
            workload=workload,
            duration_s=measured / 1_000_000,
            warmup_s=self.warmup / 1_000_000,
            seed=self.seed,
            clocktime_interval_ms=self.clocktime_interval / 1_000,
            cdf_sites=tuple(cdf_sites),
        )


@dataclass
class LatencyExperimentResult:
    """Per-site latency summaries for one (protocol, workload) pair."""

    protocol: str
    config: LatencyExperimentConfig
    summaries: dict[str, LatencySummary]
    cdfs: dict[str, list[tuple[float, float]]] = field(default_factory=dict)

    @classmethod
    def from_experiment(
        cls, config: LatencyExperimentConfig, result: ExperimentResult
    ) -> "LatencyExperimentResult":
        summaries = {
            site: site_result.summary
            for site, site_result in result.sites.items()
            if site_result.summary is not None
        }
        cdfs = {
            site: site_result.cdf_ms
            for site, site_result in result.sites.items()
            if site_result.cdf_ms is not None
        }
        return cls(result.protocol, config, summaries, cdfs)

    def mean_ms(self, site: str) -> float:
        return self.summaries[site].mean_ms

    def p95_ms(self, site: str) -> float:
        return self.summaries[site].p95_ms

    def average_over_sites(self) -> float:
        values = [summary.mean_ms for summary in self.summaries.values()]
        return sum(values) / len(values)

    def highest_over_sites(self) -> float:
        return max(summary.mean_ms for summary in self.summaries.values())


def latency_experiment(
    protocol: str, experiment: LatencyExperimentConfig, collect_cdf_sites: Sequence[str] = ()
) -> LatencyExperimentResult:
    """Run one latency experiment and summarize per-site commit latency."""
    spec = experiment.to_spec(protocol, cdf_sites=collect_cdf_sites)
    result = Deployment(spec, backend="sim").run()
    return LatencyExperimentResult.from_experiment(experiment, result)


def run_latency_comparison(
    experiment: LatencyExperimentConfig,
    protocols: Sequence[str] = LATENCY_PROTOCOLS,
    collect_cdf_sites: Sequence[str] = (),
) -> dict[str, LatencyExperimentResult]:
    """Run all protocols under the same experiment configuration."""
    return {
        protocol: latency_experiment(protocol, experiment, collect_cdf_sites)
        for protocol in protocols
    }


def run_imbalanced_comparison(
    sites: Sequence[str] = FIVE_SITES,
    leader_site: str = "CA",
    protocols: Sequence[str] = LATENCY_PROTOCOLS,
    **overrides,
) -> dict[str, LatencyExperimentResult]:
    """Figure 5: one imbalanced run per origin site, merged per protocol.

    The paper runs the imbalanced workload once per origin replica (clients
    issue requests to only that replica) and plots, for each site, the
    latency measured in the run where that site was the origin.
    """
    merged: dict[str, LatencyExperimentResult] = {}
    for origin_site in sites:
        config = LatencyExperimentConfig(
            sites=tuple(sites),
            leader_site=leader_site,
            balanced=False,
            origin_site=origin_site,
            **overrides,
        )
        for protocol in protocols:
            result = latency_experiment(protocol, config)
            if protocol not in merged:
                merged[protocol] = LatencyExperimentResult(protocol, config, {})
            if origin_site in result.summaries:
                merged[protocol].summaries[origin_site] = result.summaries[origin_site]
    return merged


def latency_cdf_experiment(
    experiment: LatencyExperimentConfig,
    cdf_site: str,
    protocols: Sequence[str] = LATENCY_PROTOCOLS,
) -> dict[str, list[tuple[float, float]]]:
    """Latency distribution at one site for every protocol (Figures 3/4/6)."""
    results = run_latency_comparison(experiment, protocols, collect_cdf_sites=[cdf_site])
    return {protocol: result.cdfs.get(cdf_site, []) for protocol, result in results.items()}


# ---------------------------------------------------------------------------
# Canonical experiment configurations matching the paper's figures
# ---------------------------------------------------------------------------


def figure1_config(leader_site: str, **overrides) -> LatencyExperimentConfig:
    """Figure 1: five replicas, balanced workload, leader at CA or VA."""
    return LatencyExperimentConfig(sites=FIVE_SITES, leader_site=leader_site, **overrides)


def figure2_config(leader_site: str, **overrides) -> LatencyExperimentConfig:
    """Figure 2: three replicas, balanced workload, leader at CA or VA."""
    return LatencyExperimentConfig(sites=THREE_SITES, leader_site=leader_site, **overrides)


def figure5_config(**overrides) -> LatencyExperimentConfig:
    """Figure 5: five replicas, imbalanced workload originating at CA."""
    return LatencyExperimentConfig(
        sites=FIVE_SITES, leader_site="CA", balanced=False, origin_site="CA", **overrides
    )


def figure6_config(**overrides) -> LatencyExperimentConfig:
    """Figure 6: five replicas, imbalanced workload originating at SG."""
    return LatencyExperimentConfig(
        sites=FIVE_SITES, leader_site="CA", balanced=False, origin_site="SG", **overrides
    )


__all__ = [
    "LATENCY_PROTOCOLS",
    "FIVE_SITES",
    "THREE_SITES",
    "LatencyExperimentConfig",
    "LatencyExperimentResult",
    "latency_experiment",
    "run_latency_comparison",
    "latency_cdf_experiment",
    "figure1_config",
    "figure2_config",
    "figure5_config",
    "figure6_config",
]
