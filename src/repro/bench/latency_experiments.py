"""Wide-area latency experiments (Figures 1-6).

Each experiment deploys the replicated key-value store across a set of EC2
sites inside the simulator (one-way delays from Table III), attaches the
paper's closed-loop clients, runs for a configurable amount of virtual time,
and reports per-site average and 95th-percentile commit latency (and full
CDFs for the distribution figures).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..analysis.ec2 import ec2_latency_matrix
from ..config import ClusterSpec, ProtocolConfig
from ..kvstore.commands import random_update
from ..kvstore.kv import KVStateMachine
from ..metrics.stats import LatencySummary
from ..sim.cluster import SimulatedCluster
from ..sim.network import NetworkOptions
from ..types import Micros, ms_to_micros, seconds_to_micros
from ..workload.generator import WorkloadOptions
from ..workload.scenarios import balanced_workload, imbalanced_workload

#: The protocols compared in every latency figure of the paper.
LATENCY_PROTOCOLS: tuple[str, ...] = ("paxos", "mencius-bcast", "paxos-bcast", "clock-rsm")

#: Replica placements used by the paper's EC2 experiments.
FIVE_SITES: tuple[str, ...] = ("CA", "VA", "IR", "JP", "SG")
THREE_SITES: tuple[str, ...] = ("CA", "VA", "IR")


@dataclass(frozen=True)
class LatencyExperimentConfig:
    """Shared knobs of a latency experiment run."""

    sites: tuple[str, ...]
    leader_site: str
    balanced: bool = True
    origin_site: Optional[str] = None
    duration: Micros = seconds_to_micros(12.0)
    warmup: Micros = seconds_to_micros(2.0)
    clients_per_replica: int = 20
    payload_size: int = 64
    clocktime_interval: Micros = ms_to_micros(5.0)
    jitter_fraction: float = 0.02
    seed: int = 42


@dataclass
class LatencyExperimentResult:
    """Per-site latency summaries for one (protocol, workload) pair."""

    protocol: str
    config: LatencyExperimentConfig
    summaries: dict[str, LatencySummary]
    cdfs: dict[str, list[tuple[float, float]]] = field(default_factory=dict)

    def mean_ms(self, site: str) -> float:
        return self.summaries[site].mean_ms

    def p95_ms(self, site: str) -> float:
        return self.summaries[site].p95_ms

    def average_over_sites(self) -> float:
        values = [summary.mean_ms for summary in self.summaries.values()]
        return sum(values) / len(values)

    def highest_over_sites(self) -> float:
        return max(summary.mean_ms for summary in self.summaries.values())


def _build_cluster(
    protocol: str, experiment: LatencyExperimentConfig
) -> SimulatedCluster:
    spec = ClusterSpec.from_sites(list(experiment.sites))
    matrix = ec2_latency_matrix(experiment.sites)
    protocol_config = ProtocolConfig(
        leader=spec.by_site(experiment.leader_site).replica_id,
        clocktime_interval=experiment.clocktime_interval,
    )
    return SimulatedCluster(
        spec,
        matrix,
        protocol,
        protocol_config,
        seed=experiment.seed,
        network_options=NetworkOptions(jitter_fraction=experiment.jitter_fraction),
        state_machine_factory=lambda _rid: KVStateMachine(),
    )


def latency_experiment(
    protocol: str, experiment: LatencyExperimentConfig, collect_cdf_sites: Sequence[str] = ()
) -> LatencyExperimentResult:
    """Run one latency experiment and summarize per-site commit latency."""
    cluster = _build_cluster(protocol, experiment)
    options = WorkloadOptions(
        clients_per_replica=experiment.clients_per_replica,
        payload_size=experiment.payload_size,
        # The paper's clients update randomly selected keys of the replicated
        # key-value store with values of the configured size.
        payload_factory=lambda rng: random_update(rng, value_size=experiment.payload_size),
    )
    if experiment.balanced:
        handle = balanced_workload(cluster, options, warmup=experiment.warmup)
    else:
        origin_site = experiment.origin_site or experiment.sites[0]
        origin = cluster.spec.by_site(origin_site).replica_id
        handle = imbalanced_workload(cluster, origin, options, warmup=experiment.warmup)
    cluster.run_for(experiment.duration)
    handle.stop()
    cluster.assert_consistent_order()

    summaries: dict[str, LatencySummary] = {}
    cdfs: dict[str, list[tuple[float, float]]] = {}
    for replica_spec in cluster.spec.replicas:
        rid = replica_spec.replica_id
        if handle.collector.count(rid) == 0:
            continue
        summaries[replica_spec.site] = handle.collector.summary(rid)
        if replica_spec.site in collect_cdf_sites:
            cdfs[replica_spec.site] = handle.collector.cdf_ms(rid)
    return LatencyExperimentResult(protocol, experiment, summaries, cdfs)


def run_latency_comparison(
    experiment: LatencyExperimentConfig,
    protocols: Sequence[str] = LATENCY_PROTOCOLS,
    collect_cdf_sites: Sequence[str] = (),
) -> dict[str, LatencyExperimentResult]:
    """Run all protocols under the same experiment configuration."""
    return {
        protocol: latency_experiment(protocol, experiment, collect_cdf_sites)
        for protocol in protocols
    }


def run_imbalanced_comparison(
    sites: Sequence[str] = FIVE_SITES,
    leader_site: str = "CA",
    protocols: Sequence[str] = LATENCY_PROTOCOLS,
    **overrides,
) -> dict[str, LatencyExperimentResult]:
    """Figure 5: one imbalanced run per origin site, merged per protocol.

    The paper runs the imbalanced workload once per origin replica (clients
    issue requests to only that replica) and plots, for each site, the
    latency measured in the run where that site was the origin.
    """
    merged: dict[str, LatencyExperimentResult] = {}
    for origin_site in sites:
        config = LatencyExperimentConfig(
            sites=tuple(sites),
            leader_site=leader_site,
            balanced=False,
            origin_site=origin_site,
            **overrides,
        )
        for protocol in protocols:
            result = latency_experiment(protocol, config)
            if protocol not in merged:
                merged[protocol] = LatencyExperimentResult(protocol, config, {})
            if origin_site in result.summaries:
                merged[protocol].summaries[origin_site] = result.summaries[origin_site]
    return merged


def latency_cdf_experiment(
    experiment: LatencyExperimentConfig,
    cdf_site: str,
    protocols: Sequence[str] = LATENCY_PROTOCOLS,
) -> dict[str, list[tuple[float, float]]]:
    """Latency distribution at one site for every protocol (Figures 3/4/6)."""
    results = run_latency_comparison(experiment, protocols, collect_cdf_sites=[cdf_site])
    return {protocol: result.cdfs.get(cdf_site, []) for protocol, result in results.items()}


# ---------------------------------------------------------------------------
# Canonical experiment configurations matching the paper's figures
# ---------------------------------------------------------------------------


def figure1_config(leader_site: str, **overrides) -> LatencyExperimentConfig:
    """Figure 1: five replicas, balanced workload, leader at CA or VA."""
    return LatencyExperimentConfig(sites=FIVE_SITES, leader_site=leader_site, **overrides)


def figure2_config(leader_site: str, **overrides) -> LatencyExperimentConfig:
    """Figure 2: three replicas, balanced workload, leader at CA or VA."""
    return LatencyExperimentConfig(sites=THREE_SITES, leader_site=leader_site, **overrides)


def figure5_config(**overrides) -> LatencyExperimentConfig:
    """Figure 5: five replicas, imbalanced workload originating at CA."""
    return LatencyExperimentConfig(
        sites=FIVE_SITES, leader_site="CA", balanced=False, origin_site="CA", **overrides
    )


def figure6_config(**overrides) -> LatencyExperimentConfig:
    """Figure 6: five replicas, imbalanced workload originating at SG."""
    return LatencyExperimentConfig(
        sites=FIVE_SITES, leader_site="CA", balanced=False, origin_site="SG", **overrides
    )


__all__ = [
    "LATENCY_PROTOCOLS",
    "FIVE_SITES",
    "THREE_SITES",
    "LatencyExperimentConfig",
    "LatencyExperimentResult",
    "latency_experiment",
    "run_latency_comparison",
    "latency_cdf_experiment",
    "figure1_config",
    "figure2_config",
    "figure5_config",
    "figure6_config",
]
