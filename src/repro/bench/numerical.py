"""Numerical experiments: Table II, Figure 7 and Table IV.

These use only the analytical latency model plus the Table III measurements;
no simulation is involved, exactly as in the paper's Section VI-C.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..analysis.comparison import (
    aggregate_reduction,
    average_latency_by_group_size,
)
from ..analysis.ec2 import EC2_SITES, ec2_latency_matrix
from ..analysis.latency_model import (
    clock_rsm_balanced,
    clock_rsm_imbalanced,
    mencius_bcast_balanced_bounds,
    mencius_bcast_imbalanced,
    paxos_bcast_latency,
    paxos_latency,
)
from ..net.latency import LatencyMatrix
from ..types import micros_to_ms


def table2_rows(
    sites: Sequence[str], leader_site: str, matrix: Optional[LatencyMatrix] = None
) -> list[dict[str, object]]:
    """Table II instantiated for a concrete placement.

    One row per (protocol, replica) with the analytical commit latency in
    milliseconds under balanced and imbalanced workloads.
    """
    full = matrix if matrix is not None else ec2_latency_matrix(sites)
    group = full.restricted_to(sites)
    leader = list(sites).index(leader_site)
    rows: list[dict[str, object]] = []
    for origin, site in enumerate(sites):
        mencius_low, mencius_high = mencius_bcast_balanced_bounds(group, origin)
        rows.append(
            {
                "site": site,
                "paxos_ms": round(micros_to_ms(paxos_latency(group, origin, leader)), 1),
                "paxos_bcast_ms": round(
                    micros_to_ms(paxos_bcast_latency(group, origin, leader)), 1
                ),
                "mencius_bcast_balanced_ms": (
                    round(micros_to_ms(mencius_low), 1),
                    round(micros_to_ms(mencius_high), 1),
                ),
                "mencius_bcast_imbalanced_ms": round(
                    micros_to_ms(mencius_bcast_imbalanced(group, origin)), 1
                ),
                "clock_rsm_balanced_ms": round(
                    micros_to_ms(clock_rsm_balanced(group, origin)), 1
                ),
                "clock_rsm_imbalanced_ms": round(
                    micros_to_ms(clock_rsm_imbalanced(group, origin)), 1
                ),
            }
        )
    return rows


def figure7_data(
    sizes: Sequence[int] = (3, 5, 7), sites: Sequence[str] = EC2_SITES
) -> list[dict[str, float]]:
    """Figure 7: average 'all' / 'highest' latency per replica-group size."""
    rows = []
    for entry in average_latency_by_group_size(sizes, sites):
        rows.append(
            {
                "group_size": entry.group_size,
                "groups": entry.group_count,
                "paxos_bcast_all_ms": round(entry.paxos_bcast_all, 1),
                "clock_rsm_all_ms": round(entry.clock_rsm_all, 1),
                "paxos_bcast_highest_ms": round(entry.paxos_bcast_highest, 1),
                "clock_rsm_highest_ms": round(entry.clock_rsm_highest, 1),
            }
        )
    return rows


def table4_rows(
    sizes: Sequence[int] = (3, 5, 7), sites: Sequence[str] = EC2_SITES
) -> list[dict[str, float]]:
    """Table IV: latency reduction of Clock-RSM over Paxos-bcast per group size."""
    rows = []
    for size in sizes:
        wins, losses = aggregate_reduction(size, sites)
        rows.append(
            {
                "group_size": size,
                "bucket": "clock-rsm lower",
                "replica_percentage": round(100.0 * wins.replica_fraction, 1),
                "absolute_reduction_ms": round(wins.absolute_reduction_ms, 1),
                "relative_reduction_pct": round(100.0 * wins.relative_reduction, 1),
            }
        )
        rows.append(
            {
                "group_size": size,
                "bucket": "clock-rsm higher",
                "replica_percentage": round(100.0 * losses.replica_fraction, 1),
                "absolute_reduction_ms": round(losses.absolute_reduction_ms, 1),
                "relative_reduction_pct": round(100.0 * losses.relative_reduction, 1),
            }
        )
    return rows


__all__ = ["table2_rows", "figure7_data", "table4_rows"]
