"""Benchmark harness: experiment definitions for every table and figure.

Each experiment function builds the simulated deployment the paper describes
(replica placement, workload, protocol configuration), runs it, and returns a
structured result that the reporting helpers can print as the same rows or
series the paper shows.  The ``benchmarks/`` directory contains one
pytest-benchmark target per table/figure that calls into this package; the
``EXPERIMENTS.md`` document records paper-vs-measured values.
"""

from .latency_experiments import (
    LatencyExperimentResult,
    latency_cdf_experiment,
    latency_experiment,
    run_latency_comparison,
)
from .numerical import figure7_data, table2_rows, table4_rows
from .reporting import format_cdf, format_latency_table, format_table
from .throughput import ThroughputResult, run_throughput_comparison

__all__ = [
    "LatencyExperimentResult",
    "latency_experiment",
    "latency_cdf_experiment",
    "run_latency_comparison",
    "figure7_data",
    "table2_rows",
    "table4_rows",
    "ThroughputResult",
    "run_throughput_comparison",
    "format_table",
    "format_latency_table",
    "format_cdf",
]
