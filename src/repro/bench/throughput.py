"""Throughput experiment (Figure 8).

The paper saturates five replicas on a local Gigabit cluster with commands of
10, 100 and 1000 bytes and reports committed commands per second; CPU (mostly
message handling) is the bottleneck.  We reproduce the setup with the
simulator's CPU/batching cost model on a negligible-latency network: every
replica is saturated by window-based clients, and throughput is the number of
commands committed at the originating replicas during the measurement window.

Absolute numbers depend on the CPU cost constants (documented in DESIGN.md /
EXPERIMENTS.md); the protocol-to-protocol ratios and the crossover between
small and large commands are the reproduced result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..config import ClusterSpec, ProtocolConfig
from ..net.latency import LatencyMatrix
from ..sim.cluster import SimulatedCluster
from ..sim.node import CpuModel
from ..statemachine import NullStateMachine
from ..types import Micros, ms_to_micros, seconds_to_micros
from ..workload.scenarios import saturating_workload

#: Protocols shown in Figure 8.
THROUGHPUT_PROTOCOLS: tuple[str, ...] = ("clock-rsm", "mencius-bcast", "paxos", "paxos-bcast")

#: Command sizes shown in Figure 8 (bytes).
COMMAND_SIZES: tuple[int, ...] = (10, 100, 1000)

#: Local-cluster one-way latency (the paper's Gigabit LAN, ~0.1 ms RTT).
LOCAL_ONE_WAY_DELAY: Micros = 50

#: CPU model used for the throughput experiments.  The constants are scaled
#: so that a single run saturates within a short simulated window; only the
#: relative costs (fixed-per-message vs per-byte) shape the results.
DEFAULT_CPU_MODEL = CpuModel(
    recv_fixed=20.0,
    recv_per_byte=0.03,
    send_fixed=20.0,
    send_per_byte=0.03,
    client_fixed=5.0,
)


@dataclass(frozen=True)
class ThroughputResult:
    """Throughput of one (protocol, command size) combination."""

    protocol: str
    command_size: int
    committed: int
    window_seconds: float
    throughput_kops: float
    replica_utilization: dict[int, float]


def run_throughput_experiment(
    protocol: str,
    command_size: int,
    *,
    replica_count: int = 5,
    window: Micros = seconds_to_micros(1.0),
    warmup: Micros = ms_to_micros(200.0),
    outstanding_per_replica: int = 128,
    cpu_model: CpuModel = DEFAULT_CPU_MODEL,
    seed: int = 7,
) -> ThroughputResult:
    """Measure saturated throughput for one protocol and command size."""
    sites = [f"dc{i}" for i in range(replica_count)]
    spec = ClusterSpec.from_sites(sites)
    matrix = LatencyMatrix.uniform(sites, one_way=LOCAL_ONE_WAY_DELAY)
    cluster = SimulatedCluster(
        spec,
        matrix,
        protocol,
        ProtocolConfig(leader=0, clocktime_interval=ms_to_micros(5.0)),
        seed=seed,
        cpu_model=cpu_model,
        state_machine_factory=lambda _rid: NullStateMachine(),
    )
    handle = saturating_workload(
        cluster, command_size, window_per_replica=outstanding_per_replica, warmup=warmup
    )
    cluster.run_for(warmup + window)
    handle.stop()

    committed = handle.collector.count()
    window_seconds = window / 1_000_000
    utilization = {
        rid: round(node.utilization(warmup + window), 3) for rid, node in cluster.nodes.items()
    }
    return ThroughputResult(
        protocol=protocol,
        command_size=command_size,
        committed=committed,
        window_seconds=window_seconds,
        throughput_kops=committed / window_seconds / 1_000.0,
        replica_utilization=utilization,
    )


def run_throughput_comparison(
    protocols: Sequence[str] = THROUGHPUT_PROTOCOLS,
    command_sizes: Sequence[int] = COMMAND_SIZES,
    **kwargs,
) -> list[ThroughputResult]:
    """Figure 8: every protocol at every command size."""
    results = []
    for size in command_sizes:
        for protocol in protocols:
            results.append(run_throughput_experiment(protocol, size, **kwargs))
    return results


__all__ = [
    "THROUGHPUT_PROTOCOLS",
    "COMMAND_SIZES",
    "DEFAULT_CPU_MODEL",
    "ThroughputResult",
    "run_throughput_experiment",
    "run_throughput_comparison",
]
