"""Throughput experiment (Figure 8).

The paper saturates five replicas on a local Gigabit cluster with commands of
10, 100 and 1000 bytes and reports committed commands per second; CPU (mostly
message handling) is the bottleneck.  We reproduce the setup with the
simulator's CPU/batching cost model on a negligible-latency network: every
replica is saturated by window-based clients, and throughput is the number of
commands committed at the originating replicas during the measurement window.

Like the latency harness, each run is expressed as a declarative
:class:`~repro.experiment.ExperimentSpec` (saturating workload, uniform
local-cluster latency, CPU cost model) executed through
:class:`~repro.experiment.Deployment` on the simulator backend — see
:func:`throughput_spec`.

Absolute numbers depend on the CPU cost constants (documented in DESIGN.md /
EXPERIMENTS.md); the protocol-to-protocol ratios and the crossover between
small and large commands are the reproduced result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..experiment.deployment import Deployment
from ..experiment.spec import CpuSpec, ExperimentSpec, WorkloadSpec
from ..protocols.registry import protocol_capabilities
from ..sim.node import CpuModel
from ..types import Micros, ms_to_micros, seconds_to_micros

#: Protocols shown in Figure 8.
THROUGHPUT_PROTOCOLS: tuple[str, ...] = ("clock-rsm", "mencius-bcast", "paxos", "paxos-bcast")

#: Command sizes shown in Figure 8 (bytes).
COMMAND_SIZES: tuple[int, ...] = (10, 100, 1000)

#: Local-cluster one-way latency (the paper's Gigabit LAN, ~0.1 ms RTT).
LOCAL_ONE_WAY_DELAY: Micros = 50

#: CPU model used for the throughput experiments.  The constants are scaled
#: so that a single run saturates within a short simulated window; only the
#: relative costs (fixed-per-message vs per-byte) shape the results.
DEFAULT_CPU_MODEL = CpuModel(
    recv_fixed=20.0,
    recv_per_byte=0.03,
    send_fixed=20.0,
    send_per_byte=0.03,
    client_fixed=5.0,
)


@dataclass(frozen=True)
class ThroughputResult:
    """Throughput of one (protocol, command size) combination."""

    protocol: str
    command_size: int
    committed: int
    window_seconds: float
    throughput_kops: float
    replica_utilization: dict[int, float]


def throughput_spec(
    protocol: str,
    command_size: int,
    *,
    replica_count: int = 5,
    window: Micros = seconds_to_micros(1.0),
    warmup: Micros = ms_to_micros(200.0),
    outstanding_per_replica: int = 128,
    cpu_model: CpuModel = DEFAULT_CPU_MODEL,
    seed: int = 7,
) -> ExperimentSpec:
    """The declarative spec of one saturated-throughput run."""
    sites = tuple(f"dc{i}" for i in range(replica_count))
    leader_based = protocol_capabilities(protocol).leader_based
    return ExperimentSpec(
        name=f"{protocol}-throughput-{command_size}B",
        protocol=protocol,
        sites=sites,
        leader_site=sites[0] if leader_based else None,
        latency="uniform",
        one_way_ms=LOCAL_ONE_WAY_DELAY / 1_000,
        jitter_fraction=0.0,
        workload=WorkloadSpec(
            scenario="saturating",
            payload_size=command_size,
            outstanding_per_site=outstanding_per_replica,
            app="null",
        ),
        cpu=CpuSpec(
            recv_fixed=cpu_model.recv_fixed,
            recv_per_byte=cpu_model.recv_per_byte,
            send_fixed=cpu_model.send_fixed,
            send_per_byte=cpu_model.send_per_byte,
            client_fixed=cpu_model.client_fixed,
        ),
        duration_s=window / 1_000_000,
        warmup_s=warmup / 1_000_000,
        seed=seed,
    )


def run_throughput_experiment(
    protocol: str,
    command_size: int,
    **kwargs,
) -> ThroughputResult:
    """Measure saturated throughput for one protocol and command size."""
    spec = throughput_spec(protocol, command_size, **kwargs)
    result = Deployment(spec, backend="sim").run()
    utilization = {
        rid: metrics["utilization"]
        for rid, metrics in result.replica_metrics.items()
        if "utilization" in metrics
    }
    return ThroughputResult(
        protocol=protocol,
        command_size=command_size,
        committed=result.total_committed,
        window_seconds=result.duration_s,
        throughput_kops=result.throughput_kops,
        replica_utilization=utilization,
    )


def run_throughput_comparison(
    protocols: Sequence[str] = THROUGHPUT_PROTOCOLS,
    command_sizes: Sequence[int] = COMMAND_SIZES,
    **kwargs,
) -> list[ThroughputResult]:
    """Figure 8: every protocol at every command size."""
    results = []
    for size in command_sizes:
        for protocol in protocols:
            results.append(run_throughput_experiment(protocol, size, **kwargs))
    return results


__all__ = [
    "THROUGHPUT_PROTOCOLS",
    "COMMAND_SIZES",
    "DEFAULT_CPU_MODEL",
    "ThroughputResult",
    "throughput_spec",
    "run_throughput_experiment",
    "run_throughput_comparison",
]
