"""Append-only, CRC-protected, file-backed command log.

Record framing::

    frame := u32 length | u32 crc32(payload) | payload

The payload is the registry-encoded record.  A torn final frame (partial
write during a crash) is detected by the length/CRC check and discarded on
replay, which matches the usual write-ahead-log recovery contract.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path
from typing import Iterator, Optional, Sequence

from ..errors import LogCorruptionError, StorageError
from ..net.message import MessageRegistry, global_registry
from .log import CommandLog, LogRecord

_HEADER = struct.Struct(">II")


class FileLog(CommandLog):
    """A durable command log stored in a single append-only file."""

    def __init__(
        self,
        path: str | os.PathLike[str],
        registry: Optional[MessageRegistry] = None,
        sync_on_append: bool = False,
    ) -> None:
        self._path = Path(path)
        self._registry = registry or global_registry
        self._sync_on_append = sync_on_append
        self._records: list[LogRecord] = []
        self.fsync_count = 0
        self._path.parent.mkdir(parents=True, exist_ok=True)
        if self._path.exists():
            self._records = list(self._replay())
        self._file = open(self._path, "ab")

    # -- CommandLog interface ------------------------------------------------

    def append(self, record: LogRecord) -> int:
        payload = self._registry.encode(record)
        frame = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        self._file.write(frame)
        self._records.append(record)
        if self._sync_on_append:
            self.sync()
        return len(self._records) - 1

    def records(self) -> Iterator[LogRecord]:
        return iter(list(self._records))

    def __len__(self) -> int:
        return len(self._records)

    def sync(self) -> None:
        self._file.flush()
        os.fsync(self._file.fileno())
        self.fsync_count += 1

    def rewrite(self, records: Sequence[LogRecord]) -> None:
        """Atomically replace the log via write-new-then-rename."""
        tmp_path = self._path.with_suffix(self._path.suffix + ".tmp")
        with open(tmp_path, "wb") as tmp:
            for record in records:
                payload = self._registry.encode(record)
                tmp.write(_HEADER.pack(len(payload), zlib.crc32(payload)) + payload)
            tmp.flush()
            os.fsync(tmp.fileno())
        self._file.close()
        os.replace(tmp_path, self._path)
        self._records = list(records)
        self._file = open(self._path, "ab")

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    # -- replay ----------------------------------------------------------------

    def _replay(self) -> Iterator[LogRecord]:
        """Yield records from the existing file, tolerating a torn tail."""
        data = self._path.read_bytes()
        offset = 0
        while offset < len(data):
            if offset + _HEADER.size > len(data):
                break  # torn header at the tail: discard
            length, crc = _HEADER.unpack_from(data, offset)
            start = offset + _HEADER.size
            end = start + length
            if end > len(data):
                break  # torn payload at the tail: discard
            payload = data[start:end]
            if zlib.crc32(payload) != crc:
                if end == len(data):
                    break  # corrupted final record: treat as torn write
                raise LogCorruptionError(
                    f"CRC mismatch in {self._path} at offset {offset}"
                )
            try:
                yield self._registry.decode(payload)
            except Exception as exc:  # corrupt payload that passed CRC: refuse
                raise LogCorruptionError(f"undecodable record in {self._path}") from exc
            offset = end
        if offset != len(data):
            # Truncate the torn tail so future appends start at a clean frame.
            with open(self._path, "r+b") as f:
                f.truncate(offset)

    @property
    def path(self) -> Path:
        return self._path


__all__ = ["FileLog"]
