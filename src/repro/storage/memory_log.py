"""In-memory command log."""

from __future__ import annotations

from typing import Iterator, Sequence

from .log import CommandLog, LogRecord


class InMemoryLog(CommandLog):
    """A command log held entirely in memory.

    Survives protocol restarts within a process (the owning object can be
    handed to a recovering replica), which is how the simulator models a
    replica that crashes and recovers with its stable storage intact.  The
    ``fsync_count`` counter lets tests and the throughput model account for
    how many durability barriers a protocol issued.
    """

    def __init__(self, records: Sequence[LogRecord] = ()) -> None:
        self._records: list[LogRecord] = list(records)
        self._synced_length = len(self._records)
        self.fsync_count = 0

    def append(self, record: LogRecord) -> int:
        self._records.append(record)
        return len(self._records) - 1

    def records(self) -> Iterator[LogRecord]:
        return iter(list(self._records))

    def __len__(self) -> int:
        return len(self._records)

    def sync(self) -> None:
        self._synced_length = len(self._records)
        self.fsync_count += 1

    def rewrite(self, records: Sequence[LogRecord]) -> None:
        self._records = list(records)
        self._synced_length = len(self._records)

    @property
    def unsynced_count(self) -> int:
        """Number of records appended since the last :meth:`sync`."""
        return len(self._records) - self._synced_length

    def snapshot(self) -> list[LogRecord]:
        """A copy of the current records (handy for assertions in tests)."""
        return list(self._records)


__all__ = ["InMemoryLog"]
