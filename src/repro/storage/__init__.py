"""Stable storage: command logs and checkpoints.

Every replica appends protocol records to a :class:`~repro.storage.log.CommandLog`
before acknowledging them, exactly as the paper requires ("append ... to Log"
before sending PREPAREOK).  Two implementations are provided:

* :class:`~repro.storage.memory_log.InMemoryLog` — used by the simulator and
  by the throughput experiments (the paper also logs to memory for its
  throughput runs to keep the disk out of the measurement).
* :class:`~repro.storage.file_log.FileLog` — an append-only, CRC-protected,
  length-prefixed on-disk log used by the asyncio runtime and by the recovery
  tests.

Checkpoints (:mod:`repro.storage.checkpoint`) let recovery skip replaying the
whole log, as suggested in the paper's recovery discussion.
"""

from .checkpoint import Checkpoint, CheckpointStore, FileCheckpointStore, InMemoryCheckpointStore
from .file_log import FileLog
from .log import CommandLog, LogRecord
from .memory_log import InMemoryLog

__all__ = [
    "CommandLog",
    "LogRecord",
    "InMemoryLog",
    "FileLog",
    "Checkpoint",
    "CheckpointStore",
    "InMemoryCheckpointStore",
    "FileCheckpointStore",
]
