"""Checkpoints of the replicated state machine.

The paper notes that "checkpointing can be used to avoid replaying the whole
log and speed up the recovery process."  A checkpoint stores the serialized
state-machine snapshot together with the timestamp of the last command folded
into it and the epoch in which it was taken; recovery loads the newest
checkpoint and replays only the log suffix.
"""

from __future__ import annotations

import os
import zlib
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from ..errors import StorageError
from ..net.message import register_message
from ..types import Timestamp


@register_message
@dataclass(frozen=True, slots=True)
class Checkpoint:
    """A durable snapshot of the state machine.

    Attributes:
        state: Opaque serialized state-machine snapshot.
        last_applied: Timestamp of the last command included in the snapshot.
        epoch: Configuration epoch at the time the snapshot was taken.
        command_count: Number of commands folded into the snapshot (useful
            for sanity checks and metrics; not required for correctness).
    """

    state: bytes
    last_applied: Timestamp
    epoch: int = 0
    command_count: int = 0


class CheckpointStore(ABC):
    """Stores at most one checkpoint per replica (the most recent one)."""

    @abstractmethod
    def save(self, checkpoint: Checkpoint) -> None:
        """Durably store *checkpoint*, replacing any previous one."""

    @abstractmethod
    def load(self) -> Optional[Checkpoint]:
        """Return the stored checkpoint, or ``None`` if none exists."""


class InMemoryCheckpointStore(CheckpointStore):
    """Checkpoint store backed by process memory (simulation and tests)."""

    def __init__(self) -> None:
        self._checkpoint: Optional[Checkpoint] = None

    def save(self, checkpoint: Checkpoint) -> None:
        self._checkpoint = checkpoint

    def load(self) -> Optional[Checkpoint]:
        return self._checkpoint


class FileCheckpointStore(CheckpointStore):
    """Checkpoint store backed by a single file, written atomically.

    Layout: ``u32 crc32(payload) | payload`` where the payload is the
    registry-encoded :class:`Checkpoint`.
    """

    def __init__(self, path: str | os.PathLike[str]) -> None:
        from ..net.message import global_registry

        self._path = Path(path)
        self._registry = global_registry
        self._path.parent.mkdir(parents=True, exist_ok=True)

    def save(self, checkpoint: Checkpoint) -> None:
        payload = self._registry.encode(checkpoint)
        frame = zlib.crc32(payload).to_bytes(4, "big") + payload
        tmp_path = self._path.with_suffix(self._path.suffix + ".tmp")
        with open(tmp_path, "wb") as tmp:
            tmp.write(frame)
            tmp.flush()
            os.fsync(tmp.fileno())
        os.replace(tmp_path, self._path)

    def load(self) -> Optional[Checkpoint]:
        if not self._path.exists():
            return None
        data = self._path.read_bytes()
        if len(data) < 4:
            raise StorageError(f"checkpoint file {self._path} is truncated")
        crc = int.from_bytes(data[:4], "big")
        payload = data[4:]
        if zlib.crc32(payload) != crc:
            raise StorageError(f"checkpoint file {self._path} failed its CRC check")
        checkpoint = self._registry.decode(payload)
        if not isinstance(checkpoint, Checkpoint):
            raise StorageError(f"checkpoint file {self._path} contains a foreign record")
        return checkpoint


__all__ = [
    "Checkpoint",
    "CheckpointStore",
    "InMemoryCheckpointStore",
    "FileCheckpointStore",
]
