"""The command-log interface shared by all protocols."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Iterator, Sequence

LogRecord = Any
"""A log record is any registered protocol dataclass (PREPARE entries, COMMIT
marks, Paxos accept records, ...).  The log does not interpret records; the
protocol that owns the log does."""


class CommandLog(ABC):
    """An append-only record log on stable storage.

    The log preserves append order.  Protocols rely on two properties:

    * a record is durable once :meth:`append` (plus :meth:`sync` for
      durability-critical paths) returns, and
    * :meth:`records` replays records in exactly the order they were
      appended, which Clock-RSM's recovery procedure requires (COMMIT marks
      appear in timestamp order and always after their PREPARE entry).
    """

    @abstractmethod
    def append(self, record: LogRecord) -> int:
        """Append *record* and return its zero-based index."""

    @abstractmethod
    def records(self) -> Iterator[LogRecord]:
        """Iterate over all records in append order."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of records currently in the log."""

    @abstractmethod
    def sync(self) -> None:
        """Flush buffered records to stable storage."""

    @abstractmethod
    def rewrite(self, records: Sequence[LogRecord]) -> None:
        """Atomically replace the whole log contents with *records*.

        Used by reconfiguration, which removes un-executed PREPARE entries
        with timestamps above the agreed cut (Algorithm 3, line 15), and by
        checkpoint-based truncation.
        """

    # -- convenience helpers -------------------------------------------------

    def append_all(self, records: Sequence[LogRecord]) -> None:
        for record in records:
            self.append(record)

    def remove_if(self, predicate: Callable[[LogRecord], bool]) -> int:
        """Remove records matching *predicate*; returns how many were removed."""
        kept = [r for r in self.records() if not predicate(r)]
        removed = len(self) - len(kept)
        if removed:
            self.rewrite(kept)
        return removed

    def tail(self, count: int) -> list[LogRecord]:
        """The last *count* records (fewer if the log is shorter)."""
        everything = list(self.records())
        return everything[-count:] if count > 0 else []

    def close(self) -> None:
        """Release underlying resources (files); in-memory logs are a no-op."""


__all__ = ["CommandLog", "LogRecord"]
