"""Single-decree consensus substrate.

The Clock-RSM reconfiguration protocol (Algorithm 3) is built on abstract
``PROPOSE(k, m)`` / ``DECIDE(k, m)`` primitives; the paper suggests
implementing them with Paxos.  This package provides a sans-IO single-decree
Paxos implementation (:class:`~repro.consensus.single_paxos.PaxosInstance`)
plus a small manager that multiplexes many instances (one per epoch) over a
replica's message stream.
"""

from .single_paxos import (
    ConsensusDecision,
    InstanceManager,
    PaxosInstance,
    PaxosLearn,
    PaxosP1a,
    PaxosP1b,
    PaxosP2a,
    PaxosP2b,
)

__all__ = [
    "PaxosInstance",
    "InstanceManager",
    "ConsensusDecision",
    "PaxosP1a",
    "PaxosP1b",
    "PaxosP2a",
    "PaxosP2b",
    "PaxosLearn",
]
