"""Sans-IO single-decree Paxos.

One :class:`PaxosInstance` decides one value among the replicas of a cluster
specification.  The reconfiguration protocol creates one instance per epoch
(:class:`InstanceManager` handles the multiplexing).  The implementation is a
textbook synod: unique ballots are formed as ``round * N + replica_id``, a
proposer runs phase 1 before phase 2 unless it owns the default round-0
ballot of the instance, and the first proposer to gather a phase-2 quorum
broadcasts a LEARN so every replica decides.

The instance is sans-IO in the same style as :mod:`repro.protocols.base`:
callers feed messages in and get ``(outgoing messages, decided value)`` back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from ..net.message import register_message
from ..types import ReplicaId, majority


# ---------------------------------------------------------------------------
# Messages
# ---------------------------------------------------------------------------


@register_message
@dataclass(frozen=True, slots=True)
class PaxosP1a:
    instance: int
    ballot: int


@register_message
@dataclass(frozen=True, slots=True)
class PaxosP1b:
    instance: int
    ballot: int
    accepted_ballot: int
    accepted_value: Any


@register_message
@dataclass(frozen=True, slots=True)
class PaxosP2a:
    instance: int
    ballot: int
    value: Any


@register_message
@dataclass(frozen=True, slots=True)
class PaxosP2b:
    instance: int
    ballot: int


@register_message
@dataclass(frozen=True, slots=True)
class PaxosLearn:
    instance: int
    value: Any


PaxosMessage = (PaxosP1a, PaxosP1b, PaxosP2a, PaxosP2b, PaxosLearn)


@dataclass(frozen=True, slots=True)
class Outgoing:
    """A message the instance wants sent; ``dst=None`` means broadcast."""

    dst: Optional[ReplicaId]
    message: Any


@dataclass(frozen=True, slots=True)
class ConsensusDecision:
    """A decided consensus instance."""

    instance: int
    value: Any


# ---------------------------------------------------------------------------
# Single instance
# ---------------------------------------------------------------------------


class PaxosInstance:
    """Proposer + acceptor + learner roles for one consensus instance."""

    def __init__(self, instance: int, replica_id: ReplicaId, cluster_size: int) -> None:
        self.instance = instance
        self.replica_id = replica_id
        self.cluster_size = cluster_size
        self.quorum = majority(cluster_size)
        # Acceptor state.
        self._promised_ballot = -1
        self._accepted_ballot = -1
        self._accepted_value: Any = None
        # Proposer state.
        self._round = 0
        self._my_ballot: Optional[int] = None
        self._proposal: Any = None
        self._p1b_values: dict[ReplicaId, tuple[int, Any]] = {}
        self._p2b_acks: set[ReplicaId] = set()
        # Learner state.
        self.decided_value: Any = None
        self.decided = False

    # -- proposer --------------------------------------------------------------

    def propose(self, value: Any) -> list[Outgoing]:
        """Start proposing *value*; returns the messages to send.

        Replica 0's round-0 ballot may skip phase 1 (no smaller ballot can
        exist), every other proposer runs the full two-phase synod.
        """
        if self.decided:
            return []
        self._proposal = value
        self._my_ballot = self._round * self.cluster_size + self.replica_id
        self._p1b_values = {}
        self._p2b_acks = set()
        if self._my_ballot == 0:
            # The lowest possible ballot: phase 1 cannot learn anything.
            return self._start_phase2(self._proposal)
        return [Outgoing(None, PaxosP1a(self.instance, self._my_ballot))]

    def retry(self) -> list[Outgoing]:
        """Advance to the next round (after a timeout) and re-propose."""
        if self.decided or self._proposal is None:
            return []
        self._round += 1
        return self.propose(self._proposal)

    def _start_phase2(self, value: Any) -> list[Outgoing]:
        assert self._my_ballot is not None
        self._p2b_acks = set()
        self._phase2_value = value
        return [Outgoing(None, PaxosP2a(self.instance, self._my_ballot, value))]

    # -- message handling --------------------------------------------------------

    def on_message(self, src: ReplicaId, message: Any) -> tuple[list[Outgoing], Optional[ConsensusDecision]]:
        """Feed one consensus message; returns (outgoing, decision-if-any)."""
        if self.decided and not isinstance(message, PaxosLearn):
            return [], ConsensusDecision(self.instance, self.decided_value)
        if isinstance(message, PaxosP1a):
            return self._on_p1a(src, message), None
        if isinstance(message, PaxosP1b):
            return self._on_p1b(src, message), None
        if isinstance(message, PaxosP2a):
            return self._on_p2a(src, message), None
        if isinstance(message, PaxosP2b):
            outgoing = self._on_p2b(src, message)
            decision = (
                ConsensusDecision(self.instance, self.decided_value) if self.decided else None
            )
            return outgoing, decision
        if isinstance(message, PaxosLearn):
            return [], self._on_learn(message)
        return [], None

    def _on_p1a(self, src: ReplicaId, msg: PaxosP1a) -> list[Outgoing]:
        if msg.ballot <= self._promised_ballot:
            return []
        self._promised_ballot = msg.ballot
        reply = PaxosP1b(self.instance, msg.ballot, self._accepted_ballot, self._accepted_value)
        return [Outgoing(src, reply)]

    def _on_p1b(self, src: ReplicaId, msg: PaxosP1b) -> list[Outgoing]:
        if msg.ballot != self._my_ballot:
            return []
        self._p1b_values[src] = (msg.accepted_ballot, msg.accepted_value)
        if len(self._p1b_values) < self.quorum:
            return []
        # Adopt the value accepted under the highest ballot, if any.
        best_ballot, best_value = -1, None
        for accepted_ballot, accepted_value in self._p1b_values.values():
            if accepted_ballot > best_ballot:
                best_ballot, best_value = accepted_ballot, accepted_value
        value = best_value if best_ballot >= 0 else self._proposal
        self._p1b_values = {}  # quorum reached; further 1b messages are ignored
        return self._start_phase2(value)

    def _on_p2a(self, src: ReplicaId, msg: PaxosP2a) -> list[Outgoing]:
        if msg.ballot < self._promised_ballot:
            return []
        self._promised_ballot = msg.ballot
        self._accepted_ballot = msg.ballot
        self._accepted_value = msg.value
        return [Outgoing(src, PaxosP2b(self.instance, msg.ballot))]

    def _on_p2b(self, src: ReplicaId, msg: PaxosP2b) -> list[Outgoing]:
        if msg.ballot != self._my_ballot:
            return []
        self._p2b_acks.add(src)
        if len(self._p2b_acks) < self.quorum or self.decided:
            return []
        self.decided = True
        self.decided_value = self._phase2_value
        return [Outgoing(None, PaxosLearn(self.instance, self.decided_value))]

    def _on_learn(self, msg: PaxosLearn) -> ConsensusDecision:
        self.decided = True
        self.decided_value = msg.value
        return ConsensusDecision(self.instance, msg.value)


# ---------------------------------------------------------------------------
# Multiplexer
# ---------------------------------------------------------------------------


class InstanceManager:
    """Multiplexes many Paxos instances (one per reconfiguration epoch)."""

    def __init__(self, replica_id: ReplicaId, cluster_size: int) -> None:
        self._replica_id = replica_id
        self._cluster_size = cluster_size
        self._instances: dict[int, PaxosInstance] = {}

    def instance(self, number: int) -> PaxosInstance:
        existing = self._instances.get(number)
        if existing is None:
            existing = PaxosInstance(number, self._replica_id, self._cluster_size)
            self._instances[number] = existing
        return existing

    def propose(self, number: int, value: Any) -> list[Outgoing]:
        return self.instance(number).propose(value)

    def on_message(
        self, src: ReplicaId, message: Any
    ) -> tuple[list[Outgoing], Optional[ConsensusDecision]]:
        if not isinstance(message, PaxosMessage):
            return [], None
        return self.instance(message.instance).on_message(src, message)

    def decision(self, number: int) -> Optional[Any]:
        inst = self._instances.get(number)
        if inst is not None and inst.decided:
            return inst.decided_value
        return None


__all__ = [
    "PaxosP1a",
    "PaxosP1b",
    "PaxosP2a",
    "PaxosP2b",
    "PaxosLearn",
    "Outgoing",
    "ConsensusDecision",
    "PaxosInstance",
    "InstanceManager",
]
