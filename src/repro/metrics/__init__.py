"""Measurement utilities: latency statistics, CDFs, throughput counters."""

from .collector import LatencyCollector, ThroughputCounter
from .stats import LatencySummary, cdf_points, percentile, summarize_micros

__all__ = [
    "LatencyCollector",
    "ThroughputCounter",
    "LatencySummary",
    "percentile",
    "cdf_points",
    "summarize_micros",
]
