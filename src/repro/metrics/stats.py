"""Latency statistics: percentiles, summaries, CDFs.

All sample inputs are in microseconds (the library's internal unit); the
summary objects expose milliseconds, which is what the paper's figures use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..types import Micros, micros_to_ms


def percentile(samples: Sequence[float], fraction: float) -> float:
    """The *fraction*-quantile of *samples* using linear interpolation.

    ``fraction`` is in [0, 1]; e.g. 0.95 returns the 95th percentile, the
    statistic the paper plots atop each latency bar.
    """
    if not samples:
        raise ValueError("cannot take a percentile of an empty sample set")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be within [0, 1], got {fraction}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = fraction * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    weight = rank - low
    low_value, high_value = float(ordered[low]), float(ordered[high])
    if low_value == high_value:
        return low_value
    value = low_value * (1.0 - weight) + high_value * weight
    # Clamp away one-ULP interpolation error so results stay within bounds.
    return min(max(value, low_value), high_value)


def cdf_points(samples: Sequence[float]) -> list[tuple[float, float]]:
    """Empirical CDF as (value, cumulative fraction) pairs.

    Matches the latency-distribution plots of Figures 3, 4 and 6.
    """
    if not samples:
        return []
    ordered = sorted(samples)
    n = len(ordered)
    return [(float(value), (index + 1) / n) for index, value in enumerate(ordered)]


@dataclass(frozen=True, slots=True)
class LatencySummary:
    """Summary statistics of a latency sample set, in milliseconds."""

    count: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    min_ms: float
    max_ms: float

    def as_row(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean_ms": round(self.mean_ms, 2),
            "p50_ms": round(self.p50_ms, 2),
            "p95_ms": round(self.p95_ms, 2),
            "p99_ms": round(self.p99_ms, 2),
            "min_ms": round(self.min_ms, 2),
            "max_ms": round(self.max_ms, 2),
        }


def summarize_micros(samples_micros: Iterable[Micros]) -> LatencySummary:
    """Summarize microsecond latency samples into a millisecond summary."""
    values = [micros_to_ms(v) for v in samples_micros]
    if not values:
        raise ValueError("cannot summarize an empty sample set")
    return LatencySummary(
        count=len(values),
        mean_ms=sum(values) / len(values),
        p50_ms=percentile(values, 0.50),
        p95_ms=percentile(values, 0.95),
        p99_ms=percentile(values, 0.99),
        min_ms=min(values),
        max_ms=max(values),
    )


def merge_summaries(summaries: Sequence[LatencySummary]) -> LatencySummary:
    """Combine per-shard latency summaries into one aggregate summary.

    Counts, means, minima and maxima merge exactly.  The percentiles of a
    union of sample sets cannot be recovered from the parts' percentiles, so
    they are approximated by the count-weighted average of the per-part
    percentiles — exact when the parts are identically distributed, which is
    what independent shards under the same workload produce.  Use
    :func:`merge_cdfs` when the raw distributions are needed.
    """
    summaries = [s for s in summaries if s is not None]
    if not summaries:
        raise ValueError("cannot merge an empty set of summaries")
    if len(summaries) == 1:
        return summaries[0]
    total = sum(s.count for s in summaries)

    def weighted(attribute: str) -> float:
        return sum(getattr(s, attribute) * s.count for s in summaries) / total

    return LatencySummary(
        count=total,
        mean_ms=weighted("mean_ms"),
        p50_ms=weighted("p50_ms"),
        p95_ms=weighted("p95_ms"),
        p99_ms=weighted("p99_ms"),
        min_ms=min(s.min_ms for s in summaries),
        max_ms=max(s.max_ms for s in summaries),
    )


def merge_cdfs(
    cdfs: Sequence[Sequence[tuple[float, float]]],
    counts: Sequence[int],
) -> list[tuple[float, float]]:
    """Merge empirical CDFs of sample sets with the given sample counts.

    Each input CDF is the ``(value, cumulative fraction)`` list produced by
    :func:`cdf_points` over ``counts[i]`` samples.  The merge is exact: it
    reconstructs each part's sample multiset from the fraction steps,
    reweights by the counts, and re-accumulates — the result is the CDF of
    the union of the underlying samples.
    """
    if len(cdfs) != len(counts):
        raise ValueError("need one sample count per CDF")
    weighted_values: list[tuple[float, float]] = []  # (value, sample weight)
    for cdf, count in zip(cdfs, counts):
        previous = 0.0
        for value, fraction in cdf:
            weighted_values.append((float(value), (fraction - previous) * count))
            previous = fraction
    if not weighted_values:
        return []
    weighted_values.sort()
    total = sum(weight for _value, weight in weighted_values)
    merged: list[tuple[float, float]] = []
    cumulative = 0.0
    for value, weight in weighted_values:
        cumulative += weight
        if merged and merged[-1][0] == value:
            merged[-1] = (value, cumulative / total)
        else:
            merged.append((value, cumulative / total))
    return merged


__all__ = [
    "percentile",
    "cdf_points",
    "LatencySummary",
    "summarize_micros",
    "merge_summaries",
    "merge_cdfs",
]
