"""Collectors that attach to a simulated cluster and record measurements."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Optional

from ..types import CommandId, Micros, ReplicaId, micros_to_ms
from .stats import LatencySummary, cdf_points, summarize_micros


class LatencyCollector:
    """Records per-command commit latency at the originating replica.

    Workload generators call :meth:`record_submit` when a command leaves a
    client; the cluster's reply hook calls :meth:`record_commit` when the
    originating replica answers.  Latencies are grouped per replica, matching
    the per-site bars of the paper's latency figures.
    """

    def __init__(self, warmup_until: Micros = 0) -> None:
        #: Measurements submitted before this simulation time are discarded.
        self.warmup_until = warmup_until
        self._submit_times: dict[CommandId, tuple[ReplicaId, Micros]] = {}
        self._latencies: dict[ReplicaId, list[Micros]] = defaultdict(list)

    def record_submit(self, command_id: CommandId, replica_id: ReplicaId, time: Micros) -> None:
        self._submit_times[command_id] = (replica_id, time)

    def record_commit(self, command_id: CommandId, time: Micros) -> None:
        entry = self._submit_times.pop(command_id, None)
        if entry is None:
            return
        replica_id, submit_time = entry
        if submit_time < self.warmup_until:
            return
        self._latencies[replica_id].append(time - submit_time)

    def record_span(self, replica_id: ReplicaId, submit_time: Micros, commit_time: Micros) -> None:
        """Record a completed command when the caller tracked both endpoints.

        Hot-path variant of ``record_submit`` + ``record_commit`` for
        workloads that already hold the submit timestamp across the await —
        no per-command dict entry, no two ``CommandId`` hash lookups.
        """
        if submit_time < self.warmup_until:
            return
        self._latencies[replica_id].append(commit_time - submit_time)

    # -- results ----------------------------------------------------------------

    @property
    def outstanding(self) -> int:
        """Commands submitted but not yet committed."""
        return len(self._submit_times)

    def count(self, replica_id: Optional[ReplicaId] = None) -> int:
        if replica_id is None:
            return sum(len(v) for v in self._latencies.values())
        return len(self._latencies.get(replica_id, ()))

    def latencies_micros(self, replica_id: ReplicaId) -> list[Micros]:
        return list(self._latencies.get(replica_id, ()))

    def all_latencies_micros(self) -> list[Micros]:
        return [value for values in self._latencies.values() for value in values]

    def summary(self, replica_id: ReplicaId) -> LatencySummary:
        return summarize_micros(self.latencies_micros(replica_id))

    def summaries(self) -> dict[ReplicaId, LatencySummary]:
        return {rid: summarize_micros(values) for rid, values in self._latencies.items() if values}

    def cdf_ms(self, replica_id: ReplicaId) -> list[tuple[float, float]]:
        """Empirical latency CDF at a replica, values in milliseconds."""
        return cdf_points([micros_to_ms(v) for v in self.latencies_micros(replica_id)])


@dataclass
class ThroughputCounter:
    """Counts committed commands in a measurement window."""

    window_start: Micros = 0
    window_end: Micros = 0
    committed: int = 0

    def record(self, time: Micros) -> None:
        if self.window_start <= time and (self.window_end == 0 or time <= self.window_end):
            self.committed += 1

    def throughput_kops(self) -> float:
        """Committed commands per second, in thousands (the paper's kop/s)."""
        if self.window_end <= self.window_start:
            raise ValueError("measurement window is empty")
        seconds = (self.window_end - self.window_start) / 1_000_000
        return self.committed / seconds / 1_000.0


__all__ = ["LatencyCollector", "ThroughputCounter"]
