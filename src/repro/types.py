"""Core value types shared across the Clock-RSM reproduction.

All protocol-level times are expressed as **integer microseconds** so that
the discrete-event simulator, the asyncio runtime, and the protocols agree
on a single, exact representation.  Converting to milliseconds happens only
at the reporting layer (:mod:`repro.metrics`).
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

# ---------------------------------------------------------------------------
# Scalar aliases
# ---------------------------------------------------------------------------

#: Identifier of a replica.  Replica ids are small non-negative integers and
#: double as indices into vectors such as ``LatestTV``.
ReplicaId = int

#: Identifier of a client process.
ClientId = str

#: Microseconds since an arbitrary epoch (simulation start or wall clock).
Micros = int

MICROS_PER_MS = 1_000
MICROS_PER_SECOND = 1_000_000


def ms_to_micros(milliseconds: float) -> Micros:
    """Convert a duration in milliseconds to integer microseconds."""
    return int(round(milliseconds * MICROS_PER_MS))


def micros_to_ms(micros: Micros) -> float:
    """Convert integer microseconds to (float) milliseconds."""
    return micros / MICROS_PER_MS


def seconds_to_micros(seconds: float) -> Micros:
    """Convert a duration in seconds to integer microseconds."""
    return int(round(seconds * MICROS_PER_SECOND))


def micros_to_seconds(micros: Micros) -> float:
    """Convert integer microseconds to (float) seconds."""
    return micros / MICROS_PER_SECOND


# ---------------------------------------------------------------------------
# Timestamps
# ---------------------------------------------------------------------------


@dataclass(frozen=True, order=True, slots=True)
class Timestamp:
    """A Clock-RSM command timestamp.

    A timestamp is the pair ``(micros, replica)``: the physical clock reading
    of the originating replica, with ties broken by the originating replica's
    id, exactly as the paper specifies ("Ties are resolved by using the id of
    the command's originating replica").  The lexicographic dataclass ordering
    therefore yields the protocol's total order.
    """

    micros: Micros
    replica: ReplicaId

    def advanced_by(self, delta: Micros) -> "Timestamp":
        """Return a copy shifted ``delta`` microseconds into the future."""
        return Timestamp(self.micros + delta, self.replica)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.micros}@r{self.replica}"


#: The smallest possible timestamp; used as the initial value of LatestTV
#: entries and as a sentinel "nothing received yet" marker.
ZERO_TS = Timestamp(0, -1)


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------

_command_counter = itertools.count(1)


def next_command_uid() -> int:
    """Return a process-locally unique integer for command identifiers."""
    return next(_command_counter)


@dataclass(frozen=True, slots=True)
class CommandId:
    """Globally unique command identifier: (client, client-local sequence)."""

    client: ClientId
    seqno: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.client}:{self.seqno}"


@dataclass(frozen=True, slots=True)
class Command:
    """A state-machine command submitted by a client.

    The payload is opaque to every replication protocol: protocols order and
    replicate commands, the configured state machine interprets them.
    """

    command_id: CommandId
    payload: bytes
    created_at: Micros = 0

    @property
    def size(self) -> int:
        """Size of the payload in bytes (used by the throughput model)."""
        return len(self.payload)


@dataclass(frozen=True, slots=True)
class CommandResult:
    """The result of executing a command, returned to the issuing client."""

    command_id: CommandId
    output: Any
    committed_at: Micros = 0


# ---------------------------------------------------------------------------
# No-op command (used by Mencius skips and leader-change gap filling)
# ---------------------------------------------------------------------------

NOOP_CLIENT: ClientId = "__noop__"


def make_noop(seqno: int) -> Command:
    """Create a no-op command (e.g. a Mencius ``skip``)."""
    return Command(CommandId(NOOP_CLIENT, seqno), b"")


def is_noop(command: Command) -> bool:
    """Return ``True`` if *command* is a no-op created by :func:`make_noop`."""
    return command.command_id.client == NOOP_CLIENT


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def majority(n: int) -> int:
    """Size of a majority quorum out of *n* replicas (``floor(n/2) + 1``)."""
    if n <= 0:
        raise ValueError(f"majority undefined for {n} replicas")
    return n // 2 + 1


def freeze(obj: Any) -> Any:
    """Recursively convert dataclasses to plain dicts for logging/debugging."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: freeze(getattr(obj, f.name)) for f in dataclasses.fields(obj)}
    if isinstance(obj, (list, tuple)):
        return [freeze(x) for x in obj]
    if isinstance(obj, dict):
        return {k: freeze(v) for k, v in obj.items()}
    return obj


__all__ = [
    "ReplicaId",
    "ClientId",
    "Micros",
    "MICROS_PER_MS",
    "MICROS_PER_SECOND",
    "ms_to_micros",
    "micros_to_ms",
    "seconds_to_micros",
    "micros_to_seconds",
    "Timestamp",
    "ZERO_TS",
    "CommandId",
    "Command",
    "CommandResult",
    "NOOP_CLIENT",
    "make_noop",
    "is_noop",
    "majority",
    "next_command_uid",
    "freeze",
]
