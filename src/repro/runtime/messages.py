"""Client-facing request/response messages used by the asyncio runtime."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..net.message import register_message
from ..types import Command, CommandId


@register_message
@dataclass(frozen=True, slots=True)
class ClientRequest:
    """A client command submitted to a replica server."""

    command: Command


@register_message
@dataclass(frozen=True, slots=True)
class ClientResponse:
    """The committed result of a previously submitted command."""

    command_id: CommandId
    output: Any


__all__ = ["ClientRequest", "ClientResponse"]
