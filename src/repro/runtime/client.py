"""Asyncio key-value client for :class:`~repro.runtime.server.ReplicaServer`.

Connects to a replica's client endpoint over TCP (or uses an in-process
server directly) and provides ``put`` / ``get`` / ``delete`` coroutines, as
an application server colocated with the replica would in the paper's
deployment model.

The TCP path is **pipelined**: responses are matched to requests by command
id by a background dispatcher, so any number of operations may be in flight
on one connection concurrently (issue them from separate tasks, or use
:meth:`ReplicatedKVClient.pipelined` to run a whole list with a bounded
depth).  With :class:`~repro.config.BatchingOptions`, outgoing request
frames are additionally coalesced: requests issued within the accumulation
window ship as one framed multi-message envelope — one TCP write for the
whole group (``window_us = 0`` coalesces whatever the current event-loop
tick produced).
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Awaitable, Callable, Optional, Sequence

from ..config import BatchingOptions
from ..errors import ClientError
from ..kvstore.commands import encode_delete, encode_get, encode_put
from ..net.batching import BatchAccumulator
from ..net.message import Envelope, EnvelopeBatch, MessageRegistry, global_registry
from ..net.tcp import encode_batch_frame, encode_frame, read_envelopes
from ..types import Command, CommandId
from .messages import ClientRequest, ClientResponse
from .server import ReplicaServer


class ReplicatedKVClient:
    """A key-value client bound to one replica server."""

    _ids = itertools.count(1)

    def __init__(
        self,
        server: Optional[ReplicaServer] = None,
        address: Optional[str] = None,
        registry: Optional[MessageRegistry] = None,
        name: Optional[str] = None,
        batching: Optional[BatchingOptions] = None,
    ) -> None:
        if server is None and address is None:
            raise ClientError("either an in-process server or a TCP address is required")
        self._server = server
        self._address = address
        self._registry = registry or global_registry
        self._name = name or f"kv-async-client-{next(self._ids)}"
        self._batching = batching if batching is not None and batching.enabled else None
        self._seq = itertools.count(1)
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._pending: dict[CommandId, asyncio.Future] = {}
        self._outbox: Optional[BatchAccumulator[Envelope]] = (
            BatchAccumulator(self._batching, self._write_group)
            if self._batching is not None
            else None
        )
        self._drain_task: Optional[asyncio.Task] = None

    # -- connection management -----------------------------------------------------

    async def connect(self) -> None:
        if self._address is None or self._writer is not None:
            return
        host, _, port = self._address.rpartition(":")
        self._reader, self._writer = await asyncio.open_connection(host, int(port))
        self._dispatcher = asyncio.create_task(self._dispatch_responses())

    async def close(self) -> None:
        if self._outbox is not None:
            self._outbox.clear()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            self._dispatcher = None
        if self._writer is not None:
            self._writer.close()
            self._writer = None
            self._reader = None
        self._fail_pending(ClientError("client closed"))

    async def __aenter__(self) -> "ReplicatedKVClient":
        await self.connect()
        return self

    async def __aexit__(self, *_exc: Any) -> None:
        await self.close()

    # -- key-value operations ---------------------------------------------------------

    async def put(self, key: str, value: bytes) -> Any:
        return await self._execute(encode_put(key, value))

    async def get(self, key: str) -> Any:
        return await self._execute(encode_get(key))

    async def delete(self, key: str) -> bool:
        return bool(await self._execute(encode_delete(key)))

    async def pipelined(
        self, operations: Sequence[Callable[[], Awaitable[Any]]], depth: int = 8
    ) -> list[Any]:
        """Run *operations* keeping up to *depth* of them in flight.

        Each operation is a zero-argument callable returning an awaitable
        (e.g. ``lambda: client.put(k, v)``).  Results come back in operation
        order.  This is the client half of message pipelining: the commit of
        operation *k* is never awaited before operation *k+1* is proposed.
        """
        if depth < 1:
            raise ClientError(f"pipeline depth must be >= 1, got {depth}")
        results: list[Any] = [None] * len(operations)
        in_flight: set[asyncio.Task] = set()

        async def run_one(index: int) -> None:
            results[index] = await operations[index]()

        try:
            for index in range(len(operations)):
                in_flight.add(asyncio.create_task(run_one(index)))
                if len(in_flight) >= depth:
                    done, in_flight = await asyncio.wait(
                        in_flight, return_when=asyncio.FIRST_COMPLETED
                    )
                    for task in done:
                        task.result()  # surface failures eagerly
            if in_flight:
                await asyncio.gather(*in_flight)
        except BaseException:
            # Don't leave siblings running unsupervised past the call: a
            # failed pipeline cancels (and awaits) everything in flight.
            for task in in_flight:
                task.cancel()
            await asyncio.gather(*in_flight, return_exceptions=True)
            raise
        return results

    # -- internals ----------------------------------------------------------------------

    async def _execute(self, payload: bytes) -> Any:
        command = Command(CommandId(self._name, next(self._seq)), payload)
        if self._server is not None:
            return await self._server.submit(command)
        return await self._execute_remote(command)

    async def _execute_remote(self, command: Command) -> Any:
        await self.connect()
        if self._reader is None or self._writer is None:
            raise ClientError("client is not connected")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[command.command_id] = future
        envelope = Envelope(-1, -1, ClientRequest(command))
        if self._outbox is None:
            self._writer.write(encode_frame(envelope, self._registry))
            await self._writer.drain()
        else:
            self._outbox.add(envelope)
        try:
            return await future
        finally:
            self._pending.pop(command.command_id, None)

    def _write_group(self, outbox: list[Envelope]) -> None:
        """One coalesced write for a flushed group of request frames."""
        if self._writer is None or self._writer.is_closing():
            return
        if len(outbox) == 1:
            frame = encode_frame(outbox[0], self._registry)
        else:
            frame = encode_batch_frame(EnvelopeBatch.of(outbox), self._registry)
        self._writer.write(frame)
        # Backpressure: await the drain once per burst (a sync flush callback
        # cannot await, so a single task follows the writes).
        if self._drain_task is None or self._drain_task.done():
            self._drain_task = asyncio.create_task(self._drain())

    async def _drain(self) -> None:
        if self._writer is not None and not self._writer.is_closing():
            try:
                await self._writer.drain()
            except (ConnectionResetError, OSError):
                pass  # the dispatcher reports connection loss to callers

    def _disconnect(self, error: Exception) -> None:
        """Drop the connection and fail everything in flight."""
        if self._outbox is not None:
            self._outbox.clear()
        if self._writer is not None:
            self._writer.close()
            self._writer = None
            self._reader = None
        self._dispatcher = None
        self._fail_pending(error)

    async def _dispatch_responses(self) -> None:
        """Match inbound responses to pending requests by command id."""
        assert self._reader is not None
        try:
            while True:
                for envelope in await read_envelopes(self._reader, self._registry):
                    response = envelope.message
                    if not isinstance(response, ClientResponse):
                        # Fail fast and force a reconnect: leaving the
                        # connection up with no reader would hang every
                        # later request forever.
                        self._disconnect(
                            ClientError(f"unexpected response {response!r}")
                        )
                        return
                    future = self._pending.get(response.command_id)
                    if future is not None and not future.done():
                        future.set_result(response.output)
        except (asyncio.IncompleteReadError, ConnectionResetError, OSError) as exc:
            self._disconnect(ClientError(f"connection lost: {exc!r}"))
        except asyncio.CancelledError:
            raise

    def _fail_pending(self, error: Exception) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_exception(error)
        self._pending.clear()


__all__ = ["ReplicatedKVClient"]
