"""Asyncio key-value client for :class:`~repro.runtime.server.ReplicaServer`.

Connects to a replica's client endpoint over TCP (or uses an in-process
server directly) and provides ``put`` / ``get`` / ``delete`` coroutines, as
an application server colocated with the replica would in the paper's
deployment model.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Optional

from ..errors import ClientError
from ..kvstore.commands import encode_delete, encode_get, encode_put
from ..net.message import Envelope, MessageRegistry, global_registry
from ..net.tcp import encode_frame, read_frame
from ..types import Command, CommandId
from .messages import ClientRequest, ClientResponse
from .server import ReplicaServer


class ReplicatedKVClient:
    """A key-value client bound to one replica server."""

    _ids = itertools.count(1)

    def __init__(
        self,
        server: Optional[ReplicaServer] = None,
        address: Optional[str] = None,
        registry: Optional[MessageRegistry] = None,
        name: Optional[str] = None,
    ) -> None:
        if server is None and address is None:
            raise ClientError("either an in-process server or a TCP address is required")
        self._server = server
        self._address = address
        self._registry = registry or global_registry
        self._name = name or f"kv-async-client-{next(self._ids)}"
        self._seq = itertools.count(1)
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._lock = asyncio.Lock()

    # -- connection management -----------------------------------------------------

    async def connect(self) -> None:
        if self._address is None or self._writer is not None:
            return
        host, _, port = self._address.rpartition(":")
        self._reader, self._writer = await asyncio.open_connection(host, int(port))

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "ReplicatedKVClient":
        await self.connect()
        return self

    async def __aexit__(self, *_exc: Any) -> None:
        await self.close()

    # -- key-value operations ---------------------------------------------------------

    async def put(self, key: str, value: bytes) -> Any:
        return await self._execute(encode_put(key, value))

    async def get(self, key: str) -> Any:
        return await self._execute(encode_get(key))

    async def delete(self, key: str) -> bool:
        return bool(await self._execute(encode_delete(key)))

    # -- internals ----------------------------------------------------------------------

    async def _execute(self, payload: bytes) -> Any:
        command = Command(CommandId(self._name, next(self._seq)), payload)
        if self._server is not None:
            return await self._server.submit(command)
        return await self._execute_remote(command)

    async def _execute_remote(self, command: Command) -> Any:
        await self.connect()
        if self._reader is None or self._writer is None:
            raise ClientError("client is not connected")
        async with self._lock:
            frame = encode_frame(Envelope(-1, -1, ClientRequest(command)), self._registry)
            self._writer.write(frame)
            await self._writer.drain()
            envelope = await read_frame(self._reader, self._registry)
        response = envelope.message
        if not isinstance(response, ClientResponse):
            raise ClientError(f"unexpected response {response!r}")
        if response.command_id != command.command_id:
            raise ClientError("response does not match the outstanding request")
        return response.output


__all__ = ["ReplicatedKVClient"]
