"""Asyncio driver for sans-IO replicas.

The driver owns a protocol replica and a transport.  Incoming envelopes and
client requests are handed to the replica on the event loop; the actions it
returns are executed immediately: sends go to the transport, timers become
``loop.call_later`` callbacks, and client replies are delivered to a
registered callback (the replica server resolves pending futures with them).

With :class:`~repro.config.BatchingOptions`, submitted commands are
opportunistically accumulated into a
:class:`~repro.protocols.records.CommandBatch` before reaching the replica:
the queue flushes when it holds ``max_batch`` commands or when the
accumulation window expires (``window_us = 0`` flushes whatever the current
event-loop tick queued — batch if load is there, never wait if it is not).
Submission never blocks on a previous unit committing, so batches pipeline
through the protocol naturally.
"""

from __future__ import annotations

import asyncio
import itertools
import logging
import time
from typing import Any, Callable, Optional

from ..config import BatchingOptions
from ..net.batching import BatchAccumulator
from ..net.message import Envelope
from ..protocols.base import (
    Action,
    Broadcast,
    ClientReply,
    Replica,
    Send,
    SetTimer,
    Timer,
)
from ..protocols.records import make_unit
from ..types import Command, CommandId, micros_to_seconds

_LOGGER = logging.getLogger(__name__)

ReplyCallback = Callable[[CommandId, Any], None]


class _Flight:
    """Per-command timing record for the queue-wait vs protocol-time split.

    One slotted object per in-flight command replaces the former pair of
    per-command dict entries (``_submitted_at`` / ``_proposed_at``): half the
    hashing and dict churn on the submit → propose → reply hot path, and the
    proposal timestamp is a plain attribute store on a record already in hand.
    """

    __slots__ = ("submitted", "proposed")

    def __init__(self, submitted: float) -> None:
        self.submitted = submitted
        self.proposed = -1.0


class AsyncReplicaDriver:
    """Runs one protocol replica on an asyncio event loop."""

    def __init__(
        self,
        replica: Replica,
        transport,
        on_reply: Optional[ReplyCallback] = None,
        batching: Optional[BatchingOptions] = None,
    ) -> None:
        self.replica = replica
        self.transport = transport
        self.on_reply = on_reply
        self.batching = batching if batching is not None and batching.enabled else None
        self._accumulator: Optional[BatchAccumulator[Command]] = (
            BatchAccumulator(self.batching, self._propose_unit)
            if self.batching is not None
            else None
        )
        self._timer_handles: list[asyncio.TimerHandle] = []
        self._started = False
        # Queue-wait vs protocol-time split: one _Flight record per command,
        # stamped at submission (joins the accumulator) and proposal (reaches
        # the replica), settled when its ClientReply comes back.
        self._in_flight: dict[CommandId, _Flight] = {}
        self._split_queue_total = 0.0
        self._split_protocol_total = 0.0
        self._split_samples = 0
        transport.set_handler(self._on_envelope)

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> None:
        """Run the replica's start hook (arming its initial timers)."""
        if self._started:
            return
        self._started = True
        self._perform(self.replica.start())

    def stop(self) -> None:
        """Cancel outstanding timers and stop the replica."""
        self.replica.stop()
        if self._accumulator is not None:
            self._accumulator.clear()
        for handle in self._timer_handles:
            handle.cancel()
        self._timer_handles.clear()
        self._in_flight.clear()
        self.transport.close()

    # -- latency split -------------------------------------------------------

    def latency_split(self) -> Optional[dict[str, float]]:
        """Mean queue-wait and protocol-time per replied command, in seconds.

        *Queue wait* is submission → proposal (time spent in the batching
        accumulator; zero without batching), *protocol time* is proposal →
        client reply (consensus plus execution).  ``None`` until at least one
        command has been replied to.
        """
        if self._split_samples == 0:
            return None
        return {
            "queue_wait_s": self._split_queue_total / self._split_samples,
            "protocol_s": self._split_protocol_total / self._split_samples,
            "samples": float(self._split_samples),
        }

    # -- inputs ---------------------------------------------------------------------

    def submit(self, command: Command) -> None:
        """Submit a client command to the replica (dropped while stopped).

        With batching enabled the command joins the accumulation queue and is
        proposed as part of the next flushed unit; without it, the replica
        sees the command immediately (identical to the unbatched runtime).
        """
        if self.replica.stopped:
            return
        now = time.monotonic()
        # Commands whose reply never arrives (crash, timeout) would pin their
        # records forever; shed the oldest half past a generous bound.
        in_flight = self._in_flight
        if len(in_flight) > 65536:
            for key in list(itertools.islice(iter(in_flight), 32768)):
                del in_flight[key]
        flight = _Flight(now)
        in_flight[command.command_id] = flight
        if self._accumulator is None:
            flight.proposed = now  # no queue: wait is 0
            self._perform(self.replica.on_client_request(command))
        else:
            self._accumulator.add(command)

    def _propose_unit(self, commands: list[Command]) -> None:
        """Propose flushed commands as one unit (batch or single)."""
        if self.replica.stopped:
            return
        now = time.monotonic()
        in_flight = self._in_flight
        for command in commands:
            flight = in_flight.get(command.command_id)
            if flight is not None:
                flight.proposed = now
        self._perform(self.replica.on_client_request(make_unit(commands)))

    def _on_envelope(self, envelope: Envelope) -> None:
        if self.replica.stopped:
            # A delivery already scheduled when the replica crashed.
            return
        self._perform(self.replica.on_message(envelope.src, envelope.message))

    def _on_timer(self, timer: Timer) -> None:
        if self.replica.stopped:
            return
        self._perform(self.replica.on_timer(timer))

    # -- action execution --------------------------------------------------------------

    def _perform(self, actions: list[Action]) -> None:
        # Self-addressed envelopes are delivered synchronously by the
        # transport, re-entering the replica, which may immediately generate
        # follow-up sends — e.g. handling our own PREPARE broadcasts the
        # PREPAREOK, whose clock reading is larger than the PREPARE's
        # timestamp.  Those nested sends must reach every peer *after* the
        # sends of this batch (Clock-RSM's stability rule assumes a replica's
        # messages carry non-decreasing clock readings in arrival order), so
        # all network sends are enqueued first and self-deliveries deferred
        # to the end of the batch.
        local = self.replica.replica_id
        deferred: list[Envelope] = []
        send = self.transport.send
        on_reply = self.on_reply
        # Checked in descending frequency: a batch of n commands commits with
        # n ClientReply actions but only a handful of sends and timers.
        for action in actions:
            if isinstance(action, ClientReply):
                self._settle_split(action.command_id)
                if on_reply is not None:
                    on_reply(action.command_id, action.output)
            elif isinstance(action, Send):
                envelope = Envelope(local, action.dst, action.message)
                if action.dst == local:
                    deferred.append(envelope)
                else:
                    send(envelope)
            elif isinstance(action, Broadcast):
                include_self = False
                for dst in self.replica.broadcast_targets(action.include_self):
                    if dst == local:
                        include_self = True
                        continue
                    send(Envelope(local, dst, action.message))
                if include_self:
                    deferred.append(Envelope(local, local, action.message))
            elif isinstance(action, SetTimer):
                self._set_timer(action)
            else:  # pragma: no cover - defensive
                _LOGGER.warning("unknown action %r", action)
        for envelope in deferred:
            send(envelope)

    def _settle_split(self, command_id: CommandId) -> None:
        flight = self._in_flight.pop(command_id, None)
        if flight is None or flight.proposed < 0.0:
            return  # a retransmitted / recovered reply we never timed
        now = time.monotonic()
        self._split_queue_total += flight.proposed - flight.submitted
        self._split_protocol_total += now - flight.proposed
        self._split_samples += 1

    def _set_timer(self, action: SetTimer) -> None:
        loop = asyncio.get_running_loop()
        handle = loop.call_later(
            micros_to_seconds(action.delay), self._on_timer, action.timer
        )
        self._timer_handles.append(handle)
        # Garbage-collect expired handles occasionally to bound memory.  Fired
        # handles are never "cancelled", so they must be dropped by deadline;
        # keeping them would make this scan quadratic under sustained load
        # (every PREPARE can arm a clock-wait timer) and livelock the loop.
        # A due-but-unfired handle dropped here at worst fires after stop(),
        # where the stopped-replica guard in _on_timer ignores it.
        if len(self._timer_handles) > 1024:
            now = loop.time()
            self._timer_handles = [
                h for h in self._timer_handles if not h.cancelled() and h.when() > now
            ]


__all__ = ["AsyncReplicaDriver"]
