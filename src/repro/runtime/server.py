"""A replica server: protocol replica + peer transport + client endpoint.

The server exposes an ``async submit(command)`` API used by in-process
clients (:class:`~repro.runtime.local.LocalAsyncCluster`) and, when given a
client listen address, a TCP endpoint speaking length-prefixed
:class:`~repro.runtime.messages.ClientRequest` / ``ClientResponse`` frames
for remote clients (:class:`~repro.runtime.client.ReplicatedKVClient`).
"""

from __future__ import annotations

import asyncio
import heapq
import logging
from typing import Any, Optional

from ..clocks.base import Clock
from ..clocks.physical import SystemClock
from ..config import BatchingOptions, ClusterSpec, ProtocolConfig
from ..errors import RequestTimeout, TransportError
from ..net.message import Envelope, MessageRegistry, global_registry
from ..net.tcp import TcpTransport, encode_frame, read_envelopes
from ..protocols.registry import create_replica
from ..statemachine import StateMachine
from ..storage.log import CommandLog
from ..storage.memory_log import InMemoryLog
from ..types import Command, CommandId, ReplicaId
from .driver import AsyncReplicaDriver
from .messages import ClientRequest, ClientResponse

_LOGGER = logging.getLogger(__name__)


class ReplicaServer:
    """One running replica of the replicated service."""

    def __init__(
        self,
        protocol: str,
        replica_id: ReplicaId,
        spec: ClusterSpec,
        state_machine: StateMachine,
        *,
        transport=None,
        peer_addresses: Optional[dict[ReplicaId, str]] = None,
        listen_address: Optional[str] = None,
        client_address: Optional[str] = None,
        log: Optional[CommandLog] = None,
        protocol_config: Optional[ProtocolConfig] = None,
        registry: Optional[MessageRegistry] = None,
        clock: Optional[Clock] = None,
        batching: Optional[BatchingOptions] = None,
    ) -> None:
        self.replica_id = replica_id
        self.spec = spec
        self.protocol = protocol
        self.protocol_config = protocol_config
        self.registry = registry or global_registry
        self.client_address = client_address
        self.batching = batching
        self._client_server: Optional[asyncio.AbstractServer] = None
        self._client_tasks: set[asyncio.Task] = set()
        self._pending: dict[CommandId, asyncio.Future] = {}
        # Deadline heap for submit timeouts: one event-loop timer armed for
        # the earliest deadline instead of one ``call_later`` handle per
        # command (see :meth:`submit`).  Entries are lazily discarded — a
        # command that committed stays in the heap until its deadline passes
        # or a compaction sweep drops it.
        self._deadlines: list[tuple[float, int, CommandId, float]] = []
        self._deadline_seq = 0
        self._expiry_handle: Optional[asyncio.TimerHandle] = None
        self._expiry_when = 0.0

        if transport is None:
            if listen_address is None or peer_addresses is None:
                raise TransportError(
                    "either a transport or listen_address + peer_addresses is required"
                )
            transport = TcpTransport(
                replica_id, listen_address, peer_addresses, self.registry,
                batching=batching,
            )
        self.transport = transport

        replica = create_replica(
            protocol,
            replica_id,
            spec,
            clock=clock if clock is not None else SystemClock(),
            log=log if log is not None else InMemoryLog(),
            state_machine=state_machine,
            config=protocol_config or ProtocolConfig(),
        )
        self.replica = replica
        self.driver = AsyncReplicaDriver(
            replica, transport, on_reply=self._on_reply, batching=batching
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        if isinstance(self.transport, TcpTransport):
            await self.transport.start()
        if self.client_address is not None:
            host, _, port = self.client_address.rpartition(":")
            self._client_server = await asyncio.start_server(
                self._handle_client, host, int(port)
            )
        self.driver.start()
        _LOGGER.info("replica %s (%s) started", self.replica_id, self.replica.protocol_name)

    def crash(self) -> None:
        """Stop the replica abruptly: soft state is lost, the log survives.

        Pending client futures are left unresolved (their submitters time
        out), mirroring a process crash.  Use :meth:`restart` to bring the
        replica back from its stable log.
        """
        self.driver.stop()

    def restart(self, state_machine: StateMachine) -> None:
        """Recover the crashed replica from its surviving log and restart it.

        A fresh protocol replica replays the stable log into *state_machine*
        (for protocols implementing recovery) and takes over the transport;
        commands that commit after the restart still resolve their original
        pending futures.
        """
        replica = create_replica(
            self.protocol,
            self.replica_id,
            self.spec,
            clock=self.replica.clock,
            log=self.replica.log,
            state_machine=state_machine,
            config=self.protocol_config or ProtocolConfig(),
            recover=True,
        )
        self.replica = replica
        self.driver = AsyncReplicaDriver(
            replica, self.transport, on_reply=self._on_reply, batching=self.batching
        )
        self.driver.start()

    async def stop(self) -> None:
        self.driver.stop()
        for task in list(self._client_tasks):
            task.cancel()
        self._client_tasks.clear()
        if self._client_server is not None:
            self._client_server.close()
            await self._client_server.wait_closed()
            self._client_server = None
        if isinstance(self.transport, TcpTransport):
            await self.transport.stop()
        for future in self._pending.values():
            if not future.done():
                future.cancel()
        self._pending.clear()
        if self._expiry_handle is not None:
            self._expiry_handle.cancel()
            self._expiry_handle = None
        self._deadlines.clear()

    # ------------------------------------------------------------------
    # Command submission
    # ------------------------------------------------------------------

    async def submit(self, command: Command, timeout: float = 30.0) -> Any:
        """Submit a command and wait for its committed result.

        Timeouts reject the still-pending future with
        :class:`~repro.errors.RequestTimeout` rather than going through
        ``asyncio.wait_for``: ``wait_for`` spends an extra task plus
        cancellation plumbing on every call, which profiling showed was the
        single largest per-command cost under a saturating workload.  And
        instead of one ``call_later`` handle per command, deadlines go on a
        heap served by a single timer armed for the earliest one — firing
        times are identical, but the per-command cost drops to a
        ``heappush``.  Committed commands leave their heap entry behind; it
        is skipped when due (no longer pending) or dropped by compaction.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        command_id = command.command_id
        self._pending[command_id] = future
        self.driver.submit(command)
        deadlines = self._deadlines
        if len(deadlines) > 256 and len(deadlines) > 8 * len(self._pending):
            self._compact_deadlines()
        deadline = loop.time() + timeout
        self._deadline_seq += 1
        heapq.heappush(deadlines, (deadline, self._deadline_seq, command_id, timeout))
        if self._expiry_handle is None or deadline < self._expiry_when:
            if self._expiry_handle is not None:
                self._expiry_handle.cancel()
            self._expiry_when = deadline
            self._expiry_handle = loop.call_at(deadline, self._expire_due)
        try:
            return await future
        finally:
            self._pending.pop(command_id, None)

    def _expire_due(self) -> None:
        """Time out every pending command whose deadline has passed, re-arm."""
        self._expiry_handle = None
        loop = asyncio.get_running_loop()
        now = loop.time()
        deadlines = self._deadlines
        pending = self._pending
        while deadlines and deadlines[0][0] <= now:
            _, _, command_id, timeout = heapq.heappop(deadlines)
            future = pending.get(command_id)
            if future is not None and not future.done():
                future.set_exception(
                    RequestTimeout(
                        f"command {command_id} did not commit within {timeout} s"
                    )
                )
        if deadlines:
            self._expiry_when = deadlines[0][0]
            self._expiry_handle = loop.call_at(self._expiry_when, self._expire_due)

    def _compact_deadlines(self) -> None:
        """Drop heap entries whose commands already settled (lazy deletion).

        Bounds heap memory under sustained throughput with long timeouts:
        without compaction a 30 s timeout at tens of kops would accumulate
        hundreds of thousands of dead entries before any deadline fires.
        """
        pending = self._pending
        self._deadlines = [e for e in self._deadlines if e[2] in pending]
        heapq.heapify(self._deadlines)

    def _on_reply(self, command_id: CommandId, output: Any) -> None:
        future = self._pending.get(command_id)
        if future is not None and not future.done():
            future.set_result(output)

    # ------------------------------------------------------------------
    # Client TCP endpoint
    # ------------------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one client connection, pipelined.

        Requests are submitted as they arrive — the reader never waits for an
        earlier command to commit — so a pipelining client
        (:class:`~repro.runtime.client.ReplicatedKVClient` with
        ``pipeline_depth > 1``) keeps several commands in flight on one
        connection.  Responses are written as commands commit and are matched
        by command id on the client side, so completion order is free to
        differ from submission order.  Batch frames (several requests in one
        length-prefixed envelope) are accepted transparently.
        """
        peer = writer.get_extra_info("peername")
        _LOGGER.debug("client %s connected to replica %s", peer, self.replica_id)

        async def respond(request: ClientRequest) -> None:
            # Fail fast on any submission error, as the pre-pipelining
            # endpoint did by letting exceptions tear down the connection: a
            # silently dropped response would leave the remote client
            # awaiting a reply that can never come.
            try:
                output = await self.submit(request.command)
                response = ClientResponse(request.command.command_id, output)
                if writer.is_closing():
                    return
                writer.write(
                    encode_frame(Envelope(self.replica_id, -1, response), self.registry)
                )
                await writer.drain()
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                _LOGGER.warning(
                    "replica %s dropping client connection %s: %s",
                    self.replica_id,
                    peer,
                    exc,
                )
                writer.close()

        try:
            while True:
                for envelope in await read_envelopes(reader, self.registry):
                    request = envelope.message
                    if not isinstance(request, ClientRequest):
                        _LOGGER.warning(
                            "replica %s got a non-request frame from %s",
                            self.replica_id,
                            peer,
                        )
                        continue
                    task = asyncio.create_task(respond(request))
                    self._client_tasks.add(task)
                    task.add_done_callback(self._client_tasks.discard)
        except (asyncio.IncompleteReadError, ConnectionResetError):
            _LOGGER.debug("client %s disconnected from replica %s", peer, self.replica_id)
        finally:
            writer.close()


__all__ = ["ReplicaServer"]
