"""Asyncio runtime: run the sans-IO protocols on real transports.

The simulator (:mod:`repro.sim`) is the substrate for all paper experiments;
this package runs the very same protocol objects as live asyncio services:

* :class:`~repro.runtime.driver.AsyncReplicaDriver` — executes a replica's
  actions on an event loop and a transport, and schedules its timers.
* :class:`~repro.runtime.server.ReplicaServer` — a replica plus a TCP (or
  in-memory) transport plus a client-facing request/response endpoint.
* :class:`~repro.runtime.client.ReplicatedKVClient` — an asyncio key-value
  client that talks to a :class:`ReplicaServer`.
* :class:`~repro.runtime.local.LocalAsyncCluster` — all replicas in one
  process connected by an in-memory transport with optional injected WAN
  delays; used by the examples to run a "geo-replicated" store live.
"""

from .client import ReplicatedKVClient
from .driver import AsyncReplicaDriver
from .local import LocalAsyncCluster
from .messages import ClientRequest, ClientResponse
from .server import ReplicaServer

__all__ = [
    "AsyncReplicaDriver",
    "ReplicaServer",
    "ReplicatedKVClient",
    "LocalAsyncCluster",
    "ClientRequest",
    "ClientResponse",
]
