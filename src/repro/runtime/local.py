"""Run a whole replicated deployment inside one asyncio process.

:class:`LocalAsyncCluster` wires every replica to an in-memory transport and
optionally injects wide-area delays (half the Table III RTTs) into message
delivery, so examples can experience realistic geo-replication latency while
running locally — the live-runtime counterpart of the discrete-event
simulator.
"""

from __future__ import annotations

import asyncio
from typing import Any, Optional

from ..config import BatchingOptions, ClusterSpec, ProtocolConfig
from ..errors import ConfigurationError
from ..net.latency import LatencyMatrix
from ..net.message import Envelope
from ..net.transport import Transport
from ..statemachine import StateMachine
from ..kvstore.kv import KVStateMachine
from ..types import Command, CommandId, Micros, ReplicaId, micros_to_seconds, next_command_uid
from .server import ReplicaServer


class _DelayedLoopTransport(Transport):
    """In-process transport that delivers after the configured WAN delay."""

    def __init__(self, local_id: ReplicaId, cluster: "LocalAsyncCluster") -> None:
        super().__init__(local_id)
        self._cluster = cluster

    def send(self, envelope: Envelope) -> None:
        if envelope.dst == self.local_id:
            self._dispatch(envelope)
            return
        self._cluster._deliver_later(envelope)


class LocalAsyncCluster:
    """All replicas of a deployment running in one asyncio event loop."""

    def __init__(
        self,
        protocol: str,
        spec: ClusterSpec,
        *,
        latency: Optional[LatencyMatrix] = None,
        protocol_config: Optional[ProtocolConfig] = None,
        state_machine_factory=lambda _rid: KVStateMachine(),
        clock_factory=None,
        batching: Optional[BatchingOptions] = None,
    ) -> None:
        self.protocol = protocol
        self.spec = spec
        self.latency = latency
        self.batching = batching
        self.servers: dict[ReplicaId, ReplicaServer] = {}
        self._transports: dict[ReplicaId, _DelayedLoopTransport] = {}
        self._state_machine_factory = state_machine_factory
        self._down: set[ReplicaId] = set()
        self._partitions: set[frozenset[ReplicaId]] = set()
        #: Messages held back by partitions (quasi-reliable channels: an
        #: outage delays traffic between live replicas, it does not lose it),
        #: as (send sequence, envelope).  A message may be parked at send
        #: time or — if already in flight when the partition started — at
        #: delivery time; releasing in send-sequence order keeps each
        #: channel FIFO across both cases.
        self._parked: dict[tuple[ReplicaId, ReplicaId], list[tuple[int, Envelope]]] = {}
        self._send_seq: dict[tuple[ReplicaId, ReplicaId], int] = {}
        for replica_spec in spec.replicas:
            rid = replica_spec.replica_id
            transport = _DelayedLoopTransport(rid, self)
            self._transports[rid] = transport
            self.servers[rid] = ReplicaServer(
                protocol,
                rid,
                spec,
                state_machine_factory(rid),
                transport=transport,
                protocol_config=protocol_config,
                clock=clock_factory(rid) if clock_factory is not None else None,
                batching=batching,
            )

    # -- delivery --------------------------------------------------------------------

    def _one_way_delay(self, src: ReplicaId, dst: ReplicaId) -> Micros:
        if self.latency is None:
            return 0
        return self.latency.delay(src, dst)

    def _deliver_later(self, envelope: Envelope) -> None:
        key = (envelope.src, envelope.dst)
        seq = self._send_seq.get(key, 0)
        self._send_seq[key] = seq + 1
        self._schedule_delivery(envelope, seq)

    def _schedule_delivery(self, envelope: Envelope, seq: int) -> None:
        if envelope.src in self._down or envelope.dst in self._down:
            return
        if frozenset((envelope.src, envelope.dst)) in self._partitions:
            self._park(envelope, seq)
            return
        delay = micros_to_seconds(self._one_way_delay(envelope.src, envelope.dst))
        loop = asyncio.get_running_loop()
        if delay <= 0:
            loop.call_soon(self._dispatch_or_park, envelope, seq)
        else:
            loop.call_later(delay, self._dispatch_or_park, envelope, seq)

    def _park(self, envelope: Envelope, seq: int) -> None:
        self._parked.setdefault((envelope.src, envelope.dst), []).append((seq, envelope))

    def _dispatch_or_park(self, envelope: Envelope, seq: int) -> None:
        """Delivery-time re-check, mirroring the simulator's network: a
        message in flight when a partition started is parked until heal (a
        crash of either endpoint drops it)."""
        if envelope.src in self._down or envelope.dst in self._down:
            return
        if frozenset((envelope.src, envelope.dst)) in self._partitions:
            self._park(envelope, seq)
            return
        self._transports[envelope.dst]._dispatch(envelope)

    def _release_parked(self, src: ReplicaId, dst: ReplicaId) -> None:
        for seq, envelope in sorted(self._parked.pop((src, dst), [])):
            self._schedule_delivery(envelope, seq)

    # -- lifecycle --------------------------------------------------------------------

    async def start(self) -> None:
        for server in self.servers.values():
            await server.start()

    async def stop(self) -> None:
        for server in self.servers.values():
            await server.stop()

    async def __aenter__(self) -> "LocalAsyncCluster":
        await self.start()
        return self

    async def __aexit__(self, *_exc: Any) -> None:
        await self.stop()

    # -- fault injection ------------------------------------------------------------------

    def crash(self, replica_id: ReplicaId) -> None:
        """Crash a replica: it stops processing; its stable log survives."""
        self.servers[replica_id].crash()
        self._down.add(replica_id)

    def recover(self, replica_id: ReplicaId, rejoin: bool = False) -> None:
        """Recover a crashed replica from its log and reconnect it.

        With ``rejoin`` the recovered replica immediately triggers a
        reconfiguration back to the full deployment (protocols with the
        reconfiguration capability only).
        """
        self._down.discard(replica_id)
        server = self.servers[replica_id]
        server.restart(self._state_machine_factory(replica_id))
        replica = server.replica
        if rejoin and getattr(replica, "reconfig", None) is not None:
            server.driver._perform(replica.reconfig.trigger(tuple(self.spec.replica_ids)))

    def partition(self, a: ReplicaId, b: ReplicaId) -> None:
        """Hold back all traffic between *a* and *b* until healed.

        Quasi-reliable (TCP) channel semantics: parked messages — whether
        sent during the outage or already in flight when it started — are
        re-delivered in send order by :meth:`heal`, never silently lost.
        """
        self._partitions.add(frozenset((a, b)))

    def heal(self, a: ReplicaId, b: ReplicaId) -> None:
        self._partitions.discard(frozenset((a, b)))
        self._release_parked(a, b)
        self._release_parked(b, a)

    def isolate(self, replica_id: ReplicaId) -> None:
        """Partition *replica_id* from every other replica."""
        for other in self.servers:
            if other != replica_id:
                self.partition(replica_id, other)

    def heal_all(self) -> None:
        for a, b in [tuple(pair) for pair in self._partitions]:
            self.heal(a, b)

    def clock_jump(self, replica_id: ReplicaId, delta: Micros) -> None:
        """Step one replica's clock by *delta* µs (needs an adjustable clock)."""
        clock = self.servers[replica_id].replica.clock
        adjust = getattr(clock, "adjust", None)
        if adjust is None:
            raise ConfigurationError(
                f"clock of replica {replica_id} ({type(clock).__name__}) "
                "cannot be stepped; deploy it with an adjustable clock"
            )
        adjust(delta)

    # -- client helpers ------------------------------------------------------------------

    def server_at(self, site: str) -> ReplicaServer:
        return self.servers[self.spec.by_site(site).replica_id]

    async def submit(self, replica_id: ReplicaId, payload: bytes, client: str = "local") -> Any:
        """Submit a raw command payload to a replica and await its result."""
        command = Command(CommandId(client, next_command_uid()), payload)
        return await self.servers[replica_id].submit(command)


__all__ = ["LocalAsyncCluster"]
