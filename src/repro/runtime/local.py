"""Run a whole replicated deployment inside one asyncio process.

:class:`LocalAsyncCluster` wires every replica to an in-memory transport and
optionally injects wide-area delays (half the Table III RTTs) into message
delivery, so examples can experience realistic geo-replication latency while
running locally — the live-runtime counterpart of the discrete-event
simulator.
"""

from __future__ import annotations

import asyncio
from typing import Any, Optional

from ..config import ClusterSpec, ProtocolConfig
from ..net.latency import LatencyMatrix
from ..net.message import Envelope
from ..net.transport import Transport
from ..statemachine import StateMachine
from ..kvstore.kv import KVStateMachine
from ..types import Command, CommandId, Micros, ReplicaId, micros_to_seconds, next_command_uid
from .server import ReplicaServer


class _DelayedLoopTransport(Transport):
    """In-process transport that delivers after the configured WAN delay."""

    def __init__(self, local_id: ReplicaId, cluster: "LocalAsyncCluster") -> None:
        super().__init__(local_id)
        self._cluster = cluster

    def send(self, envelope: Envelope) -> None:
        if envelope.dst == self.local_id:
            self._dispatch(envelope)
            return
        self._cluster._deliver_later(envelope)


class LocalAsyncCluster:
    """All replicas of a deployment running in one asyncio event loop."""

    def __init__(
        self,
        protocol: str,
        spec: ClusterSpec,
        *,
        latency: Optional[LatencyMatrix] = None,
        protocol_config: Optional[ProtocolConfig] = None,
        state_machine_factory=lambda _rid: KVStateMachine(),
        clock_factory=None,
    ) -> None:
        self.protocol = protocol
        self.spec = spec
        self.latency = latency
        self.servers: dict[ReplicaId, ReplicaServer] = {}
        self._transports: dict[ReplicaId, _DelayedLoopTransport] = {}
        for replica_spec in spec.replicas:
            rid = replica_spec.replica_id
            transport = _DelayedLoopTransport(rid, self)
            self._transports[rid] = transport
            self.servers[rid] = ReplicaServer(
                protocol,
                rid,
                spec,
                state_machine_factory(rid),
                transport=transport,
                protocol_config=protocol_config,
                clock=clock_factory(rid) if clock_factory is not None else None,
            )

    # -- delivery --------------------------------------------------------------------

    def _one_way_delay(self, src: ReplicaId, dst: ReplicaId) -> Micros:
        if self.latency is None:
            return 0
        return self.latency.delay(src, dst)

    def _deliver_later(self, envelope: Envelope) -> None:
        delay = micros_to_seconds(self._one_way_delay(envelope.src, envelope.dst))
        loop = asyncio.get_running_loop()
        target = self._transports[envelope.dst]
        if delay <= 0:
            loop.call_soon(target._dispatch, envelope)
        else:
            loop.call_later(delay, target._dispatch, envelope)

    # -- lifecycle --------------------------------------------------------------------

    async def start(self) -> None:
        for server in self.servers.values():
            await server.start()

    async def stop(self) -> None:
        for server in self.servers.values():
            await server.stop()

    async def __aenter__(self) -> "LocalAsyncCluster":
        await self.start()
        return self

    async def __aexit__(self, *_exc: Any) -> None:
        await self.stop()

    # -- client helpers ------------------------------------------------------------------

    def server_at(self, site: str) -> ReplicaServer:
        return self.servers[self.spec.by_site(site).replica_id]

    async def submit(self, replica_id: ReplicaId, payload: bytes, client: str = "local") -> Any:
        """Submit a raw command payload to a replica and await its result."""
        command = Command(CommandId(client, next_command_uid()), payload)
        return await self.servers[replica_id].submit(command)


__all__ = ["LocalAsyncCluster"]
