"""Cluster and protocol configuration objects.

The paper distinguishes between ``Spec`` (the full, administrator-provided
set of replicas, fixed for the lifetime of the system) and ``Config`` (the
currently active subset, changed by reconfiguration).  :class:`ClusterSpec`
models the former; the active configuration is tracked per replica by the
protocols and by :mod:`repro.core.reconfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping, Optional, Sequence

from .errors import ConfigurationError
from .types import Micros, ReplicaId, majority, ms_to_micros


@dataclass(frozen=True, slots=True)
class ReplicaSpec:
    """Static description of a single replica.

    Attributes:
        replica_id: Small integer identifier, unique within the cluster.
        site: Human-readable location name (e.g. ``"CA"`` for the EC2
            California region used by the paper).
        address: Optional network address used by the asyncio runtime
            (``host:port``); the simulator ignores it.
    """

    replica_id: ReplicaId
    site: str
    address: Optional[str] = None

    def __post_init__(self) -> None:
        if self.replica_id < 0:
            raise ConfigurationError(f"replica_id must be >= 0, got {self.replica_id}")
        if not self.site:
            raise ConfigurationError("replica site must be a non-empty string")


@dataclass(frozen=True)
class ClusterSpec:
    """The administrator-specified set of replicas (the paper's ``Spec``).

    The specification is immutable; reconfiguration only changes which of
    these replicas are currently *active*.
    """

    replicas: tuple[ReplicaSpec, ...]

    def __post_init__(self) -> None:
        ids = [r.replica_id for r in self.replicas]
        if len(self.replicas) == 0:
            raise ConfigurationError("a cluster needs at least one replica")
        if len(set(ids)) != len(ids):
            raise ConfigurationError(f"duplicate replica ids in spec: {ids}")
        sites = [r.site for r in self.replicas]
        if len(set(sites)) != len(sites):
            raise ConfigurationError(f"duplicate replica sites in spec: {sites}")

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_sites(cls, sites: Sequence[str]) -> "ClusterSpec":
        """Build a spec with one replica per site, ids assigned in order."""
        return cls(tuple(ReplicaSpec(i, site) for i, site in enumerate(sites)))

    # -- accessors ---------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self.replicas)

    @property
    def replica_ids(self) -> tuple[ReplicaId, ...]:
        return tuple(r.replica_id for r in self.replicas)

    @property
    def sites(self) -> tuple[str, ...]:
        return tuple(r.site for r in self.replicas)

    @property
    def quorum_size(self) -> int:
        """Majority quorum size over the *specification* (the paper commits
        against a majority of ``Spec``, not of the active configuration)."""
        return majority(self.size)

    def replica(self, replica_id: ReplicaId) -> ReplicaSpec:
        for r in self.replicas:
            if r.replica_id == replica_id:
                return r
        raise ConfigurationError(f"unknown replica id {replica_id}")

    def by_site(self, site: str) -> ReplicaSpec:
        for r in self.replicas:
            if r.site == site:
                return r
        raise ConfigurationError(f"unknown replica site {site!r}")

    def others(self, replica_id: ReplicaId) -> tuple[ReplicaId, ...]:
        """All replica ids except *replica_id*."""
        if replica_id not in self.replica_ids:
            raise ConfigurationError(f"unknown replica id {replica_id}")
        return tuple(r for r in self.replica_ids if r != replica_id)

    def with_addresses(self, addresses: Mapping[ReplicaId, str]) -> "ClusterSpec":
        """Return a copy with network addresses attached (asyncio runtime)."""
        new = []
        for r in self.replicas:
            addr = addresses.get(r.replica_id, r.address)
            new.append(replace(r, address=addr))
        return ClusterSpec(tuple(new))


@dataclass(frozen=True, slots=True)
class BatchingOptions:
    """Runtime batching/pipelining knobs shared by both backends.

    Attributes:
        max_batch: Largest number of client commands agreed on as one
            :class:`~repro.protocols.records.CommandBatch` (one protocol
            round / one wire message per batch).  ``1`` disables batching
            entirely — the accumulation path is bypassed and behaviour is
            bit-identical to an unbatched deployment.
        window_us: Opportunistic accumulation window in microseconds.  ``0``
            means "batch whatever is already queued, never wait": commands
            arriving in the same event-loop tick (asyncio) or at the same
            virtual instant (simulator) form a batch, matching the paper's
            implementation note and the cost model's ``batch_window = 0``
            semantics.  A positive window trades latency for larger batches.
        pipeline_depth: How many units a client keeps in flight without
            awaiting the previous commit (message pipelining).  ``1`` is the
            classic closed loop.
    """

    max_batch: int = 1
    window_us: Micros = 0
    pipeline_depth: int = 1

    def __post_init__(self) -> None:
        for name in ("max_batch", "window_us", "pipeline_depth"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ConfigurationError(f"{name} must be an integer, got {value!r}")
        if self.max_batch < 1:
            raise ConfigurationError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.window_us < 0:
            raise ConfigurationError(f"window_us must be >= 0, got {self.window_us}")
        if self.pipeline_depth < 1:
            raise ConfigurationError(
                f"pipeline_depth must be >= 1, got {self.pipeline_depth}"
            )

    @property
    def enabled(self) -> bool:
        """Whether command accumulation is active at all."""
        return self.max_batch > 1


@dataclass(frozen=True, slots=True)
class ProtocolConfig:
    """Tunable parameters shared by the replication protocols.

    Attributes:
        clocktime_interval: The paper's Δ — the minimum interval at which a
            Clock-RSM replica broadcasts CLOCKTIME when idle (Algorithm 2).
            The paper's experiments use 5 ms.
        enable_clocktime_broadcast: Whether Algorithm 2 is enabled at all.
        leader: Designated leader replica id for Paxos / Paxos-bcast.
        batch_window: Opportunistic batching window used by the throughput
            model; 0 means "batch whatever is queued, never wait", matching
            the paper's implementation note.
        mencius_skip_interval: How often an idle Mencius replica voluntarily
            skips its outstanding slots (keeps the protocol live under
            imbalanced load).
        failure_timeout: Failure-detector timeout.
        wait_for_clock: Whether a Clock-RSM replica faithfully waits until its
            physical clock passes a PREPARE timestamp before acknowledging
            (Algorithm 1 line 8).  Disabling it substitutes the HLC-style
            "bump forward" optimisation discussed in DESIGN.md.
        enable_reconfiguration: Whether replicas handle SUSPEND / consensus
            messages (Algorithm 3).
    """

    clocktime_interval: Micros = ms_to_micros(5.0)
    enable_clocktime_broadcast: bool = True
    leader: ReplicaId = 0
    batch_window: Micros = 0
    mencius_skip_interval: Micros = ms_to_micros(5.0)
    failure_timeout: Micros = ms_to_micros(500.0)
    wait_for_clock: bool = True
    enable_reconfiguration: bool = True

    def __post_init__(self) -> None:
        if self.clocktime_interval <= 0:
            raise ConfigurationError("clocktime_interval must be positive")
        if self.mencius_skip_interval <= 0:
            raise ConfigurationError("mencius_skip_interval must be positive")
        if self.failure_timeout <= 0:
            raise ConfigurationError("failure_timeout must be positive")
        if self.leader < 0:
            raise ConfigurationError("leader id must be >= 0")


def validate_active_config(spec: ClusterSpec, active: Iterable[ReplicaId]) -> tuple[ReplicaId, ...]:
    """Check that an active configuration is a majority subset of the spec.

    The paper requires ``Config ⊆ Spec`` and ``|Config| >= majority(|Spec|)``.
    Returns the active ids as a sorted tuple.
    """
    active_ids = tuple(sorted(set(active)))
    unknown = [a for a in active_ids if a not in spec.replica_ids]
    if unknown:
        raise ConfigurationError(f"active replicas {unknown} are not in the spec")
    if len(active_ids) < spec.quorum_size:
        raise ConfigurationError(
            f"active configuration {active_ids} is smaller than a majority "
            f"of the spec ({spec.quorum_size} of {spec.size})"
        )
    return active_ids


__all__ = [
    "ReplicaSpec",
    "ClusterSpec",
    "BatchingOptions",
    "ProtocolConfig",
    "validate_active_config",
]
