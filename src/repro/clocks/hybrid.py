"""Hybrid logical clock (HLC) — an optional extension.

Clock-RSM only needs loosely synchronized physical clocks, but a hybrid
logical clock bounds the divergence between the timestamps a replica assigns
and the physical time, while also capturing causality when messages carry
timestamps.  We provide it as an extension: plugging an HLC into Clock-RSM in
place of the raw physical clock removes the (already unlikely) wait at
Algorithm 1 line 8 for messages that causally precede the local event.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..types import Micros
from .base import Clock


@dataclass(frozen=True, order=True, slots=True)
class HlcReading:
    """An HLC reading: physical component plus logical tie-breaker."""

    physical: Micros
    logical: int

    def as_micros(self) -> Micros:
        """Flatten to microseconds (logical component folded into the LSBs).

        The logical counter rarely exceeds a handful of increments between
        physical ticks, so folding it in keeps readings close to physical
        time while remaining strictly increasing.
        """
        return self.physical * 64 + min(self.logical, 63)


class HybridLogicalClock(Clock):
    """A hybrid logical clock layered over a physical clock.

    Implements the update rules of Kulkarni et al.: local events and message
    receipts both produce readings that are strictly greater than any reading
    previously seen, and the physical component never lags the underlying
    physical clock.
    """

    def __init__(self, physical: Clock) -> None:
        self._physical = physical
        self._latest = HlcReading(0, 0)

    @property
    def latest(self) -> HlcReading:
        """The most recent reading issued or merged."""
        return self._latest

    def tick(self) -> HlcReading:
        """Advance the clock for a local or send event and return the reading."""
        pt = self._physical.now()
        if pt > self._latest.physical:
            self._latest = HlcReading(pt, 0)
        else:
            self._latest = HlcReading(self._latest.physical, self._latest.logical + 1)
        return self._latest

    def merge(self, remote: HlcReading) -> HlcReading:
        """Advance the clock for a message receipt carrying *remote*."""
        pt = self._physical.now()
        physical = max(pt, self._latest.physical, remote.physical)
        if physical == self._latest.physical == remote.physical:
            logical = max(self._latest.logical, remote.logical) + 1
        elif physical == self._latest.physical:
            logical = self._latest.logical + 1
        elif physical == remote.physical:
            logical = remote.logical + 1
        else:
            logical = 0
        self._latest = HlcReading(physical, logical)
        return self._latest

    def now(self) -> Micros:
        """Clock interface: a strictly increasing microsecond reading."""
        return self.tick().as_micros()


__all__ = ["HlcReading", "HybridLogicalClock"]
