"""Clock interfaces and monotonicity helpers."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

from ..errors import ClockError
from ..types import Micros, ReplicaId, Timestamp


class TimeSource(ABC):
    """A source of "true" time, in microseconds.

    In simulation the time source is the discrete-event environment; in the
    asyncio runtime it is the operating system's monotonic clock.  Clock
    models (:mod:`repro.clocks.physical`) derive possibly-skewed readings
    from a time source.
    """

    @abstractmethod
    def true_now(self) -> Micros:
        """Return the current true time in microseconds."""


class Clock(ABC):
    """The clock interface consumed by the replication protocols.

    A clock returns microsecond readings that are *loosely* synchronized with
    other replicas' clocks.  Readings must be non-decreasing; Clock-RSM's
    correctness does not depend on the synchronization precision, only on
    monotonicity (which :class:`MonotonicClock` enforces for imperfect
    sources).
    """

    @abstractmethod
    def now(self) -> Micros:
        """Return the current clock reading in microseconds."""


class ManualClock(Clock):
    """A clock advanced explicitly by the caller (used heavily in tests)."""

    def __init__(self, start: Micros = 0) -> None:
        self._now = start

    def now(self) -> Micros:
        return self._now

    def advance(self, delta: Micros) -> Micros:
        """Advance the clock by *delta* microseconds and return the new time."""
        if delta < 0:
            raise ClockError(f"cannot advance a clock backwards (delta={delta})")
        self._now += delta
        return self._now

    def set(self, value: Micros) -> None:
        """Jump the clock to *value*; must not move backwards."""
        if value < self._now:
            raise ClockError(f"cannot move clock backwards from {self._now} to {value}")
        self._now = value


class MonotonicClock(Clock):
    """Wraps another clock and guarantees non-decreasing readings.

    The paper obtains monotonically increasing timestamps from
    ``clock_gettime``; NTP adjustments may step a raw clock backwards, so the
    runtime wraps raw clocks in this class.
    """

    def __init__(self, inner: Clock) -> None:
        self._inner = inner
        self._last: Micros = 0

    def now(self) -> Micros:
        reading = self._inner.now()
        if reading < self._last:
            reading = self._last
        self._last = reading
        return reading


class MonotonicTimestampSource:
    """Generates strictly increasing :class:`Timestamp` values for a replica.

    Clock-RSM requires every replica to send PREPARE and PREPAREOK messages
    in timestamp order, and two commands originating at the same replica must
    never share a timestamp.  This source reads the replica's physical clock
    and bumps the reading by one microsecond whenever the clock has not
    advanced since the previous timestamp.
    """

    def __init__(self, clock: Clock, replica_id: ReplicaId) -> None:
        self._clock = clock
        self._replica_id = replica_id
        # Start at 0 (not -1) so that no issued timestamp ever has micros == 0.
        # ``LatestTV`` entries are initialised to 0 meaning "nothing received
        # from this replica yet"; a command timestamped 0 would satisfy the
        # stable-order condition vacuously and could commit ahead of a
        # smaller-tie-break command still in flight, breaking total order.
        self._last_micros: Micros = 0

    @property
    def replica_id(self) -> ReplicaId:
        return self._replica_id

    def last_issued(self) -> Micros:
        """The microsecond component of the most recently issued timestamp."""
        return self._last_micros

    def next(self) -> Timestamp:
        """Return a fresh timestamp strictly greater than any issued before."""
        reading = self._clock.now()
        if reading <= self._last_micros:
            reading = self._last_micros + 1
        self._last_micros = reading
        return Timestamp(reading, self._replica_id)

    def observe(self, micros: Micros) -> None:
        """Record that *micros* was carried by an outgoing message.

        Keeps the "never send a smaller timestamp afterwards" promise when a
        clock reading is sent directly (e.g. CLOCKTIME broadcasts).
        """
        if micros > self._last_micros:
            self._last_micros = micros


ClockFactory = Callable[[ReplicaId], Clock]
"""Factory signature used by cluster builders to create per-replica clocks."""


__all__ = [
    "TimeSource",
    "Clock",
    "ManualClock",
    "MonotonicClock",
    "MonotonicTimestampSource",
    "ClockFactory",
]
