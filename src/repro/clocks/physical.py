"""Physical clock models: perfect, skewed, drifting, and system clocks."""

from __future__ import annotations

import time

from ..errors import ClockError
from ..types import Micros
from .base import Clock, TimeSource


class PerfectClock(Clock):
    """A clock that reads true time exactly (zero skew, zero drift)."""

    def __init__(self, source: TimeSource) -> None:
        self._source = source

    def now(self) -> Micros:
        return self._source.true_now()


class SkewedClock(Clock):
    """A clock with a constant offset from true time.

    ``skew`` may be negative (the clock runs behind true time).  A negative
    reading is clamped to zero so that timestamps remain valid.
    """

    def __init__(self, source: TimeSource, skew: Micros = 0) -> None:
        self._source = source
        self._skew = skew

    @property
    def skew(self) -> Micros:
        return self._skew

    def adjust(self, delta: Micros) -> None:
        """Slew the clock by *delta* microseconds (used by NTP adjustment)."""
        self._skew += delta

    def now(self) -> Micros:
        return max(0, self._source.true_now() + self._skew)


class DriftingClock(Clock):
    """A clock with constant offset plus linear drift.

    ``drift_ppm`` is the frequency error in parts per million: a value of 50
    means the clock gains 50 µs per true second.  Real quartz oscillators
    exhibit tens of ppm of drift; NTP corrects the accumulated error
    periodically (see :class:`repro.clocks.ntp.NtpSynchronizer`).
    """

    def __init__(self, source: TimeSource, skew: Micros = 0, drift_ppm: float = 0.0) -> None:
        self._source = source
        self._skew = skew
        self._drift_ppm = drift_ppm

    @property
    def skew(self) -> Micros:
        return self._skew

    @property
    def drift_ppm(self) -> float:
        return self._drift_ppm

    def adjust(self, delta: Micros) -> None:
        """Slew the clock offset by *delta* microseconds."""
        self._skew += delta

    def error_at(self, true_now: Micros) -> Micros:
        """Total clock error (offset + accumulated drift) at *true_now*."""
        return self._skew + int(true_now * self._drift_ppm / 1_000_000)

    def now(self) -> Micros:
        true_now = self._source.true_now()
        return max(0, true_now + self.error_at(true_now))


class SystemClock(Clock):
    """Wall-clock backed clock for the asyncio runtime.

    Uses ``time.monotonic_ns`` anchored to ``time.time_ns`` at construction,
    mirroring the paper's use of ``clock_gettime`` to obtain monotonically
    increasing readings while remaining loosely synchronized (via the host's
    NTP daemon) with other replicas.
    """

    def __init__(self) -> None:
        self._anchor_wall_us = time.time_ns() // 1_000
        self._anchor_mono_us = time.monotonic_ns() // 1_000

    def now(self) -> Micros:
        elapsed = time.monotonic_ns() // 1_000 - self._anchor_mono_us
        if elapsed < 0:  # pragma: no cover - monotonic clocks do not go back
            raise ClockError("monotonic clock went backwards")
        return self._anchor_wall_us + elapsed


__all__ = ["PerfectClock", "SkewedClock", "DriftingClock", "SystemClock"]
