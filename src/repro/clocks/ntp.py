"""An NTP-style clock synchronizer for simulated deployments.

The paper runs ``ntpd`` against nearby public servers at every data center.
For the simulated deployment we provide a small synchronizer that implements
the classic NTP offset/delay estimator over four timestamps and slews a
:class:`~repro.clocks.physical.SkewedClock` or
:class:`~repro.clocks.physical.DriftingClock` toward the reference.

The synchronizer is intentionally simple (no Marzullo intersection, no
per-peer filtering); its purpose is to keep simulated clock errors within a
configurable bound so that experiments can demonstrate Clock-RSM's
insensitivity to loose synchronization, not to reproduce ntpd itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from ..types import Micros


class AdjustableClock(Protocol):
    """A clock whose offset can be slewed (duck-typed)."""

    def now(self) -> Micros: ...

    def adjust(self, delta: Micros) -> None: ...


@dataclass(frozen=True, slots=True)
class NtpSample:
    """The four timestamps of one NTP request/response exchange.

    Attributes:
        t1: client transmit time (client clock).
        t2: server receive time (server clock).
        t3: server transmit time (server clock).
        t4: client receive time (client clock).
    """

    t1: Micros
    t2: Micros
    t3: Micros
    t4: Micros

    @property
    def offset(self) -> Micros:
        """Estimated offset of the server clock relative to the client clock."""
        return ((self.t2 - self.t1) + (self.t3 - self.t4)) // 2

    @property
    def delay(self) -> Micros:
        """Estimated round-trip network delay of the exchange."""
        return (self.t4 - self.t1) - (self.t3 - self.t2)


class NtpSynchronizer:
    """Slews a local clock toward a reference using NTP offset samples.

    Args:
        clock: The adjustable local clock.
        slew_fraction: Fraction of the estimated offset corrected per sample.
            1.0 steps immediately; smaller values model gradual slewing.
        min_correction: Offsets smaller than this are ignored (dead band).
    """

    def __init__(
        self,
        clock: AdjustableClock,
        slew_fraction: float = 0.5,
        min_correction: Micros = 100,
    ) -> None:
        if not 0.0 < slew_fraction <= 1.0:
            raise ValueError("slew_fraction must be in (0, 1]")
        self._clock = clock
        self._slew_fraction = slew_fraction
        self._min_correction = min_correction
        self._samples: list[NtpSample] = []

    @property
    def samples(self) -> tuple[NtpSample, ...]:
        """All samples observed so far (most recent last)."""
        return tuple(self._samples)

    def ingest(self, sample: NtpSample) -> Micros:
        """Apply one NTP exchange and return the correction applied (µs)."""
        self._samples.append(sample)
        offset = sample.offset
        if abs(offset) < self._min_correction:
            return 0
        correction = int(offset * self._slew_fraction)
        self._clock.adjust(correction)
        return correction

    def estimated_error(self) -> Micros:
        """Magnitude of the most recent offset estimate (0 if no samples)."""
        if not self._samples:
            return 0
        return abs(self._samples[-1].offset)


__all__ = ["NtpSample", "NtpSynchronizer", "AdjustableClock"]
