"""Physical clock models.

Clock-RSM assumes each replica has a loosely synchronized physical clock.
This package provides:

* :class:`~repro.clocks.base.Clock` — the minimal interface the protocols
  consume (a monotonically non-decreasing :meth:`now`).
* :class:`~repro.clocks.base.MonotonicTimestampSource` — the strictly
  monotonic per-replica timestamp generator used when assigning command
  timestamps and PREPAREOK clock readings (the protocol requires both to be
  sent in increasing order).
* :class:`~repro.clocks.physical.SkewedClock` /
  :class:`~repro.clocks.physical.DriftingClock` — clock-error models used in
  simulation.
* :class:`~repro.clocks.physical.SystemClock` — wall-clock backed clock for
  the asyncio runtime.
* :class:`~repro.clocks.ntp.NtpSynchronizer` — an NTP-style offset estimator
  that keeps simulated clocks loosely synchronized.
* :class:`~repro.clocks.hybrid.HybridLogicalClock` — an HLC variant offered
  as an extension (not required by the paper).
"""

from .base import Clock, ManualClock, MonotonicClock, MonotonicTimestampSource, TimeSource
from .hybrid import HybridLogicalClock
from .ntp import NtpSample, NtpSynchronizer
from .physical import DriftingClock, PerfectClock, SkewedClock, SystemClock

__all__ = [
    "Clock",
    "TimeSource",
    "ManualClock",
    "MonotonicClock",
    "MonotonicTimestampSource",
    "PerfectClock",
    "SkewedClock",
    "DriftingClock",
    "SystemClock",
    "NtpSample",
    "NtpSynchronizer",
    "HybridLogicalClock",
]
