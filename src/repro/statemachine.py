"""The replicated state machine interface.

State machine replication orders *commands*; the state machine interprets
them.  Protocols call :meth:`StateMachine.apply` exactly once per committed
command, in the agreed total order, so any deterministic implementation of
this interface is replicated consistently (the paper's Section II-B).

:mod:`repro.kvstore` provides the key-value state machine used throughout the
paper's evaluation; the small machines here are used by tests and examples.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

from .types import Command


class StateMachine(ABC):
    """A deterministic state machine driven by opaque command payloads."""

    @abstractmethod
    def apply(self, command: Command) -> Any:
        """Apply *command* and return its output.

        Must be deterministic: the output and the state transition may depend
        only on the current state and the command payload.
        """

    @abstractmethod
    def snapshot(self) -> bytes:
        """Serialize the current state (used for checkpoints/state transfer)."""

    @abstractmethod
    def restore(self, snapshot: bytes) -> None:
        """Replace the current state with a previously taken snapshot."""


class NullStateMachine(StateMachine):
    """Discards every command; useful for pure protocol benchmarks."""

    def __init__(self) -> None:
        self.applied_count = 0

    def apply(self, command: Command) -> Any:
        self.applied_count += 1
        return None

    def snapshot(self) -> bytes:
        return self.applied_count.to_bytes(8, "big")

    def restore(self, snapshot: bytes) -> None:
        self.applied_count = int.from_bytes(snapshot, "big")


class AppendLogStateMachine(StateMachine):
    """Records every applied payload in order; used by correctness tests.

    Two replicas are consistent exactly when their ``history`` lists are
    prefixes of one another, which makes linearizability/total-order checks
    straightforward to express.
    """

    def __init__(self) -> None:
        self.history: list[bytes] = []

    def apply(self, command: Command) -> Any:
        self.history.append(command.payload)
        return len(self.history)

    def snapshot(self) -> bytes:
        from .net.wire import encode

        return encode([bytes(p) for p in self.history])

    def restore(self, snapshot: bytes) -> None:
        from .net.wire import decode

        self.history = list(decode(snapshot))


class CounterStateMachine(StateMachine):
    """Interprets payloads as signed integer deltas applied to a counter."""

    def __init__(self) -> None:
        self.value = 0

    def apply(self, command: Command) -> Any:
        if command.payload:
            self.value += int.from_bytes(command.payload, "big", signed=True)
        return self.value

    def snapshot(self) -> bytes:
        return self.value.to_bytes(16, "big", signed=True)

    def restore(self, snapshot: bytes) -> None:
        self.value = int.from_bytes(snapshot, "big", signed=True)


__all__ = [
    "StateMachine",
    "NullStateMachine",
    "AppendLogStateMachine",
    "CounterStateMachine",
]
