"""Command-line interface for the Clock-RSM reproduction.

Exposes the benchmark harness without pytest::

    python -m repro.cli run examples/specs/fig1_balanced_5.toml
    python -m repro.cli run examples/specs/fig1_balanced_5.toml --backend async
    python -m repro.cli run examples/specs/fig1_balanced_5.toml --shards 4
    python -m repro.cli check examples/specs/crash_leaderless_commit.toml
    python -m repro.cli protocols
    python -m repro.cli latency --sites CA VA IR JP SG --leader VA
    python -m repro.cli imbalanced --sites CA VA IR JP SG --leader CA
    python -m repro.cli throughput --sizes 10 100 1000
    python -m repro.cli numerical
    python -m repro.cli analyze --sites CA IR BR

``run`` executes a declarative :class:`~repro.experiment.ExperimentSpec`
file (TOML or JSON) on either backend; ``check`` additionally records the
operation history and verifies it is linearizable (exit status 1 when it is
not); ``protocols`` prints the registry's capability table; the ``latency``
/ ``imbalanced`` / ``throughput`` subcommands build the same specs
internally and run them through :class:`~repro.experiment.Deployment`.

The protocol, scenario, and backend listings in the ``--help`` output are
generated from the live registries (:mod:`repro.protocols.registry`,
:mod:`repro.workload.scenarios`, :data:`repro.experiment.BACKENDS`), so a
newly registered protocol or scenario shows up without touching this file.

Installed as the ``clock-rsm-repro`` console script.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from typing import Optional, Sequence

from .analysis.comparison import best_paxos_bcast_leader, compare_group
from .analysis.ec2 import EC2_SITES, ec2_latency_matrix
from .bench.latency_experiments import (
    LATENCY_PROTOCOLS,
    LatencyExperimentConfig,
    run_imbalanced_comparison,
    run_latency_comparison,
)
from .bench.numerical import figure7_data, table2_rows, table4_rows
from .bench.reporting import (
    format_latency_table,
    format_table,
    format_throughput,
)
from .bench.throughput import run_throughput_comparison
from .errors import ReproError
from .experiment import (
    BACKENDS,
    BatchingSpec,
    Deployment,
    ExperimentSpec,
    ShardingSpec,
    check_spec,
)
from .protocols.registry import available_protocols, capability_rows
from .types import seconds_to_micros


def _registry_epilog() -> str:
    """Help-text listing of the live registries (never hard-coded prose)."""
    from .workload.scenarios import SCENARIO_BUILDERS

    return (
        f"protocols: {', '.join(available_protocols())}\n"
        f"workload scenarios: {', '.join(sorted(SCENARIO_BUILDERS))}\n"
        f"backends: {', '.join(sorted(BACKENDS))}\n"
        "(see `clock-rsm-repro protocols` for the capability table)"
    )


def _add_site_arguments(parser: argparse.ArgumentParser, default_sites: Sequence[str]) -> None:
    parser.add_argument(
        "--sites", nargs="+", default=list(default_sites), choices=EC2_SITES,
        help="EC2 sites hosting a replica (Table III data centers)",
    )
    parser.add_argument("--leader", default=None, choices=EC2_SITES,
                        help="Paxos / Paxos-bcast leader site")
    parser.add_argument("--seconds", type=float, default=8.0,
                        help="simulated seconds of workload per protocol")
    parser.add_argument("--clients", type=int, default=12,
                        help="closed-loop clients per site")
    parser.add_argument("--seed", type=int, default=42, help="simulation seed")
    parser.add_argument(
        "--protocols", nargs="+", default=list(LATENCY_PROTOCOLS),
        choices=list(LATENCY_PROTOCOLS) + ["mencius"],
        help="protocols to compare",
    )


def _resolve_leader(sites: Sequence[str], leader: Optional[str]) -> str:
    if leader is not None:
        if leader not in sites:
            raise SystemExit(f"leader {leader} is not among the selected sites {list(sites)}")
        return leader
    matrix = ec2_latency_matrix(sites)
    return sites[best_paxos_bcast_leader(matrix)]


def _latency_config(args: argparse.Namespace, balanced: bool, origin: Optional[str] = None):
    leader = _resolve_leader(args.sites, args.leader)
    return LatencyExperimentConfig(
        sites=tuple(args.sites),
        leader_site=leader,
        balanced=balanced,
        origin_site=origin,
        duration=seconds_to_micros(args.seconds),
        warmup=seconds_to_micros(min(2.0, args.seconds / 4)),
        clients_per_replica=args.clients,
        seed=args.seed,
    )


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------


def _apply_shards(spec: ExperimentSpec, shards: Optional[int]) -> ExperimentSpec:
    """Apply a ``--shards`` override to a loaded spec.

    The spec's per-shard overrides are kept as written: shrinking the count
    below an override's index is a :class:`ConfigurationError` (reported as
    ``error: ...``), never a silently dropped override.
    """
    if shards is None:
        return spec
    base = spec.sharding or ShardingSpec()
    return replace(spec, sharding=replace(base, shards=shards))


def _apply_batch(spec: ExperimentSpec, batch: Optional[int]) -> ExperimentSpec:
    """Apply a ``--batch`` override to a loaded spec.

    Overrides (or introduces) the ``[batching]`` table's ``max_batch``; the
    spec's window and pipeline depth are kept as written.  ``--batch 1``
    explicitly disables batching on a spec that configures it.
    """
    if batch is None:
        return spec
    base = spec.batching or BatchingSpec()
    return replace(spec, batching=replace(base, max_batch=batch))


def cmd_run(args: argparse.Namespace) -> int:
    """Run a declarative experiment spec file on the chosen backend."""
    try:
        spec = _apply_shards(ExperimentSpec.from_file(args.spec), args.shards)
        spec = _apply_batch(spec, args.batch)
        options = (
            {"time_scale": args.time_scale}
            if args.backend in ("async", "proc")
            else {}
        )
        if args.uvloop:
            if args.backend != "async":
                raise SystemExit("error: --uvloop applies to the async backend only")
            options["uvloop"] = True
        result = Deployment(spec, backend=args.backend, **options).run()
    except ReproError as exc:
        raise SystemExit(f"error: {exc}")
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
        return 0
    shard_count = len(result.shards) if result.shards is not None else 1
    sharded = f", {shard_count} shards" if shard_count > 1 else ""
    title = (
        f"{result.name}: {result.protocol} on the {result.backend} backend, "
        f"{result.duration_s:g} s measured{sharded}"
    )
    print(format_table(result.per_site_rows(), title))
    print(
        f"total committed: {result.total_committed} "
        f"({result.throughput_kops:.1f} kop/s)"
    )
    if result.shards is not None:
        for index, shard_result in enumerate(result.shards):
            print(
                f"  shard {index} [{shard_result.protocol}]: "
                f"{shard_result.total_committed} committed "
                f"({shard_result.throughput_kops:.1f} kop/s)"
            )
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    """Run a spec with history recording and verify linearizability."""
    backends = ["sim", "async"] if args.backend == "both" else [args.backend]
    exit_code = 0
    runs = []
    if args.uvloop and "async" not in backends:
        raise SystemExit("error: --uvloop applies to the async backend only")
    try:
        spec = _apply_shards(ExperimentSpec.from_file(args.spec), args.shards)
        spec = _apply_batch(spec, args.batch)
        for backend in backends:
            options = (
                {"time_scale": args.time_scale, "submit_timeout": args.submit_timeout}
                if backend in ("async", "proc")
                else {}
            )
            if args.uvloop and backend == "async":
                options["uvloop"] = True
            run = check_spec(spec, backend=backend, **options)
            runs.append(run)
            if not run.linearizable:
                exit_code = 1
    except ReproError as exc:
        raise SystemExit(f"error: {exc}")
    if args.json:
        print(json.dumps([run.to_dict() for run in runs], indent=2))
    else:
        for run in runs:
            print(run.describe())
    return exit_code


def cmd_protocols(args: argparse.Namespace) -> int:
    """Print the protocol registry's capability table.

    The rows come from :func:`repro.protocols.registry.capability_rows`,
    the same source the docs test checks ``docs/PROTOCOLS.md`` against, so
    the CLI table and the documentation cannot drift apart.
    """
    print(format_table(capability_rows(), "Registered protocols and their capabilities"))
    return 0


def cmd_latency(args: argparse.Namespace) -> int:
    """Balanced-workload latency comparison (Figures 1 and 2)."""
    config = _latency_config(args, balanced=True)
    results = run_latency_comparison(config, protocols=args.protocols)
    print(format_latency_table(
        results, args.sites,
        f"Balanced workload, leader {config.leader_site}, {args.seconds:.0f} s simulated",
    ))
    return 0


def cmd_imbalanced(args: argparse.Namespace) -> int:
    """Imbalanced-workload latency comparison (Figure 5): one run per origin."""
    leader = _resolve_leader(args.sites, args.leader)
    results = run_imbalanced_comparison(
        sites=tuple(args.sites),
        leader_site=leader,
        protocols=tuple(args.protocols),
        duration=seconds_to_micros(args.seconds),
        warmup=seconds_to_micros(min(2.0, args.seconds / 4)),
        clients_per_replica=args.clients,
        seed=args.seed,
    )
    print(format_latency_table(
        results, args.sites, f"Imbalanced workload (one origin per run), leader {leader}"
    ))
    return 0


def cmd_throughput(args: argparse.Namespace) -> int:
    """Saturated-throughput comparison (Figure 8)."""
    results = run_throughput_comparison(
        command_sizes=tuple(args.sizes),
        replica_count=args.replicas,
        window=seconds_to_micros(args.window),
        warmup=seconds_to_micros(args.window / 4),
    )
    print(format_throughput(results, "Saturated throughput (kop/s)"))
    return 0


def cmd_numerical(args: argparse.Namespace) -> int:
    """Analytical comparison over all placements (Figure 7 and Table IV)."""
    print(format_table(figure7_data(), "Figure 7: average latency by group size"))
    print(format_table(table4_rows(), "Table IV: latency reduction of Clock-RSM over Paxos-bcast"))
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """Table II instantiation and placement advice for a chosen set of sites."""
    sites = list(dict.fromkeys(args.sites))
    if len(sites) < 3:
        raise SystemExit("pick at least three sites")
    leader = _resolve_leader(sites, args.leader)
    print(format_table(
        table2_rows(sites, leader), f"Expected commit latency (ms), leader {leader}"
    ))
    comparison = compare_group(sites)
    delta = comparison.paxos_bcast_average - comparison.clock_rsm_average
    verdict = (
        f"Clock-RSM is better by {delta:.1f} ms on average"
        if delta > 0
        else f"Paxos-bcast (leader {comparison.paxos_bcast_leader}) is better by {-delta:.1f} ms on average"
    )
    print(verdict)
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="clock-rsm-repro",
        description="Clock-RSM (DSN 2014) reproduction: latency/throughput experiments and analysis.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    epilog = _registry_epilog()

    run = subparsers.add_parser(
        "run", help="run a declarative experiment spec file (.toml / .json)",
        epilog=epilog, formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    run.add_argument("spec", help="path to an ExperimentSpec file")
    run.add_argument("--backend", default="sim", choices=sorted(BACKENDS),
                     help="experiment backend (see the listing below)")
    run.add_argument("--time-scale", type=float, default=20.0,
                     help="async/proc backends: divide delays and durations "
                          "by this factor")
    run.add_argument("--shards", type=int, default=None,
                     help="override the spec's [sharding] shard count "
                          "(deploys N independent protocol groups)")
    run.add_argument("--batch", type=int, default=None,
                     help="override the spec's [batching] max_batch "
                          "(commands agreed on per protocol round; 1 disables)")
    run.add_argument("--uvloop", action="store_true",
                     help="async backend: run under the uvloop event loop "
                          "(falls back to the stdlib loop if not installed)")
    run.add_argument("--json", action="store_true",
                     help="print the full result as JSON instead of a table")
    run.set_defaults(handler=cmd_run)

    check = subparsers.add_parser(
        "check",
        help="run a spec with history recording and verify linearizability",
        epilog=epilog, formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    check.add_argument("spec", help="path to an ExperimentSpec file")
    check.add_argument("--backend", default="sim",
                       choices=sorted(BACKENDS) + ["both"],
                       help="backend(s) to run the spec on before checking")
    check.add_argument("--time-scale", type=float, default=20.0,
                       help="async/proc backends: divide delays and durations "
                            "by this factor")
    check.add_argument("--submit-timeout", type=float, default=5.0,
                       help="async/proc backends: per-command commit timeout "
                            "in seconds")
    check.add_argument("--shards", type=int, default=None,
                       help="override the spec's [sharding] shard count "
                            "(checks per-shard linearizability)")
    check.add_argument("--batch", type=int, default=None,
                       help="override the spec's [batching] max_batch before "
                            "checking (batches must stay linearizable)")
    check.add_argument("--uvloop", action="store_true",
                       help="async backend: run under the uvloop event loop "
                            "(falls back to the stdlib loop if not installed)")
    check.add_argument("--json", action="store_true",
                       help="print results and verdicts as JSON")
    check.set_defaults(handler=cmd_check)

    protocols = subparsers.add_parser(
        "protocols", help="print the registered protocols and their capabilities"
    )
    protocols.set_defaults(handler=cmd_protocols)

    latency = subparsers.add_parser("latency", help="balanced-workload latency comparison")
    _add_site_arguments(latency, ("CA", "VA", "IR", "JP", "SG"))
    latency.set_defaults(handler=cmd_latency)

    imbalanced = subparsers.add_parser("imbalanced", help="imbalanced-workload latency comparison")
    _add_site_arguments(imbalanced, ("CA", "VA", "IR", "JP", "SG"))
    imbalanced.set_defaults(handler=cmd_imbalanced)

    throughput = subparsers.add_parser("throughput", help="saturated throughput comparison")
    throughput.add_argument("--sizes", nargs="+", type=int, default=[10, 100, 1000],
                            help="command payload sizes in bytes")
    throughput.add_argument("--replicas", type=int, default=5, help="number of replicas")
    throughput.add_argument("--window", type=float, default=0.4,
                            help="measurement window in simulated seconds")
    throughput.set_defaults(handler=cmd_throughput)

    numerical = subparsers.add_parser("numerical", help="analytical Figure 7 / Table IV")
    numerical.set_defaults(handler=cmd_numerical)

    analyze = subparsers.add_parser("analyze", help="Table II model for a custom placement")
    analyze.add_argument("--sites", nargs="+", default=["CA", "VA", "IR"], choices=EC2_SITES)
    analyze.add_argument("--leader", default=None, choices=EC2_SITES)
    analyze.set_defaults(handler=cmd_analyze)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess/tests
    sys.exit(main())
