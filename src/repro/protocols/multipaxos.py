"""Multi-Paxos baseline (stable leader, phase 2 only).

The paper's Paxos baseline is classic Multi-Paxos with a designated leader
that has already completed phase 1 for all future instances: a non-leader
replica forwards its client commands to the leader; the leader assigns each
command the next slot and runs phase 2 against all replicas; once a majority
of phase-2b responses arrives, the command is committed and the leader
notifies every replica (which is the fourth message step the Paxos-bcast
variant removes).

Replicas execute slots in order.  Leader changes are out of scope for the
latency/throughput experiments (the paper keeps a static leader per run);
reconfiguration for Clock-RSM is implemented separately in
:mod:`repro.core.reconfig`.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Any

from ..net.message import register_message
from ..types import Command, CommandId, ReplicaId
from .base import (
    PAXOS,
    Action,
    Broadcast,
    ClientReply,
    Replica,
    Send,
    Timer,
)
from .records import AcceptRecord, CommandUnit, DecideRecord, unit_commands
from .slots import SlotLedger

_LOGGER = logging.getLogger(__name__)


# ---------------------------------------------------------------------------
# Messages
# ---------------------------------------------------------------------------


@register_message
@dataclass(frozen=True, slots=True)
class Forward:
    """A client unit forwarded from a non-leader replica to the leader."""

    command: CommandUnit


@register_message
@dataclass(frozen=True, slots=True)
class Phase2a:
    """Leader's accept request for *command* (a unit) in *slot*."""

    slot: int
    command: CommandUnit


@register_message
@dataclass(frozen=True, slots=True)
class Phase2b:
    """Acceptor's acknowledgement that it logged the command in *slot*."""

    slot: int


@register_message
@dataclass(frozen=True, slots=True)
class CommitSlot:
    """Leader's commit notification for *slot* (classic Paxos only)."""

    slot: int


# ---------------------------------------------------------------------------
# Replica
# ---------------------------------------------------------------------------


class MultiPaxosReplica(Replica):
    """A Multi-Paxos replica with a statically designated leader."""

    protocol_name = PAXOS
    #: Paxos-bcast overrides this: acceptors broadcast phase-2b messages and
    #: every replica learns commits locally, removing the final leader step.
    broadcast_phase2b = False

    def __init__(self, replica_id: ReplicaId, spec: Any, **kwargs: Any) -> None:
        super().__init__(replica_id, spec, **kwargs)
        self.leader: ReplicaId = self.config.leader
        if self.leader not in spec.replica_ids:
            raise ValueError(f"configured leader {self.leader} is not in the spec")
        self.ledger = SlotLedger()
        #: Next free slot; meaningful only at the leader.
        self.next_slot = 0
        #: Commands this replica originated and has not yet answered.
        self._my_commands: dict[CommandId, Command] = {}

    # -- identity ------------------------------------------------------------

    @property
    def is_leader(self) -> bool:
        return self.replica_id == self.leader

    # -- client requests -------------------------------------------------------

    def on_client_request(self, command: CommandUnit) -> list[Action]:
        """Handle a client unit: a single command or a whole batch.

        A batch is ordered as one unit (one slot, one phase-2 round); every
        constituent command is tracked so its client gets its own reply.
        """
        if self.stopped:
            return []
        for constituent in unit_commands(command):
            self._my_commands[constituent.command_id] = constituent
        if self.is_leader:
            return self._propose(command)
        return [Send(self.leader, Forward(command))]

    def _propose(self, command: CommandUnit) -> list[Action]:
        """Leader: assign the next slot and start phase 2."""
        slot = self.next_slot
        self.next_slot += 1
        state = self.ledger.record_command(slot, command)
        self.log.append(AcceptRecord(slot, command))
        state.acks.add(self.replica_id)
        actions: list[Action] = [Broadcast(Phase2a(slot, command), include_self=False)]
        actions.extend(self._maybe_decide(slot))
        return actions

    # -- messages ----------------------------------------------------------------

    def on_message(self, src: ReplicaId, message: Any) -> list[Action]:
        if self.stopped:
            return []
        if isinstance(message, Forward):
            return self._on_forward(src, message)
        if isinstance(message, Phase2a):
            return self._on_phase2a(src, message)
        if isinstance(message, Phase2b):
            return self._on_phase2b(src, message)
        if isinstance(message, CommitSlot):
            return self._on_commit(src, message)
        _LOGGER.warning(
            "replica %s received unknown message %r from r%s", self.replica_id, message, src
        )
        return []

    def _on_forward(self, src: ReplicaId, msg: Forward) -> list[Action]:
        if self.is_leader:
            return self._propose(msg.command)
        # A stale forward (e.g. during a leader change): pass it along.
        return [Send(self.leader, msg)]

    def _on_phase2a(self, src: ReplicaId, msg: Phase2a) -> list[Action]:
        state = self.ledger.record_command(msg.slot, msg.command)
        self.log.append(AcceptRecord(msg.slot, msg.command))
        # This replica accepts the command; the sending leader already has.
        state.acks.add(self.replica_id)
        state.acks.add(src)
        if self.broadcast_phase2b:
            actions: list[Action] = [Broadcast(Phase2b(msg.slot), include_self=False)]
        else:
            actions = [Send(self.leader, Phase2b(msg.slot))]
        actions.extend(self._maybe_decide(msg.slot))
        return actions

    def _on_phase2b(self, src: ReplicaId, msg: Phase2b) -> list[Action]:
        self.ledger.add_ack(msg.slot, src)
        return self._maybe_decide(msg.slot)

    def _on_commit(self, src: ReplicaId, msg: CommitSlot) -> list[Action]:
        state = self.ledger.get(msg.slot)
        if not state.decided:
            state.decided = True
            self.log.append(DecideRecord(msg.slot))
        return self._execute_ready()

    # -- timers -------------------------------------------------------------------

    def on_timer(self, timer: Timer) -> list[Action]:
        return []

    # -- commit and execution -------------------------------------------------------

    def _may_learn_locally(self) -> bool:
        """Whether this replica may conclude commits from quorum counting."""
        return self.broadcast_phase2b or self.is_leader

    def _maybe_decide(self, slot: int) -> list[Action]:
        state = self.ledger.get(slot)
        if state.decided:
            return self._execute_ready()
        if not self._may_learn_locally() or len(state.acks) < self.quorum_size:
            return []
        state.decided = True
        self.log.append(DecideRecord(slot))
        actions: list[Action] = []
        if not self.broadcast_phase2b and self.is_leader:
            # Classic Paxos: the leader is the only replica that learns the
            # outcome from phase 2b and must notify everybody else.
            actions.append(Broadcast(CommitSlot(slot), include_self=False))
        actions.extend(self._execute_ready())
        return actions

    def _execute_ready(self) -> list[Action]:
        actions: list[Action] = []
        for state in self.ledger.pop_executable():
            if state.skipped or state.command is None:
                continue
            for command, output in self.execute_unit(state.command):
                if command.command_id in self._my_commands:
                    del self._my_commands[command.command_id]
                    actions.append(ClientReply(command.command_id, output))
        return actions


__all__ = ["MultiPaxosReplica", "Forward", "Phase2a", "Phase2b", "CommitSlot"]
