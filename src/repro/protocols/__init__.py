"""Replication protocols.

All protocols share the sans-IO :class:`~repro.protocols.base.Replica`
interface: the surrounding driver (simulator or asyncio runtime) feeds in
client requests, messages, and timer expirations, and executes the actions
(sends, broadcasts, client replies, timer registrations) each call returns.

Implemented protocols:

* :class:`~repro.core.protocol.ClockRsmReplica` — the paper's contribution
  (re-exported here for convenience).
* :class:`~repro.protocols.multipaxos.MultiPaxosReplica` — classic
  leader-based Multi-Paxos (phase 2 only, stable leader).
* :class:`~repro.protocols.paxos_bcast.PaxosBcastReplica` — Multi-Paxos with
  broadcast phase-2b messages (the paper's latency-optimized baseline).
* :class:`~repro.protocols.mencius.MenciusReplica` — rotating-coordinator
  Mencius with skip messages.
* :class:`~repro.protocols.mencius_bcast.MenciusBcastReplica` — Mencius with
  broadcast acknowledgements (the paper's latency-optimized baseline).
"""

from .base import (
    Action,
    Broadcast,
    ClientReply,
    ProtocolName,
    Replica,
    ReplicaObserver,
    Send,
    SetTimer,
    Timer,
)
from .mencius import MenciusReplica
from .mencius_bcast import MenciusBcastReplica
from .multipaxos import MultiPaxosReplica
from .paxos_bcast import PaxosBcastReplica
from .registry import PROTOCOLS, create_replica

__all__ = [
    "Action",
    "Send",
    "Broadcast",
    "ClientReply",
    "SetTimer",
    "Timer",
    "Replica",
    "ReplicaObserver",
    "ProtocolName",
    "MultiPaxosReplica",
    "PaxosBcastReplica",
    "MenciusReplica",
    "MenciusBcastReplica",
    "PROTOCOLS",
    "create_replica",
]
