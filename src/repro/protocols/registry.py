"""Protocol registry: build any implemented protocol by name.

The benchmark harness, the simulator cluster builder, and the asyncio server
all construct replicas through :func:`create_replica` so that experiment
configurations can name protocols with plain strings
(``"clock-rsm"``, ``"paxos"``, ``"paxos-bcast"``, ``"mencius"``,
``"mencius-bcast"``).

Each protocol additionally carries :class:`ProtocolCapabilities` metadata
(is it leader-based?  does its latency depend on clock quality?  is it a
broadcast variant?), which :mod:`repro.experiment` uses to validate
experiment specifications before anything is deployed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Type

from ..config import ClusterSpec
from ..errors import ConfigurationError
from ..types import ReplicaId
from .base import CLOCK_RSM, MENCIUS, MENCIUS_BCAST, PAXOS, PAXOS_BCAST, Replica
from .mencius import MenciusReplica
from .mencius_bcast import MenciusBcastReplica
from .multipaxos import MultiPaxosReplica
from .paxos_bcast import PaxosBcastReplica


@dataclass(frozen=True, slots=True)
class ProtocolCapabilities:
    """Static capability metadata of a replication protocol.

    Attributes:
        name: Canonical protocol name (registry key).
        leader_based: Whether ordering flows through a designated leader
            (Paxos variants).  Leaderless protocols ignore — and experiment
            specs must not set — a ``leader_site``.
        needs_clocks: Whether commit latency depends on physical clock
            quality (Clock-RSM); clock skew/drift scenarios only change the
            results of protocols with this capability.
        broadcast_variant: Whether replicas broadcast directly to all peers
            (the paper's "-bcast" message pattern) instead of relaying
            through a leader/owner, trading messages for latency.
        supports_reconfiguration: Whether the implementation handles
            SUSPEND/consensus reconfiguration (Algorithm 3), which fault
            schedules with ``rejoin`` recovery rely on.
        batching: Whether the replica accepts
            :class:`~repro.protocols.records.CommandBatch` units — one
            protocol round ordering many client commands.  Every shipped
            protocol inherits this from the sans-IO base class; specs with
            a ``[batching]`` table are validated against it.
    """

    name: str
    leader_based: bool
    needs_clocks: bool
    broadcast_variant: bool
    supports_reconfiguration: bool
    batching: bool = True


def _clock_rsm_class() -> Type[Replica]:
    # Imported lazily to keep repro.core and repro.protocols decoupled at
    # import time (repro.core depends on repro.protocols.base).
    from ..core.protocol import ClockRsmReplica

    return ClockRsmReplica


#: Mapping of protocol name to replica class (Clock-RSM resolved lazily).
PROTOCOLS: dict[str, Any] = {
    CLOCK_RSM: _clock_rsm_class,
    PAXOS: MultiPaxosReplica,
    PAXOS_BCAST: PaxosBcastReplica,
    MENCIUS: MenciusReplica,
    MENCIUS_BCAST: MenciusBcastReplica,
}

#: Capability metadata per protocol, keyed like :data:`PROTOCOLS`.
CAPABILITIES: dict[str, ProtocolCapabilities] = {
    CLOCK_RSM: ProtocolCapabilities(
        CLOCK_RSM,
        leader_based=False,
        needs_clocks=True,
        broadcast_variant=True,
        supports_reconfiguration=True,
    ),
    PAXOS: ProtocolCapabilities(
        PAXOS,
        leader_based=True,
        needs_clocks=False,
        broadcast_variant=False,
        supports_reconfiguration=False,
    ),
    PAXOS_BCAST: ProtocolCapabilities(
        PAXOS_BCAST,
        leader_based=True,
        needs_clocks=False,
        broadcast_variant=True,
        supports_reconfiguration=False,
    ),
    MENCIUS: ProtocolCapabilities(
        MENCIUS,
        leader_based=False,
        needs_clocks=False,
        broadcast_variant=False,
        supports_reconfiguration=False,
    ),
    MENCIUS_BCAST: ProtocolCapabilities(
        MENCIUS_BCAST,
        leader_based=False,
        needs_clocks=False,
        broadcast_variant=True,
        supports_reconfiguration=False,
    ),
}


def available_protocols() -> tuple[str, ...]:
    """All registered protocol names, sorted."""
    return tuple(sorted(PROTOCOLS))


def capability_rows() -> list[dict[str, str]]:
    """The capability table as rows of yes/"-" cells, sorted by protocol.

    Single source of truth for every rendering of the table: the
    ``repro protocols`` CLI subcommand prints exactly these rows, and the
    docs test checks the Markdown table in ``docs/PROTOCOLS.md`` against
    them, so the two cannot drift from the registry (or from each other).
    """
    yes = lambda flag: "yes" if flag else "-"
    return [
        {
            "protocol": caps.name,
            "leader_based": yes(caps.leader_based),
            "needs_clocks": yes(caps.needs_clocks),
            "broadcast": yes(caps.broadcast_variant),
            "reconfiguration": yes(caps.supports_reconfiguration),
            "batching": yes(caps.batching),
        }
        for _name, caps in sorted(CAPABILITIES.items())
    ]


def protocol_capabilities(name: str) -> ProtocolCapabilities:
    """Resolve a protocol name to its capability metadata."""
    caps = CAPABILITIES.get(name)
    if caps is None:
        raise ConfigurationError(
            f"unknown protocol {name!r}; available: {sorted(PROTOCOLS)}"
        )
    return caps


def protocol_class(name: str) -> Type[Replica]:
    """Resolve a protocol name to its replica class."""
    entry = PROTOCOLS.get(name)
    if entry is None:
        raise ConfigurationError(
            f"unknown protocol {name!r}; available: {sorted(PROTOCOLS)}"
        )
    if entry is _clock_rsm_class:
        return _clock_rsm_class()
    return entry


def create_replica(
    name: str, replica_id: ReplicaId, spec: ClusterSpec, **kwargs: Any
) -> Replica:
    """Instantiate a replica of protocol *name*.

    Keyword arguments are forwarded to the replica constructor (``clock``,
    ``log``, ``state_machine``, ``config``, ``observer``, ...).
    """
    cls = protocol_class(name)
    return cls(replica_id, spec, **kwargs)


__all__ = [
    "PROTOCOLS",
    "CAPABILITIES",
    "ProtocolCapabilities",
    "available_protocols",
    "capability_rows",
    "protocol_capabilities",
    "protocol_class",
    "create_replica",
]
