"""Protocol registry: build any implemented protocol by name.

The benchmark harness, the simulator cluster builder, and the asyncio server
all construct replicas through :func:`create_replica` so that experiment
configurations can name protocols with plain strings
(``"clock-rsm"``, ``"paxos"``, ``"paxos-bcast"``, ``"mencius"``,
``"mencius-bcast"``).
"""

from __future__ import annotations

from typing import Any, Type

from ..config import ClusterSpec
from ..errors import ConfigurationError
from ..types import ReplicaId
from .base import CLOCK_RSM, MENCIUS, MENCIUS_BCAST, PAXOS, PAXOS_BCAST, Replica
from .mencius import MenciusReplica
from .mencius_bcast import MenciusBcastReplica
from .multipaxos import MultiPaxosReplica
from .paxos_bcast import PaxosBcastReplica


def _clock_rsm_class() -> Type[Replica]:
    # Imported lazily to keep repro.core and repro.protocols decoupled at
    # import time (repro.core depends on repro.protocols.base).
    from ..core.protocol import ClockRsmReplica

    return ClockRsmReplica


#: Mapping of protocol name to replica class (Clock-RSM resolved lazily).
PROTOCOLS: dict[str, Any] = {
    CLOCK_RSM: _clock_rsm_class,
    PAXOS: MultiPaxosReplica,
    PAXOS_BCAST: PaxosBcastReplica,
    MENCIUS: MenciusReplica,
    MENCIUS_BCAST: MenciusBcastReplica,
}


def protocol_class(name: str) -> Type[Replica]:
    """Resolve a protocol name to its replica class."""
    entry = PROTOCOLS.get(name)
    if entry is None:
        raise ConfigurationError(
            f"unknown protocol {name!r}; available: {sorted(PROTOCOLS)}"
        )
    if entry is _clock_rsm_class:
        return _clock_rsm_class()
    return entry


def create_replica(
    name: str, replica_id: ReplicaId, spec: ClusterSpec, **kwargs: Any
) -> Replica:
    """Instantiate a replica of protocol *name*.

    Keyword arguments are forwarded to the replica constructor (``clock``,
    ``log``, ``state_machine``, ``config``, ``observer``, ...).
    """
    cls = protocol_class(name)
    return cls(replica_id, spec, **kwargs)


__all__ = ["PROTOCOLS", "protocol_class", "create_replica"]
