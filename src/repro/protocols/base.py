"""Sans-IO replication protocol framework.

A :class:`Replica` is a pure state machine over protocol events: the driver
feeds it client requests, peer messages, and timer expirations; each call
returns a list of :class:`Action` values the driver must perform (send a
message, broadcast one, reply to a client, arm a timer).  Keeping I/O out of
the protocols makes every step unit-testable, lets the same code run under
the deterministic discrete-event simulator and the asyncio runtime, and
mirrors the event-driven architecture the paper's C++ implementation uses.
"""

from __future__ import annotations

import itertools
import logging
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Protocol, Union

from ..clocks.base import Clock, MonotonicTimestampSource
from ..config import ClusterSpec, ProtocolConfig
from ..errors import ProtocolError
from ..statemachine import StateMachine
from ..storage.log import CommandLog
from ..types import Command, CommandId, Micros, ReplicaId, Timestamp, majority

_LOGGER = logging.getLogger(__name__)

#: Canonical protocol names used by the registry, the bench harness and the
#: experiment configuration files.
ProtocolName = str

CLOCK_RSM = "clock-rsm"
PAXOS = "paxos"
PAXOS_BCAST = "paxos-bcast"
MENCIUS = "mencius"
MENCIUS_BCAST = "mencius-bcast"


# ---------------------------------------------------------------------------
# Actions
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Send:
    """Send *message* to replica *dst*."""

    dst: ReplicaId
    message: Any


@dataclass(frozen=True, slots=True)
class Broadcast:
    """Send *message* to every replica in the active configuration.

    ``include_self`` controls whether the sender also receives the message
    (via zero-delay loopback); Clock-RSM broadcasts PREPARE/PREPAREOK to
    every replica including itself, so it defaults to ``True``.
    """

    message: Any
    include_self: bool = True


@dataclass(frozen=True, slots=True)
class ClientReply:
    """Deliver the result of a committed command back to its client."""

    command_id: CommandId
    output: Any


@dataclass(frozen=True, slots=True)
class Timer:
    """A timer handle; returned to the protocol when the timer fires."""

    timer_id: int
    kind: str
    payload: Any = None


@dataclass(frozen=True, slots=True)
class SetTimer:
    """Ask the driver to fire *timer* after *delay* microseconds."""

    timer: Timer
    delay: Micros


Action = Union[Send, Broadcast, ClientReply, SetTimer]


class ReplicaObserver(Protocol):
    """Optional hook invoked when a replica executes a committed command."""

    def on_execute(
        self, replica_id: ReplicaId, command: Command, output: Any
    ) -> None:  # pragma: no cover - protocol definition
        ...


# ---------------------------------------------------------------------------
# Replica base class
# ---------------------------------------------------------------------------


class Replica(ABC):
    """Base class of every replication protocol replica.

    Subclasses implement :meth:`on_client_request`, :meth:`on_message`, and
    :meth:`on_timer`; the base class provides timestamping, the execution
    path into the state machine, quorum arithmetic, and timer bookkeeping.
    """

    #: Protocol name, overridden by each implementation.
    protocol_name: ProtocolName = "abstract"

    def __init__(
        self,
        replica_id: ReplicaId,
        spec: ClusterSpec,
        *,
        clock: Clock,
        log: CommandLog,
        state_machine: StateMachine,
        config: Optional[ProtocolConfig] = None,
        observer: Optional[ReplicaObserver] = None,
        recover: bool = False,
    ) -> None:
        # ``recover`` asks the replica to rebuild soft state from its stable
        # log.  Clock-RSM intercepts it (paper Section V-B); protocols
        # without a replay procedure restart blank over the surviving log,
        # so the flag is accepted — and ignored — here.
        del recover
        if replica_id not in spec.replica_ids:
            raise ProtocolError(f"replica {replica_id} is not part of the spec {spec.replica_ids}")
        self.replica_id = replica_id
        self.spec = spec
        self.clock = clock
        self.log = log
        self.state_machine = state_machine
        self.config = config or ProtocolConfig()
        self.observer = observer
        #: Active configuration; starts as the full spec and is changed only
        #: by reconfiguration.
        self.active_config: tuple[ReplicaId, ...] = spec.replica_ids
        #: Strictly monotonic timestamp source for this replica.
        self.ts_source = MonotonicTimestampSource(clock, replica_id)
        #: Commands executed so far, in execution order (used by tests and by
        #: the consistency checker).
        self.execution_order: list[CommandId] = []
        self._timer_ids = itertools.count(1)
        self._stopped = False

    # -- identity / quorum helpers ------------------------------------------

    @property
    def quorum_size(self) -> int:
        """Majority of the *specification*, as the paper requires."""
        return majority(self.spec.size)

    @property
    def others(self) -> tuple[ReplicaId, ...]:
        """Active replicas other than this one."""
        return tuple(r for r in self.active_config if r != self.replica_id)

    @property
    def executed_count(self) -> int:
        return len(self.execution_order)

    def is_active(self, replica_id: ReplicaId) -> bool:
        return replica_id in self.active_config

    # -- driver-facing API ----------------------------------------------------

    def start(self) -> list[Action]:
        """Called once before any event is delivered; arms initial timers."""
        return []

    def stop(self) -> None:
        """Mark the replica as stopped; subsequent events are ignored."""
        self._stopped = True

    @property
    def stopped(self) -> bool:
        return self._stopped

    @abstractmethod
    def on_client_request(self, command: Command) -> list[Action]:
        """Handle a command submitted by a local client."""

    @abstractmethod
    def on_message(self, src: ReplicaId, message: Any) -> list[Action]:
        """Handle a protocol message from replica *src*."""

    @abstractmethod
    def on_timer(self, timer: Timer) -> list[Action]:
        """Handle the expiration of a timer previously set via :class:`SetTimer`."""

    # -- helpers for subclasses ----------------------------------------------

    def make_timer(self, kind: str, payload: Any = None) -> Timer:
        """Create a fresh timer handle with a unique id."""
        return Timer(next(self._timer_ids), kind, payload)

    def execute(self, command: Command) -> Any:
        """Apply a committed command to the state machine, in commit order."""
        output = self.state_machine.apply(command)
        self.execution_order.append(command.command_id)
        if self.observer is not None:
            self.observer.on_execute(self.replica_id, command, output)
        return output

    def execute_unit(self, unit: Any) -> list[tuple[Command, Any]]:
        """Execute a committed unit (command or batch), constituent by
        constituent, returning ``(command, output)`` pairs in batch order.

        The execution order (and therefore the stable log replay, the
        consistency checker's apply orders, and observers) sees individual
        commands: a batch is an agreement-layer envelope, never an execution
        unit of its own.
        """
        from .records import unit_commands  # local import keeps module load order flexible

        return [(command, self.execute(command)) for command in unit_commands(unit)]

    def broadcast_targets(self, include_self: bool) -> Iterable[ReplicaId]:
        if include_self:
            return self.active_config
        return self.others

    def describe(self) -> dict[str, Any]:
        """A small status snapshot used by logging and debugging tools."""
        return {
            "protocol": self.protocol_name,
            "replica_id": self.replica_id,
            "site": self.spec.replica(self.replica_id).site,
            "active_config": list(self.active_config),
            "executed": self.executed_count,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        site = self.spec.replica(self.replica_id).site
        return f"<{type(self).__name__} r{self.replica_id}@{site}>"


def expand_broadcast(replica: Replica, action: Broadcast) -> list[Send]:
    """Expand a :class:`Broadcast` into per-destination :class:`Send` actions.

    Drivers that have no native broadcast support (the TCP runtime) use this;
    the simulator keeps broadcasts intact so it can charge a single
    serialization cost and per-destination network delays.
    """
    return [
        Send(dst, action.message)
        for dst in replica.broadcast_targets(action.include_self)
    ]


__all__ = [
    "ProtocolName",
    "CLOCK_RSM",
    "PAXOS",
    "PAXOS_BCAST",
    "MENCIUS",
    "MENCIUS_BCAST",
    "Send",
    "Broadcast",
    "ClientReply",
    "Timer",
    "SetTimer",
    "Action",
    "Replica",
    "ReplicaObserver",
    "expand_broadcast",
]
