"""Slot bookkeeping shared by the Paxos and Mencius baselines.

Both baselines agree on a sequence of numbered slots; each slot holds one
*unit* — a single command or a :class:`~repro.protocols.records.CommandBatch`
— which executes when the slot is decided and every earlier slot has been
executed (or skipped).  :class:`SlotLedger` tracks per-slot state,
acknowledgement quorums, and the execution frontier; batching therefore
changes how many client commands ride in one slot, never the slot order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, Optional

from ..types import ReplicaId

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .records import CommandUnit


@dataclass
class SlotState:
    """Mutable state of one slot."""

    slot: int
    command: Optional["CommandUnit"] = None
    acks: set[ReplicaId] = field(default_factory=set)
    decided: bool = False
    skipped: bool = False
    executed: bool = False

    @property
    def has_command(self) -> bool:
        return self.command is not None or self.skipped

    @property
    def command_count(self) -> int:
        """How many client commands this slot carries (0 for skips)."""
        if self.command is None:
            return 0
        return len(getattr(self.command, "commands", (self.command,)))


class SlotLedger:
    """Tracks slot states and yields slots ready for in-order execution."""

    def __init__(self) -> None:
        self._slots: dict[int, SlotState] = {}
        #: The next slot index to execute (all smaller slots are executed).
        self.execute_frontier = 0

    # -- accessors ----------------------------------------------------------

    def get(self, slot: int) -> SlotState:
        state = self._slots.get(slot)
        if state is None:
            state = SlotState(slot)
            self._slots[slot] = state
        return state

    def peek(self, slot: int) -> Optional[SlotState]:
        return self._slots.get(slot)

    def known_slots(self) -> list[int]:
        return sorted(self._slots)

    def highest_known_slot(self) -> int:
        return max(self._slots) if self._slots else -1

    # -- state transitions ----------------------------------------------------

    def record_command(self, slot: int, command: "CommandUnit") -> SlotState:
        state = self.get(slot)
        if state.command is None:
            state.command = command
        return state

    def add_ack(self, slot: int, replica: ReplicaId) -> int:
        state = self.get(slot)
        state.acks.add(replica)
        return len(state.acks)

    def mark_decided(self, slot: int) -> SlotState:
        state = self.get(slot)
        state.decided = True
        return state

    def mark_skipped(self, slot: int) -> SlotState:
        state = self.get(slot)
        state.skipped = True
        state.decided = True
        return state

    def is_decided(self, slot: int) -> bool:
        state = self._slots.get(slot)
        return state is not None and state.decided

    # -- execution ----------------------------------------------------------------

    def pop_executable(
        self, implicit_skip: Optional[Callable[[int], bool]] = None
    ) -> Iterator[SlotState]:
        """Yield slots ready to execute, advancing the frontier.

        A slot is ready when it is decided (with its command present) or when
        *implicit_skip* reports that its coordinator can no longer propose in
        it (Mencius skips learned via ``skip_until`` announcements).
        """
        while True:
            slot = self.execute_frontier
            state = self._slots.get(slot)
            if state is not None and state.decided and state.has_command:
                self.execute_frontier += 1
                if not state.executed:
                    state.executed = True
                    yield state
                continue
            if (state is None or not state.decided) and implicit_skip is not None:
                if implicit_skip(slot):
                    skipped = self.mark_skipped(slot)
                    skipped.executed = True
                    self.execute_frontier += 1
                    continue
            break

    def describe(self) -> dict[str, object]:
        return {
            "known_slots": len(self._slots),
            "execute_frontier": self.execute_frontier,
            "undecided": sum(1 for s in self._slots.values() if not s.decided),
            # With batching, commands ≥ slots: the gap is the batch fill.
            "commands": sum(s.command_count for s in self._slots.values()),
        }


__all__ = ["SlotState", "SlotLedger"]
