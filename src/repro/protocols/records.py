"""Log records and the command-batch unit shared by every protocol.

Besides the slot records of the Paxos/Mencius baselines, this module defines
:class:`CommandBatch` — the unit of agreement when batching is enabled.  The
protocols order *units* (a single :class:`~repro.types.Command` or a batch of
them); one protocol round then amortizes its message cost over every command
in the batch, which is the throughput lever the paper's implementation notes
describe (and the `[batching]` experiment table exposes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Union

from ..errors import ProtocolError
from ..net.message import register_message
from ..types import Command


@register_message
@dataclass(frozen=True, slots=True)
class CommandBatch:
    """An ordered group of client commands agreed on as one unit.

    A batch occupies one slot / one timestamp: the protocol replicates and
    commits it with a single round, then executes the constituent commands
    in batch order.  Consistency is unaffected — the execution order, the
    stable log, and the checker all see the constituent commands
    individually — only the per-command message cost changes.
    """

    commands: tuple[Command, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "commands", tuple(self.commands))
        if not self.commands:
            raise ProtocolError("a command batch cannot be empty")

    def __len__(self) -> int:
        return len(self.commands)

    def __iter__(self) -> Iterator[Command]:
        return iter(self.commands)

    @property
    def size(self) -> int:
        """Total payload bytes across the batch (throughput model input)."""
        return sum(command.size for command in self.commands)


#: What protocols order: a single command or a batch of them.
CommandUnit = Union[Command, CommandBatch]


def unit_commands(unit: CommandUnit) -> tuple[Command, ...]:
    """The constituent commands of a unit, in execution order."""
    if isinstance(unit, CommandBatch):
        return unit.commands
    return (unit,)


def make_unit(commands: Sequence[Command]) -> CommandUnit:
    """Wrap *commands* into the smallest unit: bare command or batch.

    A singleton stays a plain :class:`~repro.types.Command`, so batching
    with ``max_batch = 1`` (or an idle accumulation window) is
    wire-compatible with an unbatched deployment.
    """
    if len(commands) == 1:
        return commands[0]
    return CommandBatch(tuple(commands))


@register_message
@dataclass(frozen=True, slots=True)
class AcceptRecord:
    """A unit accepted into *slot* (Paxos phase-2 accept / Mencius suggest)."""

    slot: int
    command: CommandUnit


@register_message
@dataclass(frozen=True, slots=True)
class DecideRecord:
    """Slot *slot* is known decided (commit mark for slot-based protocols)."""

    slot: int


@register_message
@dataclass(frozen=True, slots=True)
class SkipRecord:
    """Slot *slot* was skipped (Mencius no-op)."""

    slot: int


__all__ = [
    "CommandBatch",
    "CommandUnit",
    "unit_commands",
    "make_unit",
    "AcceptRecord",
    "DecideRecord",
    "SkipRecord",
]
