"""Log records shared by the slot-based baseline protocols (Paxos, Mencius)."""

from __future__ import annotations

from dataclasses import dataclass

from ..net.message import register_message
from ..types import Command


@register_message
@dataclass(frozen=True, slots=True)
class AcceptRecord:
    """A command accepted into *slot* (Paxos phase-2 accept / Mencius suggest)."""

    slot: int
    command: Command


@register_message
@dataclass(frozen=True, slots=True)
class DecideRecord:
    """Slot *slot* is known decided (commit mark for slot-based protocols)."""

    slot: int


@register_message
@dataclass(frozen=True, slots=True)
class SkipRecord:
    """Slot *slot* was skipped (Mencius no-op)."""

    slot: int


__all__ = ["AcceptRecord", "DecideRecord", "SkipRecord"]
