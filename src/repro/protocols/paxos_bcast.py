"""Paxos-bcast: Multi-Paxos with broadcast phase-2b messages.

The paper's latency-optimized Paxos variant: acceptors broadcast their
phase-2b acknowledgements to every replica instead of sending them only to
the leader, so each replica (in particular the command's originating replica)
learns the commit without waiting for a separate notification from the
leader.  This removes one message step for non-leader replicas at the cost of
O(N²) messages per command.
"""

from __future__ import annotations

from .base import PAXOS_BCAST
from .multipaxos import MultiPaxosReplica


class PaxosBcastReplica(MultiPaxosReplica):
    """Multi-Paxos with broadcast phase-2b acknowledgements."""

    protocol_name = PAXOS_BCAST
    broadcast_phase2b = True


__all__ = ["PaxosBcastReplica"]
