"""Mencius-bcast: Mencius with broadcast acknowledgements.

The paper's latency-optimized Mencius variant: acknowledgements (carrying
skip promises) are broadcast to every replica, so each replica counts the
replication quorum and learns skips locally instead of waiting for the slot
coordinator's commit notification.  Message complexity rises to O(N²), the
same trade-off Paxos-bcast makes.
"""

from __future__ import annotations

from .base import MENCIUS_BCAST
from .mencius import MenciusReplica


class MenciusBcastReplica(MenciusReplica):
    """Mencius with broadcast acknowledgements."""

    protocol_name = MENCIUS_BCAST
    broadcast_acks = True


__all__ = ["MenciusBcastReplica"]
