"""Mencius baseline: rotating-coordinator state machine replication.

Mencius partitions the slot sequence round-robin among the replicas: replica
``i`` coordinates slots ``i, i+N, i+2N, ...`` and assigns its clients'
commands to its own slots, so every replica proposes without forwarding to a
single leader.  A replica that receives a SUGGEST for a slot beyond its own
next unused slot *skips* its earlier slots (promising never to use them) and
announces the skip, piggybacked on its acknowledgement, so other replicas can
execute past the skipped slots.

This module implements classic Mencius, where acknowledgements go only to the
slot's coordinator and the coordinator broadcasts a commit notification.
:mod:`repro.protocols.mencius_bcast` derives the paper's latency-optimized
variant in which acknowledgements are broadcast and every replica learns
commits locally.

The *delayed commit* problem the paper describes arises naturally here: a
command in slot ``s`` cannot execute until every smaller slot is decided or
known-skipped, so a concurrent command (or a quiet coordinator) owning an
earlier slot delays it by up to a one-way wide-area delay.

Skip-detection relies on FIFO channels (assumed by the paper's model and
provided by both the simulator and the TCP transport): a coordinator sends
the SUGGEST for slot ``s`` before any message announcing a skip bound above
``s``, so "skip bound above ``s`` and no SUGGEST seen" implies ``s`` was
genuinely skipped.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Any

from ..net.message import register_message
from ..types import Command, CommandId, ReplicaId
from .base import (
    MENCIUS,
    Action,
    Broadcast,
    ClientReply,
    Replica,
    Send,
    Timer,
)
from .records import AcceptRecord, CommandUnit, DecideRecord, SkipRecord, unit_commands
from .slots import SlotLedger

_LOGGER = logging.getLogger(__name__)


# ---------------------------------------------------------------------------
# Messages
# ---------------------------------------------------------------------------


@register_message
@dataclass(frozen=True, slots=True)
class Suggest:
    """Coordinator's proposal of *command* (a unit) in its own *slot*.

    ``skip_until`` is the coordinator's next unused own slot: a promise that
    it will never propose in any of its own slots below that bound.
    """

    slot: int
    command: CommandUnit
    skip_until: int


@register_message
@dataclass(frozen=True, slots=True)
class MenciusAck:
    """Acknowledgement that the sender logged the command in *slot*.

    Carries the sender's own ``skip_until`` promise so the slot's coordinator
    (and, in the bcast variant, everyone) learns which of the sender's slots
    will never be used.
    """

    slot: int
    skip_until: int


@register_message
@dataclass(frozen=True, slots=True)
class MenciusCommit:
    """Coordinator's commit notification for *slot* (classic Mencius only)."""

    slot: int


@register_message
@dataclass(frozen=True, slots=True)
class SkipAnnounce:
    """Standalone skip announcement (classic Mencius only).

    In the bcast variant skips always travel on broadcast acknowledgements;
    in classic Mencius acknowledgements are unicast, so fresh skip promises
    are additionally broadcast in this small dedicated message to keep every
    replica's execution frontier advancing.
    """

    skip_until: int


class MenciusReplica(Replica):
    """A Mencius replica (classic variant; see :class:`MenciusBcastReplica`)."""

    protocol_name = MENCIUS
    #: The bcast variant broadcasts acknowledgements so every replica counts
    #: quorums locally; the classic variant unicasts them to the coordinator.
    broadcast_acks = False

    def __init__(self, replica_id: ReplicaId, spec: Any, **kwargs: Any) -> None:
        super().__init__(replica_id, spec, **kwargs)
        self.ledger = SlotLedger()
        #: My next unused own slot (initially my replica id).
        self.next_own_slot = self.replica_id
        #: For each replica, the highest skip bound it has announced.
        self.skip_until: dict[ReplicaId, int] = {r: r for r in self.spec.replica_ids}
        self._my_commands: dict[CommandId, Command] = {}

    # -- slot ownership --------------------------------------------------------

    def owner_of(self, slot: int) -> ReplicaId:
        return self.spec.replica_ids[slot % self.spec.size]

    # -- client requests ---------------------------------------------------------

    def on_client_request(self, command: CommandUnit) -> list[Action]:
        """Handle a client unit (single command or batch) in my next own slot."""
        if self.stopped:
            return []
        for constituent in unit_commands(command):
            self._my_commands[constituent.command_id] = constituent
        slot = self.next_own_slot
        self.next_own_slot += self.spec.size
        self.skip_until[self.replica_id] = self.next_own_slot
        state = self.ledger.record_command(slot, command)
        state.acks.add(self.replica_id)
        self.log.append(AcceptRecord(slot, command))
        actions: list[Action] = [
            Broadcast(Suggest(slot, command, self.next_own_slot), include_self=False)
        ]
        actions.extend(self._maybe_decide(slot))
        return actions

    # -- messages -----------------------------------------------------------------

    def on_message(self, src: ReplicaId, message: Any) -> list[Action]:
        if self.stopped:
            return []
        if isinstance(message, Suggest):
            return self._on_suggest(src, message)
        if isinstance(message, MenciusAck):
            return self._on_ack(src, message)
        if isinstance(message, MenciusCommit):
            return self._on_commit(src, message)
        if isinstance(message, SkipAnnounce):
            return self._on_skip_announce(src, message)
        _LOGGER.warning(
            "replica %s received unknown message %r from r%s", self.replica_id, message, src
        )
        return []

    def _on_suggest(self, src: ReplicaId, msg: Suggest) -> list[Action]:
        self._observe_skip(src, msg.skip_until)
        state = self.ledger.record_command(msg.slot, msg.command)
        state.acks.add(self.replica_id)
        state.acks.add(src)
        self.log.append(AcceptRecord(msg.slot, msg.command))
        actions: list[Action] = []
        # Skip my own slots below the suggested one: I promise not to use
        # them so the suggesting replica's command is not blocked on me.
        skipped_any = self._skip_own_slots_below(msg.slot)
        ack = MenciusAck(msg.slot, self.next_own_slot)
        if self.broadcast_acks:
            actions.append(Broadcast(ack, include_self=False))
        else:
            actions.append(Send(src, ack))
            if skipped_any:
                actions.append(Broadcast(SkipAnnounce(self.next_own_slot), include_self=False))
        actions.extend(self._maybe_decide(msg.slot))
        return actions

    def _on_ack(self, src: ReplicaId, msg: MenciusAck) -> list[Action]:
        self._observe_skip(src, msg.skip_until)
        self.ledger.add_ack(msg.slot, src)
        return self._maybe_decide(msg.slot)

    def _on_commit(self, src: ReplicaId, msg: MenciusCommit) -> list[Action]:
        state = self.ledger.get(msg.slot)
        if not state.decided:
            state.decided = True
            self.log.append(DecideRecord(msg.slot))
        return self._execute_ready()

    def _on_skip_announce(self, src: ReplicaId, msg: SkipAnnounce) -> list[Action]:
        self._observe_skip(src, msg.skip_until)
        return self._execute_ready()

    # -- timers ---------------------------------------------------------------------

    def on_timer(self, timer: Timer) -> list[Action]:
        return []

    # -- skip bookkeeping --------------------------------------------------------------

    def _observe_skip(self, replica: ReplicaId, skip_until: int) -> None:
        if skip_until > self.skip_until.get(replica, 0):
            self.skip_until[replica] = skip_until

    def _skip_own_slots_below(self, slot: int) -> bool:
        """Skip all of my unused own slots smaller than *slot*."""
        skipped_any = False
        while self.next_own_slot < slot:
            state = self.ledger.mark_skipped(self.next_own_slot)
            state.executed = False  # executed (as a no-op) via the frontier
            self.log.append(SkipRecord(self.next_own_slot))
            self.next_own_slot += self.spec.size
            skipped_any = True
        if skipped_any:
            self.skip_until[self.replica_id] = self.next_own_slot
        return skipped_any

    def _implicitly_skipped(self, slot: int) -> bool:
        """True when *slot*'s owner has promised never to use it.

        Valid only when no SUGGEST for the slot has been received: FIFO
        channels guarantee a coordinator's SUGGEST for a slot arrives before
        any of its messages announcing a skip bound above that slot.
        """
        owner = self.owner_of(slot)
        if owner == self.replica_id:
            return False
        state = self.ledger.peek(slot)
        if state is not None and (state.command is not None or state.skipped):
            return False
        return self.skip_until.get(owner, 0) > slot

    # -- commit and execution -------------------------------------------------------------

    def _may_learn_locally(self, slot: int) -> bool:
        return self.broadcast_acks or self.owner_of(slot) == self.replica_id

    def _maybe_decide(self, slot: int) -> list[Action]:
        state = self.ledger.get(slot)
        if state.decided:
            return self._execute_ready()
        if not self._may_learn_locally(slot) or len(state.acks) < self.quorum_size:
            return []
        state.decided = True
        self.log.append(DecideRecord(slot))
        actions: list[Action] = []
        if not self.broadcast_acks and self.owner_of(slot) == self.replica_id:
            actions.append(Broadcast(MenciusCommit(slot), include_self=False))
        actions.extend(self._execute_ready())
        return actions

    def _execute_ready(self) -> list[Action]:
        actions: list[Action] = []
        for state in self.ledger.pop_executable(self._implicitly_skipped):
            if state.skipped or state.command is None:
                continue
            for command, output in self.execute_unit(state.command):
                if command.command_id in self._my_commands:
                    del self._my_commands[command.command_id]
                    actions.append(ClientReply(command.command_id, output))
        return actions


__all__ = ["MenciusReplica", "Suggest", "MenciusAck", "MenciusCommit", "SkipAnnounce"]
