"""Clock-RSM protocol messages and log records.

Message names follow Algorithm 1/2/3 of the paper.  Every type is a frozen
dataclass registered with the global message registry so it can cross the TCP
transport and be stored in the file-backed command log.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..net.message import register_message
from ..protocols.records import CommandUnit
from ..types import Command, Micros, ReplicaId, Timestamp

# ---------------------------------------------------------------------------
# Normal-case replication messages (Algorithm 1 and 2)
# ---------------------------------------------------------------------------


@register_message
@dataclass(frozen=True, slots=True)
class Prepare:
    """⟨PREPARE cmd, ts⟩ — logging request broadcast by the originating replica.

    ``command`` is a unit: a single client command or a
    :class:`~repro.protocols.records.CommandBatch` sharing one timestamp.
    """

    command: CommandUnit
    ts: Timestamp
    epoch: int = 0


@register_message
@dataclass(frozen=True, slots=True)
class PrepareOk:
    """⟨PREPAREOK ts, clockTs⟩ — broadcast after the command is on stable storage.

    ``clock_micros`` is the acknowledging replica's clock reading, strictly
    greater than ``ts.micros``; it doubles as the acknowledger's promise never
    to send a smaller timestamp afterwards.
    """

    ts: Timestamp
    clock_micros: Micros
    epoch: int = 0


@register_message
@dataclass(frozen=True, slots=True)
class ClockTime:
    """⟨CLOCKTIME ts⟩ — periodic idle clock broadcast (Algorithm 2)."""

    clock_micros: Micros
    epoch: int = 0


# ---------------------------------------------------------------------------
# Log records
# ---------------------------------------------------------------------------


@register_message
@dataclass(frozen=True, slots=True)
class PrepareRecord:
    """Log record for a PREPARE entry; the originating replica is ``ts.replica``."""

    command: CommandUnit
    ts: Timestamp


@register_message
@dataclass(frozen=True, slots=True)
class CommitRecord:
    """Log record marking the commit of the command with timestamp ``ts``.

    Commit marks are appended in timestamp order, always after the matching
    :class:`PrepareRecord`, which is what recovery relies on.
    """

    ts: Timestamp


# ---------------------------------------------------------------------------
# Reconfiguration messages (Algorithm 3)
# ---------------------------------------------------------------------------


@register_message
@dataclass(frozen=True, slots=True)
class Suspend:
    """⟨SUSPEND e, cts⟩ — freeze request sent by the reconfiguration initiator."""

    epoch: int
    commit_ts: Timestamp


@register_message
@dataclass(frozen=True, slots=True)
class SuspendOk:
    """⟨SUSPENDOK e, cmds⟩ — logged commands newer than the initiator's cut."""

    epoch: int
    records: tuple[PrepareRecord, ...]


@register_message
@dataclass(frozen=True, slots=True)
class RetrieveCmds:
    """⟨RETRIEVECMDS from, to⟩ — state-transfer request for a timestamp range."""

    from_ts: Timestamp
    to_ts: Timestamp


@register_message
@dataclass(frozen=True, slots=True)
class RetrieveReply:
    """⟨RETRIEVEREPLY cmds⟩ — logged commands within the requested range."""

    records: tuple[PrepareRecord, ...]
    from_ts: Timestamp
    to_ts: Timestamp


__all__ = [
    "Prepare",
    "PrepareOk",
    "ClockTime",
    "PrepareRecord",
    "CommitRecord",
    "Suspend",
    "SuspendOk",
    "RetrieveCmds",
    "RetrieveReply",
]
