"""Soft protocol state of a Clock-RSM replica and the commit rule.

The state corresponds to the paper's ``PendingCmds``, ``LatestTV``, and
``RepCounter`` (Table I).  It is kept separate from the replica class so the
commit rule can be unit- and property-tested in isolation, and so the
latency-attribution tooling can ask *which* of the three commit conditions is
currently blocking a command.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Optional

from ..errors import ProtocolError
from ..protocols.records import CommandUnit
from ..types import Command, Micros, ReplicaId, Timestamp


class CommitStatus(Enum):
    """Why a pending command is (not yet) committable."""

    COMMITTABLE = "committable"
    AWAITING_MAJORITY = "awaiting-majority"
    AWAITING_STABLE_ORDER = "awaiting-stable-order"
    AWAITING_PREFIX = "awaiting-prefix"
    UNKNOWN_COMMAND = "unknown-command"


@dataclass(frozen=True, slots=True)
class PendingCommand:
    """A unit (command or batch) that has been prepared but not committed."""

    command: CommandUnit
    ts: Timestamp
    origin: ReplicaId
    received_at: Micros = 0


class ClockRsmState:
    """The mutable soft state of Algorithm 1.

    Attributes:
        quorum_size: Majority of the replica specification.
        latest_tv: The paper's ``LatestTV`` — for each active replica, the
            greatest clock reading (µs) carried by any message received from
            it.  Because every replica sends messages in timestamp order,
            ``latest_tv[k]`` is a promise that no future message from ``k``
            carries a smaller timestamp.
    """

    def __init__(self, active_config: Iterable[ReplicaId], quorum_size: int) -> None:
        active = tuple(active_config)
        if quorum_size <= 0 or quorum_size > len(active):
            if quorum_size <= 0:
                raise ProtocolError(f"invalid quorum size {quorum_size}")
        self.quorum_size = quorum_size
        self.latest_tv: dict[ReplicaId, Micros] = {r: 0 for r in active}
        self._pending: dict[Timestamp, PendingCommand] = {}
        self._pending_heap: list[Timestamp] = []
        self._acks: dict[Timestamp, set[ReplicaId]] = {}

    # -- configuration changes ------------------------------------------------

    def resize_config(self, active_config: Iterable[ReplicaId]) -> None:
        """Resize and update ``LatestTV`` after a reconfiguration (Alg. 3 l.23)."""
        active = tuple(active_config)
        old = self.latest_tv
        self.latest_tv = {r: old.get(r, 0) for r in active}

    # -- pending command bookkeeping -------------------------------------------

    def add_pending(self, entry: PendingCommand) -> None:
        if entry.ts in self._pending:
            # Duplicate PREPARE (possible after reconfiguration retransmits);
            # keep the first copy, they are identical by construction.
            return
        self._pending[entry.ts] = entry
        heapq.heappush(self._pending_heap, entry.ts)

    def has_pending(self, ts: Timestamp) -> bool:
        return ts in self._pending

    def pending_count(self) -> int:
        return len(self._pending)

    def pending_commands(self) -> list[PendingCommand]:
        """All pending commands in timestamp order (for reconfiguration)."""
        return [self._pending[ts] for ts in sorted(self._pending)]

    def min_pending(self) -> Optional[PendingCommand]:
        """The pending command with the smallest timestamp, if any."""
        while self._pending_heap:
            ts = self._pending_heap[0]
            entry = self._pending.get(ts)
            if entry is None:
                heapq.heappop(self._pending_heap)  # lazily discard removed entries
                continue
            return entry
        return None

    def remove_pending(self, ts: Timestamp) -> Optional[PendingCommand]:
        entry = self._pending.pop(ts, None)
        self._acks.pop(ts, None)
        return entry

    def drop_pending_above(self, cut: Timestamp) -> list[PendingCommand]:
        """Remove pending commands with timestamps above *cut* (reconfiguration)."""
        dropped = [e for ts, e in self._pending.items() if ts > cut]
        for entry in dropped:
            self.remove_pending(entry.ts)
        return dropped

    # -- replication acknowledgements ------------------------------------------

    def record_ack(self, ts: Timestamp, replica: ReplicaId) -> int:
        """Record that *replica* logged the command with timestamp *ts*.

        Returns the number of distinct replicas known to have logged it.
        Acks may arrive before the PREPARE itself (the acknowledging replica
        may be closer to the originator than we are), so this state is kept
        independently of ``PendingCmds``.
        """
        acks = self._acks.setdefault(ts, set())
        acks.add(replica)
        return len(acks)

    def ack_count(self, ts: Timestamp) -> int:
        return len(self._acks.get(ts, ()))

    def ackers(self, ts: Timestamp) -> frozenset[ReplicaId]:
        return frozenset(self._acks.get(ts, ()))

    # -- LatestTV ---------------------------------------------------------------

    def observe_clock(self, replica: ReplicaId, micros: Micros) -> None:
        """Update ``LatestTV[replica]`` with a clock reading carried by a message."""
        if replica not in self.latest_tv:
            return  # message from a replica outside the active configuration
        if micros > self.latest_tv[replica]:
            self.latest_tv[replica] = micros

    def min_latest(self) -> Micros:
        """``min(LatestTV)`` over the active configuration."""
        return min(self.latest_tv.values())

    def stable_up_to(self, ts: Timestamp) -> bool:
        """True when no active replica can still send a timestamp below *ts*."""
        return ts.micros <= self.min_latest()

    # -- the commit rule (Algorithm 1, COMMITTED) --------------------------------

    def commit_status(self, ts: Timestamp) -> CommitStatus:
        """Evaluate the three commit conditions for the command at *ts*."""
        if ts not in self._pending:
            return CommitStatus.UNKNOWN_COMMAND
        minimum = self.min_pending()
        if minimum is not None and minimum.ts < ts:
            # A smaller-timestamped command is still pending: prefix
            # replication (condition 3) has not been satisfied yet.
            return CommitStatus.AWAITING_PREFIX
        if self.ack_count(ts) < self.quorum_size:
            return CommitStatus.AWAITING_MAJORITY
        if not self.stable_up_to(ts):
            return CommitStatus.AWAITING_STABLE_ORDER
        return CommitStatus.COMMITTABLE

    def next_committable(self) -> Optional[PendingCommand]:
        """The smallest pending command if it satisfies all three conditions."""
        entry = self.min_pending()
        if entry is None:
            return None
        if self.ack_count(entry.ts) < self.quorum_size:
            return None
        if not self.stable_up_to(entry.ts):
            return None
        return entry

    def describe(self) -> dict[str, object]:
        """Debug snapshot of the soft state."""
        return {
            "pending": len(self._pending),
            "latest_tv": dict(self.latest_tv),
            "min_latest": self.min_latest() if self.latest_tv else None,
            "quorum_size": self.quorum_size,
        }


__all__ = ["ClockRsmState", "PendingCommand", "CommitStatus"]
