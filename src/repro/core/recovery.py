"""Recovery from the stable command log (paper Section V-B).

A Clock-RSM log contains two record types: :class:`PrepareRecord` entries,
which may appear in any order, and :class:`CommitRecord` marks, which appear
in timestamp order and always after the matching PREPARE.  Recovery scans the
log once, buffering PREPARE entries in a hash table keyed by timestamp and
executing them when the corresponding COMMIT mark is encountered — exactly
the procedure the paper describes.  PREPARE entries left over at the end
("orphans") correspond to commands whose fate is unknown; the recovering
replica either re-acquires them via reconfiguration / RETRIEVECMDS or commits
them normally once it rejoins.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import LogCorruptionError
from ..storage.log import CommandLog
from ..types import Timestamp, ZERO_TS
from .messages import CommitRecord, PrepareRecord


@dataclass(frozen=True)
class RecoveredState:
    """Result of replaying a Clock-RSM log.

    Attributes:
        executed: Committed commands in commit (= timestamp) order.
        orphans: PREPARE entries without a COMMIT mark, in timestamp order.
        last_committed_ts: Timestamp of the last COMMIT mark (ZERO_TS if none).
        highest_ts: The largest timestamp seen anywhere in the log; the
            recovering replica must never issue a smaller timestamp again.
    """

    executed: tuple[PrepareRecord, ...]
    orphans: tuple[PrepareRecord, ...]
    last_committed_ts: Timestamp
    highest_ts: Timestamp


def replay_log(log: CommandLog) -> RecoveredState:
    """Replay *log* and return the recovered execution state."""
    pending: dict[Timestamp, PrepareRecord] = {}
    executed: list[PrepareRecord] = []
    last_committed = ZERO_TS
    highest = ZERO_TS
    for record in log.records():
        if isinstance(record, PrepareRecord):
            pending.setdefault(record.ts, record)
            if record.ts > highest:
                highest = record.ts
        elif isinstance(record, CommitRecord):
            prepare = pending.pop(record.ts, None)
            if prepare is None:
                raise LogCorruptionError(
                    f"COMMIT mark for {record.ts} has no preceding PREPARE entry"
                )
            if record.ts < last_committed:
                raise LogCorruptionError(
                    f"COMMIT marks out of order: {record.ts} after {last_committed}"
                )
            executed.append(prepare)
            last_committed = record.ts
            if record.ts > highest:
                highest = record.ts
        else:
            raise LogCorruptionError(f"foreign record in Clock-RSM log: {record!r}")
    orphans = tuple(pending[ts] for ts in sorted(pending))
    return RecoveredState(
        executed=tuple(executed),
        orphans=orphans,
        last_committed_ts=last_committed,
        highest_ts=highest,
    )


__all__ = ["RecoveredState", "replay_log"]
