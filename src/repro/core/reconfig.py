"""Clock-RSM reconfiguration (Algorithm 3).

Reconfiguration removes suspected-failed replicas from the active
configuration and reintegrates recovered ones.  It proceeds in three steps:

1. The initiator broadcasts ⟨SUSPEND e, cts⟩ to the full specification,
   freezing normal-case processing, and collects ⟨SUSPENDOK⟩ replies from a
   majority, each carrying the responder's logged PREPARE entries newer than
   the initiator's last commit mark.
2. The initiator proposes (new configuration, cut, collected commands) as
   the ``e``-th consensus instance (single-decree Paxos from
   :mod:`repro.consensus`).
3. Every replica that learns the decision brings itself up to the cut (via
   RETRIEVECMDS state transfer if it lags), discards un-executed PREPARE
   entries above the cut, applies the decided commands in timestamp order,
   installs the new epoch and configuration, and resumes.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

from ..consensus.single_paxos import ConsensusDecision, InstanceManager, Outgoing, PaxosMessage
from ..net.message import register_message
from ..protocols.base import Action, Send, Timer
from ..types import ReplicaId, Timestamp, majority
from .messages import PrepareRecord, RetrieveCmds, RetrieveReply, Suspend, SuspendOk

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .protocol import ClockRsmReplica

_LOGGER = logging.getLogger(__name__)


@register_message
@dataclass(frozen=True, slots=True)
class ReconfigProposal:
    """The value proposed to (and decided by) the per-epoch consensus."""

    config: tuple[ReplicaId, ...]
    cut: Timestamp
    records: tuple[PrepareRecord, ...]


@register_message
@dataclass(frozen=True, slots=True)
class EpochHint:
    """Tells a lagging reconfiguration initiator the receiver's current epoch.

    Sent in response to a SUSPEND whose epoch is not newer than the
    receiver's (typically a replica rejoining after missing one or more
    reconfigurations); the initiator retries with an epoch above the hint.
    """

    epoch: int


@dataclass
class _SuspendCollection:
    """Initiator-side state while collecting SUSPENDOK replies."""

    epoch: int
    new_config: tuple[ReplicaId, ...]
    cut: Timestamp
    replies: dict[ReplicaId, tuple[PrepareRecord, ...]]
    proposed: bool = False


@dataclass
class _PendingDecision:
    """A learned decision waiting for state transfer to complete."""

    epoch: int
    proposal: ReconfigProposal
    low: Timestamp
    high: Timestamp
    replies: dict[ReplicaId, tuple[PrepareRecord, ...]]


class ReconfigurationManager:
    """Implements Algorithm 3 on behalf of a :class:`ClockRsmReplica`."""

    def __init__(self, replica: "ClockRsmReplica") -> None:
        self._replica = replica
        self._instances = InstanceManager(replica.replica_id, replica.spec.size)
        self._collections: dict[int, _SuspendCollection] = {}
        self._pending_decision: Optional[_PendingDecision] = None
        self._desired_config: Optional[tuple[ReplicaId, ...]] = None
        #: Highest epoch this replica has heard of (possibly above its own,
        #: when it missed reconfigurations while crashed).
        self._epoch_floor = 0

    # ------------------------------------------------------------------
    # RECONFIGURE (initiator side)
    # ------------------------------------------------------------------

    def trigger(self, new_config: tuple[ReplicaId, ...]) -> list[Action]:
        """Start a reconfiguration towards *new_config* (Alg. 3, lines 1-6)."""
        replica = self._replica
        unknown = [r for r in new_config if r not in replica.spec.replica_ids]
        if unknown:
            raise ValueError(f"replicas {unknown} are not part of the specification")
        if len(new_config) < majority(replica.spec.size):
            raise ValueError(
                "the new configuration must contain a majority of the specification"
            )
        epoch = max(replica.epoch, self._epoch_floor) + 1
        cut = replica.last_committed_ts
        self._desired_config = tuple(sorted(new_config))
        self._collections[epoch] = _SuspendCollection(
            epoch=epoch, new_config=self._desired_config, cut=cut, replies={}
        )
        _LOGGER.info(
            "replica %s initiates reconfiguration to epoch %s with config %s",
            replica.replica_id,
            epoch,
            self._desired_config,
        )
        suspend = Suspend(epoch, cut)
        return [Send(dst, suspend) for dst in replica.spec.replica_ids]

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------

    def handle(self, src: ReplicaId, message: Any) -> Optional[list[Action]]:
        """Handle a reconfiguration-related message; None if not ours."""
        if isinstance(message, Suspend):
            return self._on_suspend(src, message)
        if isinstance(message, SuspendOk):
            return self._on_suspend_ok(src, message)
        if isinstance(message, RetrieveCmds):
            return self._on_retrieve(src, message)
        if isinstance(message, RetrieveReply):
            return self._on_retrieve_reply(src, message)
        if isinstance(message, EpochHint):
            return self._on_epoch_hint(src, message)
        if isinstance(message, PaxosMessage):
            return self._on_consensus(src, message)
        return None

    def on_timer(self, timer: Timer) -> Optional[list[Action]]:
        """Reconfiguration owns no timers yet; present for interface symmetry."""
        return None

    # ------------------------------------------------------------------
    # SUSPEND / SUSPENDOK
    # ------------------------------------------------------------------

    def _on_suspend(self, src: ReplicaId, msg: Suspend) -> list[Action]:
        replica = self._replica
        if msg.epoch <= replica.epoch:
            # The initiator is behind (e.g. it is rejoining after missing a
            # reconfiguration); tell it which epoch the system has reached.
            return [Send(src, EpochHint(replica.epoch))]
        replica.freeze()
        records = replica.logged_prepares_above(msg.commit_ts)
        return [Send(src, SuspendOk(msg.epoch, records))]

    def _on_epoch_hint(self, src: ReplicaId, msg: EpochHint) -> list[Action]:
        if msg.epoch <= max(self._replica.epoch, self._epoch_floor):
            return []
        self._epoch_floor = msg.epoch
        if self._desired_config is None:
            return []
        # Retry the desired reconfiguration with an epoch above the hint.
        return self.trigger(self._desired_config)

    def _on_suspend_ok(self, src: ReplicaId, msg: SuspendOk) -> list[Action]:
        collection = self._collections.get(msg.epoch)
        if collection is None or collection.proposed:
            return []
        collection.replies[src] = msg.records
        if len(collection.replies) < majority(self._replica.spec.size):
            return []
        collection.proposed = True
        merged: dict[Timestamp, PrepareRecord] = {}
        for records in collection.replies.values():
            for record in records:
                merged.setdefault(record.ts, record)
        proposal = ReconfigProposal(
            config=collection.new_config,
            cut=collection.cut,
            records=tuple(merged[ts] for ts in sorted(merged)),
        )
        outgoing = self._instances.propose(collection.epoch, proposal)
        return self._to_actions(outgoing)

    # ------------------------------------------------------------------
    # Consensus plumbing
    # ------------------------------------------------------------------

    def _on_consensus(self, src: ReplicaId, message: Any) -> list[Action]:
        outgoing, decision = self._instances.on_message(src, message)
        actions = self._to_actions(outgoing)
        if decision is not None:
            actions.extend(self._on_decide(decision))
        return actions

    def _to_actions(self, outgoing: list[Outgoing]) -> list[Action]:
        """Expand consensus messages to the full specification (incl. self)."""
        actions: list[Action] = []
        for out in outgoing:
            if out.dst is None:
                actions.extend(
                    Send(dst, out.message) for dst in self._replica.spec.replica_ids
                )
            else:
                actions.append(Send(out.dst, out.message))
        return actions

    # ------------------------------------------------------------------
    # DECIDE and state transfer
    # ------------------------------------------------------------------

    def _on_decide(self, decision: ConsensusDecision) -> list[Action]:
        replica = self._replica
        epoch = decision.instance
        proposal = decision.value
        if epoch <= replica.epoch or not isinstance(proposal, ReconfigProposal):
            return []
        local_cut = replica.last_committed_ts
        if proposal.cut > local_cut:
            # We lag behind the decided cut: fetch the missing prefix from a
            # majority before applying the decision (Alg. 3, lines 13-14).
            self._pending_decision = _PendingDecision(
                epoch=epoch,
                proposal=proposal,
                low=local_cut,
                high=proposal.cut,
                replies={},
            )
            request = RetrieveCmds(local_cut, proposal.cut)
            return [Send(dst, request) for dst in replica.spec.replica_ids]
        return self._complete(epoch, proposal, extra=())

    def _on_retrieve(self, src: ReplicaId, msg: RetrieveCmds) -> list[Action]:
        records = self._replica.logged_prepares_between(msg.from_ts, msg.to_ts)
        return [Send(src, RetrieveReply(records, msg.from_ts, msg.to_ts))]

    def _on_retrieve_reply(self, src: ReplicaId, msg: RetrieveReply) -> list[Action]:
        pending = self._pending_decision
        if pending is None or (msg.from_ts, msg.to_ts) != (pending.low, pending.high):
            return []
        pending.replies[src] = msg.records
        if len(pending.replies) < majority(self._replica.spec.size):
            return []
        merged: dict[Timestamp, PrepareRecord] = {}
        for records in pending.replies.values():
            for record in records:
                merged.setdefault(record.ts, record)
        extra = tuple(merged[ts] for ts in sorted(merged))
        self._pending_decision = None
        return self._complete(pending.epoch, pending.proposal, extra=extra)

    def _complete(
        self, epoch: int, proposal: ReconfigProposal, extra: tuple[PrepareRecord, ...]
    ) -> list[Action]:
        """Apply a decided reconfiguration (Alg. 3, lines 11-24)."""
        replica = self._replica
        replica.drop_unexecuted_prepares_above(proposal.cut)
        replica.apply_decided_commands(extra + proposal.records)
        replica.install_configuration(epoch, proposal.config)
        self._collections.pop(epoch, None)
        _LOGGER.info(
            "replica %s installed epoch %s with configuration %s",
            replica.replica_id,
            epoch,
            proposal.config,
        )
        actions = replica.resume()
        # If this replica wanted a different configuration (e.g. it is trying
        # to rejoin but a concurrent reconfiguration decided without it),
        # immediately start another round for the desired configuration.
        if (
            self._desired_config is not None
            and replica.replica_id in self._desired_config
            and tuple(sorted(replica.active_config)) != self._desired_config
        ):
            actions.extend(self.trigger(self._desired_config))
        else:
            self._desired_config = None
        return actions


__all__ = ["ReconfigurationManager", "ReconfigProposal"]
