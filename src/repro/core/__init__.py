"""Clock-RSM: the paper's replication protocol.

* :mod:`repro.core.messages` — PREPARE / PREPAREOK / CLOCKTIME messages, log
  records, and reconfiguration messages.
* :mod:`repro.core.state` — the soft state of Algorithm 1 (``PendingCmds``,
  ``LatestTV``, ``RepCounter``) and the commit rule.
* :mod:`repro.core.protocol` — :class:`ClockRsmReplica`, implementing
  Algorithm 1 plus the Algorithm 2 CLOCKTIME extension.
* :mod:`repro.core.reconfig` — the Algorithm 3 reconfiguration protocol.
* :mod:`repro.core.recovery` — log replay and reintegration.
"""

from .messages import (
    ClockTime,
    CommitRecord,
    Prepare,
    PrepareOk,
    PrepareRecord,
    RetrieveCmds,
    RetrieveReply,
    Suspend,
    SuspendOk,
)
from .protocol import ClockRsmReplica
from .recovery import RecoveredState, replay_log
from .state import ClockRsmState, CommitStatus, PendingCommand

__all__ = [
    "Prepare",
    "PrepareOk",
    "ClockTime",
    "PrepareRecord",
    "CommitRecord",
    "Suspend",
    "SuspendOk",
    "RetrieveCmds",
    "RetrieveReply",
    "ClockRsmReplica",
    "ClockRsmState",
    "PendingCommand",
    "CommitStatus",
    "replay_log",
    "RecoveredState",
]
