"""The Clock-RSM replication protocol (Algorithm 1 + Algorithm 2).

A :class:`ClockRsmReplica` is a sans-IO replica: the driver feeds it client
requests, messages and timer expirations, and performs the actions each call
returns.  The implementation follows the paper's pseudocode closely:

* **Client request** (Alg. 1 lines 1-3): assign the command the replica's
  latest clock time (strictly monotonic per replica) and broadcast
  ⟨PREPARE cmd, ts⟩ to every active replica, including itself.
* **PREPARE** (lines 4-10): record the command as pending, update
  ``LatestTV``, append the entry to the stable log, wait (if necessary) until
  the local clock passes the command's timestamp, then broadcast
  ⟨PREPAREOK ts, clockTs⟩.
* **PREPAREOK** (lines 11-13): update ``LatestTV`` and the replication
  counter.
* **Commit** (lines 14-23): the smallest pending command commits once a
  majority has logged it and no replica can still send a smaller timestamp;
  the replica appends a COMMIT mark, executes the command, and replies to the
  client if the command originated locally.
* **CLOCKTIME** (Algorithm 2): an idle replica periodically broadcasts its
  clock so other replicas' stable-order condition keeps advancing.
"""

from __future__ import annotations

import logging
from collections import deque
from typing import Any, Optional

from ..config import ClusterSpec, ProtocolConfig
from ..protocols.base import (
    CLOCK_RSM,
    Action,
    Broadcast,
    ClientReply,
    Replica,
    SetTimer,
    Timer,
)
from ..protocols.records import CommandUnit
from ..types import Command, Micros, ReplicaId, Timestamp, ZERO_TS, is_noop
from .messages import (
    ClockTime,
    CommitRecord,
    Prepare,
    PrepareOk,
    PrepareRecord,
    RetrieveCmds,
    RetrieveReply,
    Suspend,
    SuspendOk,
)
from .state import ClockRsmState, PendingCommand

_LOGGER = logging.getLogger(__name__)

#: Timer kinds used by the protocol.
_TIMER_CLOCK_WAIT = "clock-wait"
_TIMER_CLOCKTIME = "clocktime"

_RECONFIG_MESSAGES = (Suspend, SuspendOk, RetrieveCmds, RetrieveReply)


class ClockRsmReplica(Replica):
    """One Clock-RSM replica (Algorithm 1 with the Algorithm 2 extension)."""

    protocol_name = CLOCK_RSM

    def __init__(
        self,
        replica_id: ReplicaId,
        spec: ClusterSpec,
        **kwargs: Any,
    ) -> None:
        recover = kwargs.pop("recover", False)
        super().__init__(replica_id, spec, **kwargs)
        #: Current configuration epoch (bumped by every reconfiguration).
        self.epoch = 0
        #: Whether normal-case processing is frozen by a SUSPEND (Alg. 3).
        self.suspended = False
        self.state = ClockRsmState(self.active_config, self.quorum_size)
        #: Timestamp of the last COMMIT mark appended to the log.
        self.last_committed_ts: Timestamp = ZERO_TS
        #: Client units received while suspended, replayed on resume.
        self._parked_requests: deque[CommandUnit] = deque()
        self.reconfig = None
        if self.config.enable_reconfiguration:
            from .reconfig import ReconfigurationManager

            self.reconfig = ReconfigurationManager(self)
        if recover and len(self.log) > 0:
            self._recover_from_log()

    # ------------------------------------------------------------------
    # Startup and recovery
    # ------------------------------------------------------------------

    def start(self) -> list[Action]:
        actions: list[Action] = []
        if self.config.enable_clocktime_broadcast:
            actions.append(
                SetTimer(self.make_timer(_TIMER_CLOCKTIME), self.config.clocktime_interval)
            )
        return actions

    def _recover_from_log(self) -> None:
        """Replay the stable log into the state machine (Section V-B)."""
        from .recovery import replay_log

        recovered = replay_log(self.log)
        for record in recovered.executed:
            self.execute_unit(record.command)
        self.last_committed_ts = recovered.last_committed_ts
        self.ts_source.observe(recovered.highest_ts.micros)
        # PREPARE entries without a COMMIT mark become pending again; they
        # commit normally once the replica rejoins and hears from a majority.
        for record in recovered.orphans:
            self.state.add_pending(
                PendingCommand(record.command, record.ts, record.ts.replica)
            )
        _LOGGER.info(
            "replica %s recovered %d committed and %d orphan commands from its log",
            self.replica_id,
            len(recovered.executed),
            len(recovered.orphans),
        )

    # ------------------------------------------------------------------
    # Client requests (Algorithm 1, lines 1-3)
    # ------------------------------------------------------------------

    def on_client_request(self, command: CommandUnit) -> list[Action]:
        """Handle a client unit: one timestamp — and one PREPARE round — per
        unit, whether it is a single command or a whole batch."""
        if self.stopped:
            return []
        if self.suspended:
            self._parked_requests.append(command)
            return []
        ts = self.ts_source.next()
        prepare = Prepare(command, ts, self.epoch)
        return [Broadcast(prepare, include_self=True)]

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------

    def on_message(self, src: ReplicaId, message: Any) -> list[Action]:
        if self.stopped:
            return []
        if self.reconfig is not None:
            handled = self.reconfig.handle(src, message)
            if handled is not None:
                return handled
        if isinstance(message, _RECONFIG_MESSAGES):
            return []  # reconfiguration disabled: ignore
        epoch = getattr(message, "epoch", self.epoch)
        if epoch != self.epoch:
            # Stale messages are dropped; messages from a newer epoch mean we
            # missed a reconfiguration — the reconfiguration/state-transfer
            # path is responsible for catching us up.
            _LOGGER.debug(
                "replica %s drops %s from r%s (epoch %s != %s)",
                self.replica_id,
                type(message).__name__,
                src,
                epoch,
                self.epoch,
            )
            return []
        if isinstance(message, Prepare):
            return self._on_prepare(src, message)
        if isinstance(message, PrepareOk):
            return self._on_prepare_ok(src, message)
        if isinstance(message, ClockTime):
            return self._on_clock_time(src, message)
        _LOGGER.warning(
            "replica %s received unknown message %r from r%s", self.replica_id, message, src
        )
        return []

    def _on_prepare(self, src: ReplicaId, msg: Prepare) -> list[Action]:
        """Algorithm 1, lines 4-10."""
        if self.suspended:
            # The paper freezes PREPARE processing during reconfiguration;
            # the command either survives via a SUSPENDOK or is re-issued by
            # its client after the new epoch starts.
            return []
        entry = PendingCommand(
            command=msg.command,
            ts=msg.ts,
            origin=msg.ts.replica,
            received_at=self.clock.now(),
        )
        self.state.add_pending(entry)
        if src == msg.ts.replica:
            # LatestTV[k] <- ts: the sender promises monotonic timestamps.
            self.state.observe_clock(src, msg.ts.micros)
        self.log.append(PrepareRecord(msg.command, msg.ts))
        actions: list[Action] = []
        now = self.clock.now()
        if now > msg.ts.micros or not self.config.wait_for_clock:
            actions.extend(self._send_prepare_ok(msg.ts))
        else:
            # Line 8: wait until ts < Clock before acknowledging, i.e. the
            # promise never to send a smaller timestamp afterwards.
            delay = msg.ts.micros - now + 1
            actions.append(SetTimer(self.make_timer(_TIMER_CLOCK_WAIT, msg.ts), delay))
        actions.extend(self._try_commit())
        return actions

    def _send_prepare_ok(self, ts: Timestamp) -> list[Action]:
        """Lines 9-10: acknowledge with a clock reading strictly above *ts*."""
        self.ts_source.observe(ts.micros)
        clock_ts = self.ts_source.next().micros
        return [Broadcast(PrepareOk(ts, clock_ts, self.epoch), include_self=True)]

    def _on_prepare_ok(self, src: ReplicaId, msg: PrepareOk) -> list[Action]:
        """Algorithm 1, lines 11-13."""
        self.state.observe_clock(src, msg.clock_micros)
        self.state.record_ack(msg.ts, src)
        return self._try_commit()

    def _on_clock_time(self, src: ReplicaId, msg: ClockTime) -> list[Action]:
        """Algorithm 2, lines 4-5."""
        self.state.observe_clock(src, msg.clock_micros)
        return self._try_commit()

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------

    def on_timer(self, timer: Timer) -> list[Action]:
        if self.stopped:
            return []
        if timer.kind == _TIMER_CLOCK_WAIT:
            ts: Timestamp = timer.payload
            actions: list[Action] = []
            if self.state.has_pending(ts) and not self.suspended:
                actions.extend(self._send_prepare_ok(ts))
            actions.extend(self._try_commit())
            return actions
        if timer.kind == _TIMER_CLOCKTIME:
            return self._on_clocktime_timer()
        if self.reconfig is not None:
            handled = self.reconfig.on_timer(timer)
            if handled is not None:
                return handled
        return []

    def _on_clocktime_timer(self) -> list[Action]:
        """Algorithm 2, lines 1-3, driven by a periodic timer."""
        actions: list[Action] = []
        interval = self.config.clocktime_interval
        if (
            self.config.enable_clocktime_broadcast
            and not self.suspended
            and self.clock.now() >= self.state.latest_tv.get(self.replica_id, 0) + interval
        ):
            reading = self.ts_source.next().micros
            actions.append(Broadcast(ClockTime(reading, self.epoch), include_self=True))
        actions.append(SetTimer(self.make_timer(_TIMER_CLOCKTIME), interval))
        return actions

    # ------------------------------------------------------------------
    # Commit (Algorithm 1, lines 14-23)
    # ------------------------------------------------------------------

    def _try_commit(self) -> list[Action]:
        """Commit and execute every pending command that satisfies the rule."""
        actions: list[Action] = []
        while True:
            entry = self.state.next_committable()
            if entry is None:
                break
            self.state.remove_pending(entry.ts)
            self.log.append(CommitRecord(entry.ts))
            for command, output in self.execute_unit(entry.command):
                if entry.origin == self.replica_id and not is_noop(command):
                    actions.append(ClientReply(command.command_id, output))
            self.last_committed_ts = entry.ts
        return actions

    # ------------------------------------------------------------------
    # Reconfiguration hooks (used by ReconfigurationManager)
    # ------------------------------------------------------------------

    def freeze(self) -> None:
        """Stop processing REQUEST and PREPARE messages (Alg. 3, line 8)."""
        self.suspended = True

    def resume(self) -> list[Action]:
        """Resume normal processing after a reconfiguration (Alg. 3, line 24)."""
        self.suspended = False
        actions: list[Action] = []
        while self._parked_requests:
            actions.extend(self.on_client_request(self._parked_requests.popleft()))
        return actions

    def install_configuration(self, epoch: int, active: tuple[ReplicaId, ...]) -> None:
        """Install a new epoch and active configuration (Alg. 3, lines 21-23)."""
        self.epoch = epoch
        self.active_config = tuple(sorted(active))
        self.state.resize_config(self.active_config)

    def logged_prepares_above(self, cut: Timestamp) -> tuple[PrepareRecord, ...]:
        """All PREPARE log entries with timestamps greater than *cut*."""
        return tuple(
            record
            for record in self.log.records()
            if isinstance(record, PrepareRecord) and record.ts > cut
        )

    def logged_prepares_between(
        self, low: Timestamp, high: Timestamp
    ) -> tuple[PrepareRecord, ...]:
        """PREPARE entries with ``low < ts <= high`` (state transfer)."""
        return tuple(
            record
            for record in self.log.records()
            if isinstance(record, PrepareRecord) and low < record.ts <= high
        )

    def apply_decided_commands(self, records: tuple[PrepareRecord, ...]) -> None:
        """Apply reconfiguration-decided commands in timestamp order.

        Commands already executed locally (``ts <= last_committed_ts``) are
        skipped; the rest are logged (PREPARE if missing, then COMMIT) and
        executed, exactly as Algorithm 3 lines 16-20 prescribe.
        """
        logged_ts = {
            record.ts for record in self.log.records() if isinstance(record, PrepareRecord)
        }
        for record in sorted(records, key=lambda r: r.ts):
            if record.ts <= self.last_committed_ts:
                continue
            if record.ts not in logged_ts:
                self.log.append(PrepareRecord(record.command, record.ts))
            self.log.append(CommitRecord(record.ts))
            self.execute_unit(record.command)
            self.last_committed_ts = record.ts
            self.state.remove_pending(record.ts)

    def drop_unexecuted_prepares_above(self, cut: Timestamp) -> None:
        """Algorithm 3 line 15: discard un-executed PREPARE entries above *cut*."""
        executed_cut = self.last_committed_ts
        self.log.remove_if(
            lambda record: isinstance(record, PrepareRecord)
            and record.ts > cut
            and record.ts > executed_cut
        )
        self.state.drop_pending_above(cut)


__all__ = ["ClockRsmReplica"]
