"""The simulation environment: virtual time plus the event loop."""

from __future__ import annotations

import random
from typing import Callable, Optional

from ..clocks.base import TimeSource
from ..errors import SimulationError
from ..types import Micros
from .scheduler import EventScheduler, ScheduledEvent


class SimulationEnvironment(TimeSource):
    """Virtual time, the event queue, and the simulation's random source.

    The environment is the single :class:`~repro.clocks.base.TimeSource` for
    every simulated clock, so clock skew is modelled purely by the clock
    objects and "true time" advances only when events execute.
    """

    def __init__(self, seed: int = 0) -> None:
        self._now: Micros = 0
        self.scheduler = EventScheduler()
        self.random = random.Random(seed)
        self.seed = seed

    # -- TimeSource ------------------------------------------------------------

    def true_now(self) -> Micros:
        return self._now

    @property
    def now(self) -> Micros:
        """Current simulation time in microseconds."""
        return self._now

    # -- scheduling ------------------------------------------------------------

    def schedule(self, delay: Micros, callback: Callable[[], None]) -> ScheduledEvent:
        """Run *callback* after *delay* microseconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.scheduler.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: Micros, callback: Callable[[], None]) -> ScheduledEvent:
        """Run *callback* at absolute virtual time *time* (>= now)."""
        if time < self._now:
            raise SimulationError(f"cannot schedule in the past ({time} < {self._now})")
        return self.scheduler.schedule_at(time, callback)

    # -- running ---------------------------------------------------------------

    def step(self) -> bool:
        """Execute the next event; returns False when the queue is empty."""
        event = self.scheduler.pop()
        if event is None:
            return False
        if event.time < self._now:  # pragma: no cover - defensive
            raise SimulationError("event queue produced an event in the past")
        self._now = event.time
        self.scheduler.run_event(event)
        return True

    def run_until(self, time: Micros, max_events: Optional[int] = None) -> int:
        """Run events with timestamps <= *time*; returns how many executed.

        Virtual time is advanced to *time* at the end even if the queue runs
        dry earlier, so periodic activities can be resumed consistently.
        """
        executed = 0
        while True:
            if max_events is not None and executed >= max_events:
                break
            next_time = self.scheduler.peek_time()
            if next_time is None or next_time > time:
                break
            self.step()
            executed += 1
        if time > self._now:
            self._now = time
        return executed

    def run_for(self, duration: Micros, max_events: Optional[int] = None) -> int:
        """Run the simulation for *duration* microseconds of virtual time."""
        return self.run_until(self._now + duration, max_events=max_events)

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Run until no events remain (bounded by *max_events*)."""
        executed = 0
        while executed < max_events and self.step():
            executed += 1
        if executed >= max_events:
            raise SimulationError(
                f"simulation did not quiesce within {max_events} events"
            )
        return executed


__all__ = ["SimulationEnvironment"]
