"""Wiring a full simulated cluster: clocks, logs, replicas, network, nodes."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from ..clocks.base import Clock
from ..clocks.physical import DriftingClock, SkewedClock
from ..config import BatchingOptions, ClusterSpec, ProtocolConfig
from ..errors import ConfigurationError
from ..net.latency import LatencyMatrix
from ..protocols.base import Replica
from ..protocols.records import make_unit
from ..protocols.registry import create_replica
from ..statemachine import AppendLogStateMachine, StateMachine
from ..storage.log import CommandLog
from ..storage.memory_log import InMemoryLog
from ..types import Command, CommandId, Micros, ReplicaId
from .environment import SimulationEnvironment
from .network import NetworkOptions, SimulatedNetwork
from .node import CpuModel, SimulatedNode


@dataclass(frozen=True, slots=True)
class ReplyEvent:
    """A committed client command observed at its originating replica."""

    replica_id: ReplicaId
    command_id: CommandId
    output: Any
    time: Micros


ReplyCallback = Callable[[ReplyEvent], None]

#: Callback signature for client submissions: (replica_id, command, time).
SubmitCallback = Callable[[ReplicaId, Command, Micros], None]


class SimulatedCluster:
    """A full protocol deployment inside the discrete-event simulator.

    Args:
        spec: Cluster specification (one replica per site).
        latency: One-way latency matrix; its sites must match the spec.
        protocol: Protocol name (see :mod:`repro.protocols.registry`).
        protocol_config: Protocol tunables (leader, Δ, ...).
        seed: Seed for all randomness (jitter, workloads built on top).
        network_options: Jitter / loss configuration.
        clock_offsets: Optional per-replica clock skew in µs; replicas not
            listed get a perfect clock.
        clock_drift_ppm: Optional per-replica drift (µs gained per second).
        cpu_model: Enables the CPU/batching cost model (throughput runs).
        state_machine_factory: Builds each replica's state machine
            (defaults to :class:`~repro.statemachine.AppendLogStateMachine`).
        log_factory: Builds each replica's stable log (defaults to
            :class:`~repro.storage.memory_log.InMemoryLog`).
        env: Share an existing simulation environment instead of creating a
            fresh one; several clusters on one environment interleave their
            events in one virtual timeline (sharded deployments).  ``seed``
            is ignored when an environment is supplied.
    """

    def __init__(
        self,
        spec: ClusterSpec,
        latency: LatencyMatrix,
        protocol: str,
        protocol_config: Optional[ProtocolConfig] = None,
        *,
        seed: int = 0,
        network_options: NetworkOptions = NetworkOptions(),
        clock_offsets: Optional[dict[ReplicaId, Micros]] = None,
        clock_drift_ppm: Optional[dict[ReplicaId, float]] = None,
        cpu_model: Optional[CpuModel] = None,
        state_machine_factory: Callable[[ReplicaId], StateMachine] = lambda _rid: AppendLogStateMachine(),
        log_factory: Callable[[ReplicaId], CommandLog] = lambda _rid: InMemoryLog(),
        env: Optional[SimulationEnvironment] = None,
        batching: Optional[BatchingOptions] = None,
    ) -> None:
        if tuple(latency.sites) != tuple(spec.sites):
            latency = latency.restricted_to(spec.sites)
        self.spec = spec
        self.latency = latency
        self.protocol = protocol
        self.protocol_config = protocol_config or ProtocolConfig()
        self.env = env if env is not None else SimulationEnvironment(seed=seed)
        self.network = SimulatedNetwork(self.env, latency, network_options)
        self.cpu_model = cpu_model
        self._clock_offsets = dict(clock_offsets or {})
        self._clock_drift = dict(clock_drift_ppm or {})
        self._state_machine_factory = state_machine_factory
        self._log_factory = log_factory
        self._reply_callbacks: list[ReplyCallback] = []
        self._submit_callbacks: list[SubmitCallback] = []
        self.replies: list[ReplyEvent] = []
        self._command_seq = itertools.count(1)
        #: Opportunistic command batching at the submission path (mirrors the
        #: asyncio driver's accumulation window; ``None`` disables it).
        self.batching = batching if batching is not None and batching.enabled else None
        self._accumulating: dict[ReplicaId, list[Command]] = {}
        self._flush_events: dict[ReplicaId, Any] = {}

        self.logs: dict[ReplicaId, CommandLog] = {}
        self.clocks: dict[ReplicaId, Clock] = {}
        self.nodes: dict[ReplicaId, SimulatedNode] = {}
        for replica_spec in spec.replicas:
            rid = replica_spec.replica_id
            self.logs[rid] = log_factory(rid)
            self.clocks[rid] = self._build_clock(rid)
            replica = self._build_replica(rid)
            node = SimulatedNode(
                self.env,
                self.network,
                replica,
                reply_handler=self._on_reply,
                cpu_model=cpu_model,
            )
            self.nodes[rid] = node
        self._started = False

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _build_clock(self, replica_id: ReplicaId) -> Clock:
        offset = self._clock_offsets.get(replica_id, 0)
        drift = self._clock_drift.get(replica_id, 0.0)
        if drift:
            return DriftingClock(self.env, skew=offset, drift_ppm=drift)
        # A zero-skew SkewedClock reads identically to a PerfectClock but
        # stays adjustable, so clock-jump faults can step any replica's clock.
        return SkewedClock(self.env, skew=offset)

    def _build_replica(self, replica_id: ReplicaId, recover: bool = False) -> Replica:
        kwargs: dict[str, Any] = dict(
            clock=self.clocks[replica_id],
            log=self.logs[replica_id],
            state_machine=self._state_machine_factory(replica_id),
            config=self.protocol_config,
        )
        if recover:
            kwargs["recover"] = True
        return create_replica(self.protocol, replica_id, self.spec, **kwargs)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def now(self) -> Micros:
        return self.env.now

    def replica(self, replica_id: ReplicaId) -> Replica:
        return self.nodes[replica_id].replica

    def replicas(self) -> list[Replica]:
        return [node.replica for node in self.nodes.values()]

    def replica_by_site(self, site: str) -> Replica:
        return self.replica(self.spec.by_site(site).replica_id)

    def state_machine(self, replica_id: ReplicaId) -> StateMachine:
        return self.replica(replica_id).state_machine

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start every node (arms initial protocol timers)."""
        if self._started:
            return
        self._started = True
        for node in self.nodes.values():
            node.start()

    def run_for(self, duration: Micros) -> None:
        self.start()
        self.env.run_for(duration)

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        self.start()
        self.env.run_until_idle(max_events=max_events)

    # ------------------------------------------------------------------
    # Client interaction
    # ------------------------------------------------------------------

    def on_reply(self, callback: ReplyCallback) -> None:
        """Register a callback invoked for every committed client command."""
        self._reply_callbacks.append(callback)

    def on_submit(self, callback: SubmitCallback) -> None:
        """Register a callback invoked for every submitted client command."""
        self._submit_callbacks.append(callback)

    def _on_reply(self, replica_id: ReplicaId, command_id: Any, output: Any, time: Micros) -> None:
        event = ReplyEvent(replica_id, command_id, output, time)
        self.replies.append(event)
        for callback in self._reply_callbacks:
            callback(event)

    def make_command(self, payload: bytes, client: str = "client") -> Command:
        """Create a command with a unique id, stamped with the current time."""
        return Command(
            CommandId(client, next(self._command_seq)), payload, created_at=self.env.now
        )

    def submit(self, replica_id: ReplicaId, command: Command) -> Command:
        """Submit *command* to *replica_id* at the current simulation time.

        With batching configured, the command joins the replica's
        accumulation queue instead of reaching the protocol immediately: the
        queue flushes as one :class:`~repro.protocols.records.CommandBatch`
        when it holds ``max_batch`` commands or when the window expires
        (``window_us = 0`` flushes at the same virtual instant, so commands
        submitted at one simulation time batch together — the discrete-event
        twin of the asyncio driver's same-tick flush).
        """
        self.start()
        if replica_id not in self.nodes:
            raise ConfigurationError(f"unknown replica {replica_id}")
        for callback in self._submit_callbacks:
            callback(replica_id, command, self.env.now)
        if self.batching is None:
            self.nodes[replica_id].submit_client_request(command)
            return command
        queue = self._accumulating.setdefault(replica_id, [])
        queue.append(command)
        if len(queue) >= self.batching.max_batch:
            self._flush_submits(replica_id)
        elif replica_id not in self._flush_events:
            self._flush_events[replica_id] = self.env.schedule(
                self.batching.window_us,
                lambda rid=replica_id: self._flush_submits(rid),
            )
        return command

    def _flush_submits(self, replica_id: ReplicaId) -> None:
        """Propose a replica's accumulated commands as one unit.

        A size-triggered flush cancels the armed window event, so the window
        timer can never fire early into the *next* accumulation (the asyncio
        accumulator gives the same guarantee).
        """
        event = self._flush_events.pop(replica_id, None)
        if event is not None:
            event.cancel()  # no-op when this call *is* the firing event
        queue = self._accumulating.pop(replica_id, None)
        if queue:
            self.nodes[replica_id].submit_client_request(make_unit(queue))

    def submit_payload(self, replica_id: ReplicaId, payload: bytes, client: str = "client") -> Command:
        return self.submit(replica_id, self.make_command(payload, client))

    def submit_at(self, time: Micros, replica_id: ReplicaId, command: Command) -> None:
        """Schedule a command submission at an absolute simulation time.

        Bypasses the batching accumulator: the command (or pre-built unit)
        reaches the protocol directly, which is what fault-scenario tests
        scripting exact arrival times want.
        """
        self.start()
        self.env.schedule_at(
            time, lambda: self.nodes[replica_id].submit_client_request(command)
        )

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------

    def crash(self, replica_id: ReplicaId) -> None:
        """Crash a replica; its stable log survives, its soft state does not."""
        self.nodes[replica_id].crash()

    def recover(self, replica_id: ReplicaId) -> Replica:
        """Recover a crashed replica from its stable log and restart it."""
        replica = self._build_replica(replica_id, recover=True)
        node = self.nodes[replica_id]
        node.set_replica(replica)
        node.start()
        return replica

    def partition(self, a: ReplicaId, b: ReplicaId) -> None:
        self.network.partition(a, b)

    def heal(self, a: ReplicaId, b: ReplicaId) -> None:
        self.network.heal(a, b)

    def isolate(self, replica_id: ReplicaId) -> None:
        self.network.isolate(replica_id)

    def heal_all(self) -> None:
        self.network.heal_all()

    def clock_jump(self, replica_id: ReplicaId, delta: Micros) -> None:
        """Step one replica's physical clock by *delta* microseconds.

        The replica's timestamp source stays monotonic, so a negative jump
        freezes its outgoing timestamps until the clock catches up again —
        exactly the failure mode a consistency check wants to provoke.
        """
        clock = self.clocks[replica_id]
        adjust = getattr(clock, "adjust", None)
        if adjust is None:  # pragma: no cover - every built clock is adjustable
            raise ConfigurationError(
                f"clock of replica {replica_id} ({type(clock).__name__}) "
                "cannot be stepped"
            )
        adjust(delta)

    # ------------------------------------------------------------------
    # Consistency checking
    # ------------------------------------------------------------------

    def execution_orders(self) -> dict[ReplicaId, list[CommandId]]:
        """Per-replica execution order (for total-order assertions)."""
        return {rid: list(node.replica.execution_order) for rid, node in self.nodes.items()}

    def assert_consistent_order(self) -> None:
        """Raise ``AssertionError`` unless execution orders are prefix-consistent."""
        orders = list(self.execution_orders().values())
        reference = max(orders, key=len)
        for order in orders:
            if order != reference[: len(order)]:
                raise AssertionError(
                    f"divergent execution orders: {order[:20]} vs {reference[:20]}"
                )


__all__ = ["SimulatedCluster", "ReplyEvent", "ReplyCallback", "SubmitCallback"]
