"""A simulated replica host.

A :class:`SimulatedNode` owns one sans-IO protocol replica and connects it to
the simulated network and event loop: it performs the replica's actions
(sends, broadcasts, timers, client replies) and feeds deliveries back in.

Two execution modes:

* **Zero-cost** (default): protocol processing and serialization take no
  simulated time.  Used by all latency experiments, where wide-area delays
  dominate (the paper makes the same assumption analytically).
* **CPU model**: message receive/serialize work occupies a per-node serial
  CPU with per-message fixed costs and per-byte costs, and messages queued
  while the CPU is busy are processed in batches (per peer and message type),
  amortizing the fixed costs — modelling the opportunistic batching the
  paper's implementation performs.  Used by the throughput experiments
  (Figure 8), where CPU is the bottleneck.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..net.message import Envelope
from ..protocols.base import (
    Action,
    Broadcast,
    ClientReply,
    Replica,
    Send,
    SetTimer,
    Timer,
)
from ..types import Command, Micros, ReplicaId
from .environment import SimulationEnvironment
from .network import SimulatedNetwork

#: Callback signature for committed client commands:
#: (replica_id, command_id, output, commit_time_micros).
ReplyHandler = Callable[[ReplicaId, Any, Any, Micros], None]


@dataclass(frozen=True, slots=True)
class CpuModel:
    """Per-node CPU cost model for the throughput experiments.

    All costs are in microseconds.  ``recv_fixed`` / ``send_fixed`` are paid
    once per *batch group* (messages of the same type exchanged with the same
    peer that are handled together), so saturation increases batch sizes and
    amortizes the fixed costs — the paper's opportunistic batching.
    ``*_per_byte`` costs are paid for every message individually.
    """

    recv_fixed: float = 6.0
    recv_per_byte: float = 0.006
    send_fixed: float = 6.0
    send_per_byte: float = 0.006
    client_fixed: float = 2.0

    def receive_cost(self, groups: int, total_bytes: int) -> Micros:
        return int(round(groups * self.recv_fixed + total_bytes * self.recv_per_byte))

    def send_cost(self, groups: int, total_bytes: int) -> Micros:
        return int(round(groups * self.send_fixed + total_bytes * self.send_per_byte))


#: Estimated per-physical-message overhead in bytes: Ethernet/IP/TCP headers
#: plus framing and protocol-buffer envelope fields.  It doubles as the
#: per-message CPU work that batching cannot remove (parsing, queueing).
MESSAGE_HEADER_BYTES = 72


def _unit_size(unit: Any) -> int:
    """Payload + per-command framing bytes of a command or batch."""
    commands = getattr(unit, "commands", None)
    if commands is not None:  # a CommandBatch: one envelope, many commands
        return sum(command.size + 24 for command in commands)
    if isinstance(unit, Command):
        return unit.size + 24
    return 0


def default_message_size(message: Any) -> int:
    """Estimate the serialized size of a protocol message in bytes.

    Counts a fixed header plus the embedded command payload (and key/value
    bytes dominate real message sizes, as in the paper's Protocol Buffers
    encoding).  A :class:`~repro.protocols.records.CommandBatch` counts every
    constituent's payload but only one message header — the whole batch is
    one wire message (and one simulated delivery), which is where batching's
    fixed-cost amortization comes from.  Exact wire sizes are irrelevant;
    relative sizes drive the throughput model.
    """
    size = MESSAGE_HEADER_BYTES
    size += _unit_size(getattr(message, "command", None))
    records = getattr(message, "records", None)
    if records:
        for record in records:
            size += _unit_size(getattr(record, "command", None))
    return size


class SimulatedNode:
    """Hosts a protocol replica inside the simulation."""

    def __init__(
        self,
        env: SimulationEnvironment,
        network: SimulatedNetwork,
        replica: Replica,
        reply_handler: Optional[ReplyHandler] = None,
        cpu_model: Optional[CpuModel] = None,
        message_size: Callable[[Any], int] = default_message_size,
    ) -> None:
        self.env = env
        self.network = network
        self.replica = replica
        self.replica_id = replica.replica_id
        self.reply_handler = reply_handler
        self.cpu_model = cpu_model
        self.message_size = message_size
        self.crashed = False
        # CPU-model state.
        self._inbox: deque[tuple[str, Any, Micros]] = deque()
        self._cpu_free_at: Micros = 0
        self._process_scheduled = False
        # Statistics.
        self.messages_sent = 0
        self.messages_received = 0
        self.busy_micros: Micros = 0
        network.attach(self.replica_id, self._on_delivery)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Run the replica's start hook (arms its initial timers)."""
        self._perform(self.replica.start())

    def crash(self) -> None:
        """Crash the node: it stops processing and loses its soft state."""
        self.crashed = True
        self.replica.stop()
        self.network.set_down(self.replica_id, True)
        self._inbox.clear()

    def set_replica(self, replica: Replica) -> None:
        """Install a fresh replica object (recovery re-creates the protocol)."""
        self.replica = replica
        self.crashed = False
        self.network.set_down(self.replica_id, False)

    # ------------------------------------------------------------------
    # Inputs
    # ------------------------------------------------------------------

    def submit_client_request(self, command: Any) -> None:
        """Deliver a client unit (command or batch) to the replica now."""
        if self.crashed:
            return
        if self.cpu_model is None:
            self._perform(self.replica.on_client_request(command))
        else:
            self._enqueue("client", command, self.env.now)

    def _on_delivery(self, envelope: Envelope, delivery_time: Micros) -> None:
        if self.crashed:
            return
        self.messages_received += 1
        if self.cpu_model is None:
            self._perform(self.replica.on_message(envelope.src, envelope.message))
        else:
            self._enqueue("msg", envelope, delivery_time)

    def _fire_timer(self, timer: Timer) -> None:
        if self.crashed:
            return
        if self.cpu_model is None:
            self._perform(self.replica.on_timer(timer))
        else:
            self._enqueue("timer", timer, self.env.now)

    # ------------------------------------------------------------------
    # Action execution (zero-cost path)
    # ------------------------------------------------------------------

    def _perform(self, actions: list[Action], send_time: Optional[Micros] = None) -> None:
        for action in actions:
            if isinstance(action, Send):
                self._send(action.dst, action.message, send_time)
            elif isinstance(action, Broadcast):
                for dst in self.replica.broadcast_targets(include_self=False):
                    self._send(dst, action.message, send_time)
                if action.include_self:
                    self._deliver_to_self(action.message, send_time)
            elif isinstance(action, ClientReply):
                if self.reply_handler is not None:
                    self.reply_handler(
                        self.replica_id, action.command_id, action.output, self.env.now
                    )
            elif isinstance(action, SetTimer):
                self.env.schedule(action.delay, lambda t=action.timer: self._fire_timer(t))

    def _send(self, dst: ReplicaId, message: Any, send_time: Optional[Micros]) -> None:
        self.messages_sent += 1
        if dst == self.replica_id:
            self._deliver_to_self(message, send_time)
            return
        envelope = Envelope(self.replica_id, dst, message, self.message_size(message))
        self.network.send(envelope, send_time)

    def _deliver_to_self(self, message: Any, send_time: Optional[Micros]) -> None:
        """Loopback delivery: immediate in zero-cost mode, queued with CPU."""
        if self.cpu_model is None:
            self._perform(self.replica.on_message(self.replica_id, message))
        else:
            arrival = send_time if send_time is not None else self.env.now
            envelope = Envelope(
                self.replica_id, self.replica_id, message, self.message_size(message)
            )
            self._enqueue("msg", envelope, arrival)

    # ------------------------------------------------------------------
    # CPU-model path
    # ------------------------------------------------------------------

    def _enqueue(self, kind: str, payload: Any, available_at: Micros) -> None:
        self._inbox.append((kind, payload, available_at))
        self._schedule_processing(max(available_at, self._cpu_free_at, self.env.now))

    def _schedule_processing(self, at: Micros) -> None:
        if self._process_scheduled:
            return
        self._process_scheduled = True
        self.env.schedule_at(max(at, self.env.now), self._process_batch)

    def _process_batch(self) -> None:
        self._process_scheduled = False
        if self.crashed or not self._inbox:
            return
        assert self.cpu_model is not None
        start = max(self.env.now, self._cpu_free_at)
        batch = list(self._inbox)
        self._inbox.clear()

        # Receive costs: one fixed cost per (peer, message type) group.
        # Loopback (self-addressed) messages are local function calls in a
        # real implementation and incur no network-handling CPU cost.
        recv_groups: set[tuple[Any, type]] = set()
        recv_bytes = 0
        client_count = 0
        for kind, payload, _ in batch:
            if kind == "msg":
                if payload.src == self.replica_id:
                    continue
                recv_groups.add((payload.src, type(payload.message)))
                recv_bytes += payload.size_hint
            elif kind == "client":
                client_count += 1
        cost = self.cpu_model.receive_cost(len(recv_groups), recv_bytes)
        cost += int(round(client_count * self.cpu_model.client_fixed))

        # Run the protocol for every batched item, collecting actions.
        actions: list[Action] = []
        for kind, payload, _ in batch:
            if kind == "msg":
                actions.extend(self.replica.on_message(payload.src, payload.message))
            elif kind == "client":
                actions.extend(self.replica.on_client_request(payload))
            else:
                actions.extend(self.replica.on_timer(payload))

        # Send costs: group outgoing messages per (destination, type); sends
        # to self are loopback calls and cost nothing.
        send_groups: set[tuple[ReplicaId, type]] = set()
        send_bytes = 0
        for action in actions:
            if isinstance(action, Send):
                if action.dst == self.replica_id:
                    continue
                send_groups.add((action.dst, type(action.message)))
                send_bytes += self.message_size(action.message)
            elif isinstance(action, Broadcast):
                size = self.message_size(action.message)
                for dst in self.replica.broadcast_targets(action.include_self):
                    if dst == self.replica_id:
                        continue
                    send_groups.add((dst, type(action.message)))
                    send_bytes += size
        cost += self.cpu_model.send_cost(len(send_groups), send_bytes)

        self._cpu_free_at = start + cost
        self.busy_micros += cost
        # Messages leave the node once the CPU finishes the batch.
        self._perform(actions, send_time=self._cpu_free_at)
        if self._inbox:
            self._schedule_processing(self._cpu_free_at)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def utilization(self, elapsed: Micros) -> float:
        """Fraction of *elapsed* simulated time the CPU spent busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_micros / elapsed)


__all__ = ["SimulatedNode", "CpuModel", "ReplyHandler", "default_message_size"]
