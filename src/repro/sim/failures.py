"""Scripted fault injection for simulated clusters.

Failure scenarios (crash a replica at t=2 s, recover it at t=6 s, partition a
pair for a while, ...) are expressed declaratively and installed onto a
:class:`~repro.sim.cluster.SimulatedCluster`, which keeps experiment scripts
and failure-handling tests readable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..types import Micros, ReplicaId
from .cluster import SimulatedCluster


@dataclass(frozen=True, slots=True)
class CrashEvent:
    """Crash *replica_id* at simulation time *at*."""

    at: Micros
    replica_id: ReplicaId


@dataclass(frozen=True, slots=True)
class RecoverEvent:
    """Recover *replica_id* from its log at simulation time *at*.

    If ``rejoin`` is true and the replica runs Clock-RSM, it immediately
    triggers a reconfiguration to rejoin the active configuration.
    """

    at: Micros
    replica_id: ReplicaId
    rejoin: bool = False


@dataclass(frozen=True, slots=True)
class PartitionEvent:
    """Partition replicas *a* and *b* between *at* and *heal_at*."""

    at: Micros
    a: ReplicaId
    b: ReplicaId
    heal_at: Optional[Micros] = None


@dataclass(frozen=True, slots=True)
class ReconfigureEvent:
    """Have *initiator* trigger a reconfiguration to *new_config* at *at*."""

    at: Micros
    initiator: ReplicaId
    new_config: tuple[ReplicaId, ...]


@dataclass(frozen=True, slots=True)
class ClockJumpEvent:
    """Step *replica_id*'s physical clock by *delta* µs at time *at*."""

    at: Micros
    replica_id: ReplicaId
    delta: Micros


FailureEvent = (
    CrashEvent | RecoverEvent | PartitionEvent | ReconfigureEvent | ClockJumpEvent
)


class FailureSchedule:
    """A collection of failure events installable on a cluster."""

    def __init__(self, events: Optional[list[FailureEvent]] = None) -> None:
        self.events: list[FailureEvent] = list(events or [])

    def crash(self, at: Micros, replica_id: ReplicaId) -> "FailureSchedule":
        self.events.append(CrashEvent(at, replica_id))
        return self

    def recover(self, at: Micros, replica_id: ReplicaId, rejoin: bool = False) -> "FailureSchedule":
        self.events.append(RecoverEvent(at, replica_id, rejoin))
        return self

    def partition(
        self, at: Micros, a: ReplicaId, b: ReplicaId, heal_at: Optional[Micros] = None
    ) -> "FailureSchedule":
        self.events.append(PartitionEvent(at, a, b, heal_at))
        return self

    def reconfigure(
        self, at: Micros, initiator: ReplicaId, new_config: tuple[ReplicaId, ...]
    ) -> "FailureSchedule":
        self.events.append(ReconfigureEvent(at, initiator, new_config))
        return self

    def clock_jump(self, at: Micros, replica_id: ReplicaId, delta: Micros) -> "FailureSchedule":
        self.events.append(ClockJumpEvent(at, replica_id, delta))
        return self

    def install(self, cluster: SimulatedCluster) -> None:
        """Schedule every event on the cluster's simulation environment."""
        cluster.start()
        for event in self.events:
            self._install_one(cluster, event)

    def _install_one(self, cluster: SimulatedCluster, event: FailureEvent) -> None:
        if isinstance(event, CrashEvent):
            cluster.env.schedule_at(event.at, lambda e=event: cluster.crash(e.replica_id))
        elif isinstance(event, RecoverEvent):
            cluster.env.schedule_at(
                event.at, lambda e=event: self._recover(cluster, e)
            )
        elif isinstance(event, PartitionEvent):
            cluster.env.schedule_at(event.at, lambda e=event: cluster.partition(e.a, e.b))
            if event.heal_at is not None:
                cluster.env.schedule_at(
                    event.heal_at, lambda e=event: cluster.heal(e.a, e.b)
                )
        elif isinstance(event, ReconfigureEvent):
            cluster.env.schedule_at(
                event.at, lambda e=event: self._reconfigure(cluster, e)
            )
        elif isinstance(event, ClockJumpEvent):
            cluster.env.schedule_at(
                event.at, lambda e=event: cluster.clock_jump(e.replica_id, e.delta)
            )

    @staticmethod
    def _recover(cluster: SimulatedCluster, event: RecoverEvent) -> None:
        replica = cluster.recover(event.replica_id)
        if event.rejoin and hasattr(replica, "reconfig") and replica.reconfig is not None:
            actions = replica.reconfig.trigger(tuple(cluster.spec.replica_ids))
            cluster.nodes[event.replica_id]._perform(actions)

    @staticmethod
    def _reconfigure(cluster: SimulatedCluster, event: ReconfigureEvent) -> None:
        replica = cluster.replica(event.initiator)
        if not hasattr(replica, "reconfig") or replica.reconfig is None:
            raise ValueError(
                f"protocol {replica.protocol_name!r} does not support reconfiguration"
            )
        actions = replica.reconfig.trigger(event.new_config)
        cluster.nodes[event.initiator]._perform(actions)


__all__ = [
    "FailureSchedule",
    "CrashEvent",
    "RecoverEvent",
    "PartitionEvent",
    "ReconfigureEvent",
    "ClockJumpEvent",
]
