"""Simulated wide-area network.

Delivers envelopes between simulated nodes with per-pair one-way delays taken
from a :class:`~repro.net.latency.LatencyMatrix` (e.g. the paper's Table III
EC2 measurements), optional jitter, message loss, and partitions.  Delivery
per (source, destination) channel is FIFO even under jitter, matching the
paper's system model and the behaviour of a TCP connection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..net.latency import LatencyMatrix
from ..net.message import Envelope
from ..types import Micros, ReplicaId
from .environment import SimulationEnvironment


@dataclass(frozen=True, slots=True)
class NetworkOptions:
    """Tunables of the simulated network.

    Attributes:
        jitter_fraction: Uniform jitter as a fraction of the base one-way
            delay (0.05 adds up to ±5%).  The paper reports average RTTs;
            a small jitter makes percentile plots meaningful.
        jitter_floor: Absolute jitter bound (µs) added even on zero-latency
            (local) links.
        loss_probability: Probability of silently dropping a message
            (independently per message); 0 for all paper experiments.
        partition_mode: What a partition does to traffic.  ``"drop"`` loses
            messages silently (a hard fault, the historical behaviour);
            ``"buffer"`` parks them and re-delivers after the partition
            heals, matching the paper's quasi-reliable (TCP) channels where
            an outage delays messages but correct endpoints eventually
            receive them.  Messages to or from crashed replicas are always
            dropped.
    """

    jitter_fraction: float = 0.0
    jitter_floor: Micros = 0
    loss_probability: float = 0.0
    partition_mode: str = "drop"

    def __post_init__(self) -> None:
        if self.partition_mode not in ("drop", "buffer"):
            raise ValueError(
                f"unknown partition_mode {self.partition_mode!r}; 'drop' or 'buffer'"
            )


class SimulatedNetwork:
    """Schedules envelope deliveries on the simulation environment."""

    def __init__(
        self,
        env: SimulationEnvironment,
        latency: LatencyMatrix,
        options: NetworkOptions = NetworkOptions(),
    ) -> None:
        self._env = env
        self._latency = latency
        self._options = options
        self._handlers: dict[ReplicaId, Callable[[Envelope, Micros], None]] = {}
        self._partitions: set[frozenset[ReplicaId]] = set()
        self._down: set[ReplicaId] = set()
        #: Messages held back by a partition in ``buffer`` mode, per channel
        #: as (send sequence, envelope), released in send order on heal.  A
        #: message may be parked at send time or — if it was already in
        #: flight when the partition started — at delivery time; the send
        #: sequence keeps the channel FIFO across both cases.
        self._parked: dict[tuple[ReplicaId, ReplicaId], list[tuple[int, Envelope]]] = {}
        #: Per-channel send sequence numbers (FIFO bookkeeping).
        self._send_seq: dict[tuple[ReplicaId, ReplicaId], int] = {}
        #: Last scheduled delivery time per (src, dst), for FIFO enforcement.
        self._last_delivery: dict[tuple[ReplicaId, ReplicaId], Micros] = {}
        # Statistics.
        self.sent_count = 0
        self.delivered_count = 0
        self.dropped_count = 0
        self.bytes_sent = 0

    # -- wiring ------------------------------------------------------------------

    def attach(self, replica_id: ReplicaId, handler: Callable[[Envelope, Micros], None]) -> None:
        """Register the delivery handler of a node (called at delivery time)."""
        self._handlers[replica_id] = handler

    @property
    def latency(self) -> LatencyMatrix:
        return self._latency

    # -- fault injection -----------------------------------------------------------

    def partition(self, a: ReplicaId, b: ReplicaId) -> None:
        self._partitions.add(frozenset((a, b)))

    def heal(self, a: ReplicaId, b: ReplicaId) -> None:
        self._partitions.discard(frozenset((a, b)))
        self._release_parked(a, b)
        self._release_parked(b, a)

    def isolate(self, replica_id: ReplicaId) -> None:
        """Partition *replica_id* from every other replica."""
        for other in self._handlers:
            if other != replica_id:
                self.partition(replica_id, other)

    def heal_all(self) -> None:
        pairs = [tuple(pair) for pair in self._partitions]
        self._partitions.clear()
        for a, b in pairs:
            self._release_parked(a, b)
            self._release_parked(b, a)

    def _park(self, envelope: Envelope, seq: int) -> None:
        self._parked.setdefault((envelope.src, envelope.dst), []).append((seq, envelope))

    def _release_parked(self, src: ReplicaId, dst: ReplicaId) -> None:
        """Re-send messages a healed partition had held back, in send order."""
        for seq, envelope in sorted(self._parked.pop((src, dst), [])):
            self._schedule_delivery(envelope, self._env.now, seq)

    def set_down(self, replica_id: ReplicaId, down: bool) -> None:
        """Mark a node as crashed: messages to/from it are dropped."""
        if down:
            self._down.add(replica_id)
        else:
            self._down.discard(replica_id)

    def _blocked(self, src: ReplicaId, dst: ReplicaId) -> bool:
        if src in self._down or dst in self._down:
            return True
        return frozenset((src, dst)) in self._partitions

    # -- sending -------------------------------------------------------------------

    def one_way_delay(self, src: ReplicaId, dst: ReplicaId) -> Micros:
        """Sample the one-way delay for one message (base + jitter)."""
        base = self._latency.delay(src, dst)
        jitter_bound = int(base * self._options.jitter_fraction) + self._options.jitter_floor
        if jitter_bound <= 0:
            return base
        return base + self._env.random.randint(0, jitter_bound)

    def _handle_blocked(self, envelope: Envelope, seq: int) -> bool:
        """Drop or park *envelope* if its channel is blocked; True if handled."""
        src, dst = envelope.src, envelope.dst
        if src in self._down or dst in self._down:
            self.dropped_count += 1
            return True
        if frozenset((src, dst)) in self._partitions:
            if self._options.partition_mode == "buffer":
                self._park(envelope, seq)
            else:
                self.dropped_count += 1
            return True
        return False

    def send(self, envelope: Envelope, send_time: Optional[Micros] = None) -> None:
        """Schedule delivery of *envelope*.

        ``send_time`` defaults to the current simulation time; the node's CPU
        model passes a later time when serialization kept the CPU busy.
        """
        self.sent_count += 1
        self.bytes_sent += envelope.size_hint
        key = (envelope.src, envelope.dst)
        seq = self._send_seq.get(key, 0)
        self._send_seq[key] = seq + 1
        if self._handle_blocked(envelope, seq):
            return
        if self._options.loss_probability > 0.0:
            if self._env.random.random() < self._options.loss_probability:
                self.dropped_count += 1
                return
        departure = self._env.now if send_time is None else max(send_time, self._env.now)
        self._schedule_delivery(envelope, departure, seq)

    def _schedule_delivery(self, envelope: Envelope, departure: Micros, seq: int) -> None:
        delivery = departure + self.one_way_delay(envelope.src, envelope.dst)
        # FIFO per channel: never deliver before a previously sent message.
        key = (envelope.src, envelope.dst)
        previous = self._last_delivery.get(key, 0)
        if delivery < previous:
            delivery = previous
        self._last_delivery[key] = delivery
        self._env.schedule_at(delivery, lambda: self._deliver(envelope, delivery, seq))

    def _deliver(self, envelope: Envelope, delivery_time: Micros, seq: int) -> None:
        if self._handle_blocked(envelope, seq):
            # The destination crashed or was partitioned while the message
            # was in flight (parked until heal in ``buffer`` mode).
            return
        handler = self._handlers.get(envelope.dst)
        if handler is None:
            self.dropped_count += 1
            return
        self.delivered_count += 1
        handler(envelope, delivery_time)


__all__ = ["SimulatedNetwork", "NetworkOptions"]
