"""Deterministic discrete-event simulator.

The paper evaluates latency on Amazon EC2 and throughput on a local cluster.
This package substitutes both testbeds with a deterministic discrete-event
simulation (see DESIGN.md for the substitution argument):

* :mod:`repro.sim.scheduler` / :mod:`repro.sim.environment` — event queue and
  simulation environment (the time source for simulated clocks).
* :mod:`repro.sim.network` — wide-area network model parameterised by a
  one-way latency matrix (the paper's Table III), with optional jitter,
  partitions and per-channel FIFO delivery.
* :mod:`repro.sim.node` — a simulated replica host, including the optional
  CPU/batching cost model used by the throughput experiments.
* :mod:`repro.sim.cluster` — wires clocks, logs, protocol replicas, network
  and nodes into a runnable cluster.
* :mod:`repro.sim.failures` — crash/recovery/partition fault injection.
"""

from .cluster import ReplyEvent, SimulatedCluster
from .environment import SimulationEnvironment
from .network import NetworkOptions, SimulatedNetwork
from .node import CpuModel, SimulatedNode
from .scheduler import EventScheduler, ScheduledEvent

__all__ = [
    "EventScheduler",
    "ScheduledEvent",
    "SimulationEnvironment",
    "SimulatedNetwork",
    "NetworkOptions",
    "SimulatedNode",
    "CpuModel",
    "SimulatedCluster",
    "ReplyEvent",
]
