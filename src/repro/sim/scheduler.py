"""Event scheduler: a priority queue of timestamped callbacks."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import SimulationError
from ..types import Micros


@dataclass(order=True)
class ScheduledEvent:
    """An event in the queue; ordering is (time, sequence number)."""

    time: Micros
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Cancel the event; it will be skipped when its time comes."""
        self.cancelled = True


class EventScheduler:
    """A deterministic event queue.

    Events scheduled for the same time fire in scheduling order (FIFO), which
    keeps simulations reproducible run-to-run for a fixed seed.
    """

    def __init__(self) -> None:
        self._queue: list[ScheduledEvent] = []
        self._sequence = itertools.count()
        self.executed_count = 0

    def __len__(self) -> int:
        return sum(1 for event in self._queue if not event.cancelled)

    def schedule_at(self, time: Micros, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule *callback* to run at absolute simulation time *time*."""
        if time < 0:
            raise SimulationError(f"cannot schedule an event at negative time {time}")
        event = ScheduledEvent(time, next(self._sequence), callback)
        heapq.heappush(self._queue, event)
        return event

    def peek_time(self) -> Optional[Micros]:
        """The timestamp of the next pending event, or ``None`` if empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def pop(self) -> Optional[ScheduledEvent]:
        """Remove and return the next non-cancelled event, or ``None``."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if not event.cancelled:
                return event
        return None

    def run_event(self, event: ScheduledEvent) -> None:
        self.executed_count += 1
        event.callback()


__all__ = ["EventScheduler", "ScheduledEvent"]
