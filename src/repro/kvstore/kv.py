"""The key-value state machine."""

from __future__ import annotations

from typing import Optional

from ..net.wire import decode, encode
from ..statemachine import StateMachine
from ..types import Command
from .commands import DELETE, GET, PUT, decode_op


class KVStateMachine(StateMachine):
    """An in-memory key-value store driven by replicated commands.

    Outputs:
        * ``PUT`` returns the previous value (or ``None``).
        * ``GET`` returns the current value (or ``None``).
        * ``DELETE`` returns whether the key existed.
    """

    def __init__(self) -> None:
        self._data: dict[str, bytes] = {}
        self.applied_count = 0

    # -- StateMachine interface ------------------------------------------------

    def apply(self, command: Command) -> Optional[bytes] | bool:
        op = decode_op(command.payload)
        self.applied_count += 1
        if op.op == PUT:
            previous = self._data.get(op.key)
            self._data[op.key] = op.value or b""
            return previous
        if op.op == GET:
            return self._data.get(op.key)
        if op.op == DELETE:
            return self._data.pop(op.key, None) is not None
        raise AssertionError(f"unreachable operation {op.op!r}")

    def snapshot(self) -> bytes:
        return encode({"applied": self.applied_count, "data": dict(self._data)})

    def restore(self, snapshot: bytes) -> None:
        decoded = decode(snapshot)
        self.applied_count = int(decoded["applied"])
        self._data = {str(k): bytes(v) for k, v in decoded["data"].items()}

    # -- local inspection (not part of the replicated interface) ------------------

    def get(self, key: str) -> Optional[bytes]:
        """Read a key directly from local state (used by tests/examples)."""
        return self._data.get(key)

    def __len__(self) -> int:
        return len(self._data)

    def keys(self) -> list[str]:
        return sorted(self._data)


__all__ = ["KVStateMachine"]
