"""Key-value command encoding.

Commands are opaque byte payloads to the replication protocols; this module
defines the payload format for the key-value store: a small wire-encoded list
``[op, key, value]`` where ``op`` is one of ``"put"``, ``"get"``,
``"delete"``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..errors import CodecError
from ..net.wire import decode, encode

PUT = "put"
GET = "get"
DELETE = "delete"

_VALID_OPS = frozenset({PUT, GET, DELETE})


@dataclass(frozen=True, slots=True)
class KvOp:
    """A decoded key-value operation."""

    op: str
    key: str
    value: Optional[bytes] = None

    def __post_init__(self) -> None:
        if self.op not in _VALID_OPS:
            raise CodecError(f"unknown key-value operation {self.op!r}")


def encode_put(key: str, value: bytes) -> bytes:
    """Payload for ``PUT key value``."""
    return encode([PUT, key, bytes(value)])


def encode_get(key: str) -> bytes:
    """Payload for ``GET key`` (reads also go through the protocol, which is
    what gives Clock-RSM linearizable reads)."""
    return encode([GET, key, b""])


def encode_delete(key: str) -> bytes:
    """Payload for ``DELETE key``."""
    return encode([DELETE, key, b""])


def decode_op(payload: bytes) -> KvOp:
    """Decode a key-value payload; raises :class:`CodecError` if malformed."""
    try:
        fields = decode(payload)
    except CodecError:
        raise
    if (
        not isinstance(fields, list)
        or len(fields) != 3
        or not isinstance(fields[0], str)
        or not isinstance(fields[1], str)
        or not isinstance(fields[2], (bytes, bytearray))
    ):
        raise CodecError(f"malformed key-value payload: {fields!r}")
    op, key, value = fields
    return KvOp(op, key, bytes(value) if op == PUT else None)


def random_update(
    rng: random.Random, key_space: int = 1000, value_size: int = 64, key_prefix: str = "key"
) -> bytes:
    """A PUT to a uniformly random key, as the paper's clients issue."""
    key = f"{key_prefix}-{rng.randrange(key_space)}"
    return encode_put(key, bytes(value_size))


__all__ = [
    "PUT",
    "GET",
    "DELETE",
    "KvOp",
    "encode_put",
    "encode_get",
    "encode_delete",
    "decode_op",
    "random_update",
]
