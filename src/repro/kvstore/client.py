"""Client helpers for the replicated key-value store (simulation side).

:class:`SimKVClient` issues key-value commands against one replica of a
:class:`~repro.sim.cluster.SimulatedCluster` and advances virtual time until
the commit reply arrives, giving example scripts and tests a synchronous
``put``/``get``/``delete`` API with real replication underneath.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from ..checker.history import OpHistory
from ..errors import RequestTimeout
from ..sim.cluster import ReplyEvent, SimulatedCluster
from ..types import Command, CommandId, Micros, ReplicaId, seconds_to_micros
from .commands import encode_delete, encode_get, encode_put


class SimKVClient:
    """A synchronous key-value client bound to one replica of a simulation.

    Pass an :class:`~repro.checker.history.OpHistory` to record every
    invocation and response this client observes; after the session, snapshot
    ``cluster.execution_orders()`` into the history and hand it to
    :func:`repro.checker.check_history` to verify the session was
    linearizable.
    """

    _client_ids = itertools.count(1)

    def __init__(
        self,
        cluster: SimulatedCluster,
        replica_id: ReplicaId,
        timeout: Micros = seconds_to_micros(30.0),
        history: Optional[OpHistory] = None,
        name: Optional[str] = None,
        seq: Optional["itertools.count"] = None,
    ) -> None:
        self.cluster = cluster
        self.replica_id = replica_id
        self.timeout = timeout
        self.history = history
        # A shared name + seqno counter lets several per-cluster clients act
        # as ONE logical client (repro.shard.ShardedKVClient), so recorded
        # histories see a single sequential client spanning shards.
        self._name = name or f"kv-client-{next(self._client_ids)}@r{replica_id}"
        self._seq = seq if seq is not None else itertools.count(1)
        self._results: dict[CommandId, Any] = {}
        cluster.on_reply(self._on_reply)

    # -- public API ------------------------------------------------------------

    def put(self, key: str, value: bytes) -> Optional[bytes]:
        """Replicate a PUT and return the key's previous value."""
        return self._execute(encode_put(key, value))

    def get(self, key: str) -> Optional[bytes]:
        """Replicate a linearizable GET and return the value."""
        return self._execute(encode_get(key))

    def delete(self, key: str) -> bool:
        """Replicate a DELETE and return whether the key existed."""
        return bool(self._execute(encode_delete(key)))

    # -- internals -----------------------------------------------------------------

    def _on_reply(self, event: ReplyEvent) -> None:
        if event.command_id.client == self._name:
            self._results[event.command_id] = event.output
            if self.history is not None:
                self.history.complete(event.command_id, event.output, event.time)

    def _execute(self, payload: bytes) -> Any:
        command = Command(
            CommandId(self._name, next(self._seq)), payload, created_at=self.cluster.env.now
        )
        if self.history is not None:
            self.history.invoke(
                command.command_id, self.replica_id, payload, self.cluster.env.now
            )
        self.cluster.submit(self.replica_id, command)
        deadline = self.cluster.env.now + self.timeout
        while command.command_id not in self._results:
            if self.cluster.env.now >= deadline:
                if self.history is not None:
                    self.history.fail(command.command_id, self.cluster.env.now)
                raise RequestTimeout(
                    f"command {command.command_id} did not commit within "
                    f"{self.timeout} µs of virtual time"
                )
            if not self.cluster.env.step():
                if self.history is not None:
                    self.history.fail(command.command_id, self.cluster.env.now)
                raise RequestTimeout(
                    f"simulation went idle before command {command.command_id} committed"
                )
        return self._results.pop(command.command_id)


__all__ = ["SimKVClient"]
