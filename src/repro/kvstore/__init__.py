"""The replicated key-value store used throughout the paper's evaluation.

The paper replicates an in-memory key-value store with each protocol and has
clients update randomly selected keys.  This package provides the key-value
state machine, the command encoding, and client helpers for both the
simulator and the asyncio runtime.
"""

from .commands import KvOp, decode_op, encode_delete, encode_get, encode_put, random_update
from .kv import KVStateMachine
from .client import SimKVClient

__all__ = [
    "KvOp",
    "encode_put",
    "encode_get",
    "encode_delete",
    "decode_op",
    "random_update",
    "KVStateMachine",
    "SimKVClient",
]
