"""Clock-RSM reproduction library.

A production-quality Python reproduction of *"Clock-RSM: Low-Latency
Inter-Datacenter State Machine Replication Using Loosely Synchronized
Physical Clocks"* (DSN 2014): the Clock-RSM protocol, the Multi-Paxos,
Paxos-bcast, Mencius and Mencius-bcast baselines, a deterministic wide-area
discrete-event simulator, an asyncio runtime, a replicated key-value store,
the paper's analytical latency model, and a benchmark harness that
regenerates every table and figure of the evaluation.

Quickstart::

    from repro import ClusterSpec, ProtocolConfig, SimulatedCluster
    from repro.analysis import ec2_latency_matrix
    from repro.kvstore import KVStateMachine, SimKVClient

    spec = ClusterSpec.from_sites(["CA", "VA", "IR"])
    cluster = SimulatedCluster(
        spec, ec2_latency_matrix(spec.sites), "clock-rsm",
        state_machine_factory=lambda _rid: KVStateMachine(),
    )
    client = SimKVClient(cluster, replica_id=0)
    client.put("greeting", b"hello geo-replication")
    print(client.get("greeting"))
"""

from .config import ClusterSpec, ProtocolConfig, ReplicaSpec
from .core.protocol import ClockRsmReplica
from .errors import ReproError
from .experiment import Deployment, ExperimentResult, ExperimentSpec
from .net.latency import LatencyMatrix
from .protocols import (
    MenciusBcastReplica,
    MenciusReplica,
    MultiPaxosReplica,
    PaxosBcastReplica,
    create_replica,
)
from .sim.cluster import SimulatedCluster
from .statemachine import StateMachine
from .types import Command, CommandId, Timestamp

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ClusterSpec",
    "ReplicaSpec",
    "ProtocolConfig",
    "LatencyMatrix",
    "Command",
    "CommandId",
    "Timestamp",
    "StateMachine",
    "ClockRsmReplica",
    "MultiPaxosReplica",
    "PaxosBcastReplica",
    "MenciusReplica",
    "MenciusBcastReplica",
    "create_replica",
    "SimulatedCluster",
    "ExperimentSpec",
    "ExperimentResult",
    "Deployment",
    "ReproError",
]
