"""Numerical comparison of Clock-RSM and Paxos-bcast over EC2 placements.

Reproduces Figure 7 (average commit latency over all groups of three, five
and seven EC2 data centers, for all replicas and for the worst replica of
each group) and Table IV (the per-replica latency reduction of Clock-RSM over
Paxos-bcast, split into the replicas where Clock-RSM wins and loses).

Paxos-bcast always gets its best leader: the replica minimising the group's
average latency, exactly as the paper does.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..net.latency import LatencyMatrix
from ..types import micros_to_ms
from .ec2 import EC2_SITES, ec2_latency_matrix
from .latency_model import clock_rsm_balanced, paxos_bcast_latency


def enumerate_groups(sites: Sequence[str], size: int) -> list[tuple[str, ...]]:
    """All combinations of *size* sites, preserving the input order."""
    return [tuple(group) for group in itertools.combinations(sites, size)]


def best_paxos_bcast_leader(matrix: LatencyMatrix) -> int:
    """The leader index minimising the group's average Paxos-bcast latency."""
    n = matrix.size
    best_leader, best_average = 0, float("inf")
    for leader in range(n):
        average = sum(paxos_bcast_latency(matrix, origin, leader) for origin in range(n)) / n
        if average < best_average:
            best_leader, best_average = leader, average
    return best_leader


@dataclass(frozen=True)
class GroupComparison:
    """Per-replica latencies of one replica placement (in milliseconds)."""

    sites: tuple[str, ...]
    paxos_bcast_leader: str
    clock_rsm_ms: tuple[float, ...]
    paxos_bcast_ms: tuple[float, ...]

    @property
    def size(self) -> int:
        return len(self.sites)

    @property
    def clock_rsm_average(self) -> float:
        return sum(self.clock_rsm_ms) / self.size

    @property
    def paxos_bcast_average(self) -> float:
        return sum(self.paxos_bcast_ms) / self.size

    @property
    def clock_rsm_highest(self) -> float:
        return max(self.clock_rsm_ms)

    @property
    def paxos_bcast_highest(self) -> float:
        return max(self.paxos_bcast_ms)


def compare_group(
    sites: Sequence[str], matrix: Optional[LatencyMatrix] = None
) -> GroupComparison:
    """Compare Clock-RSM and best-leader Paxos-bcast for one placement."""
    full = matrix if matrix is not None else ec2_latency_matrix()
    group_matrix = full.restricted_to(sites)
    leader = best_paxos_bcast_leader(group_matrix)
    clock_rsm = tuple(
        micros_to_ms(clock_rsm_balanced(group_matrix, origin)) for origin in range(len(sites))
    )
    paxos_bcast = tuple(
        micros_to_ms(paxos_bcast_latency(group_matrix, origin, leader))
        for origin in range(len(sites))
    )
    return GroupComparison(
        sites=tuple(sites),
        paxos_bcast_leader=sites[leader],
        clock_rsm_ms=clock_rsm,
        paxos_bcast_ms=paxos_bcast,
    )


def compare_all_groups(
    size: int, sites: Sequence[str] = EC2_SITES, matrix: Optional[LatencyMatrix] = None
) -> list[GroupComparison]:
    """Compare every placement of *size* replicas drawn from *sites*."""
    full = matrix if matrix is not None else ec2_latency_matrix(sites)
    return [compare_group(group, full) for group in enumerate_groups(sites, size)]


@dataclass(frozen=True)
class AverageLatencies:
    """One group-size bar group of Figure 7 (milliseconds)."""

    group_size: int
    group_count: int
    paxos_bcast_all: float
    clock_rsm_all: float
    paxos_bcast_highest: float
    clock_rsm_highest: float


def average_latency_by_group_size(
    sizes: Iterable[int] = (3, 5, 7),
    sites: Sequence[str] = EC2_SITES,
    matrix: Optional[LatencyMatrix] = None,
) -> list[AverageLatencies]:
    """Figure 7: average 'all' and 'highest' latencies per group size."""
    results = []
    for size in sizes:
        groups = compare_all_groups(size, sites, matrix)
        count = len(groups)
        results.append(
            AverageLatencies(
                group_size=size,
                group_count=count,
                paxos_bcast_all=sum(g.paxos_bcast_average for g in groups) / count,
                clock_rsm_all=sum(g.clock_rsm_average for g in groups) / count,
                paxos_bcast_highest=sum(g.paxos_bcast_highest for g in groups) / count,
                clock_rsm_highest=sum(g.clock_rsm_highest for g in groups) / count,
            )
        )
    return results


@dataclass(frozen=True)
class ReductionSummary:
    """One half of a Table IV row: replicas where Clock-RSM wins (or loses).

    ``absolute_reduction_ms`` and ``relative_reduction`` are averaged over the
    replicas in this bucket; negative values mean Clock-RSM is slower.
    """

    group_size: int
    replica_fraction: float
    absolute_reduction_ms: float
    relative_reduction: float


def aggregate_reduction(
    size: int, sites: Sequence[str] = EC2_SITES, matrix: Optional[LatencyMatrix] = None
) -> tuple[ReductionSummary, ReductionSummary]:
    """Table IV: latency reduction of Clock-RSM over Paxos-bcast.

    Returns ``(wins, losses)``: the bucket of replicas where Clock-RSM has
    strictly lower latency and the bucket where it is higher or equal (the
    paper folds exact ties into the second bucket, which is why its
    three-replica row reads 0% / 100%).  The relative reduction of a bucket
    is the bucket's mean absolute reduction divided by its mean Paxos-bcast
    latency.
    """
    groups = compare_all_groups(size, sites, matrix)
    wins: list[tuple[float, float]] = []
    losses: list[tuple[float, float]] = []
    for group in groups:
        for clock_ms, paxos_ms in zip(group.clock_rsm_ms, group.paxos_bcast_ms):
            reduction = paxos_ms - clock_ms
            if reduction > 0:
                wins.append((reduction, paxos_ms))
            else:
                losses.append((reduction, paxos_ms))
    total = len(wins) + len(losses)

    def _summary(bucket: list[tuple[float, float]]) -> ReductionSummary:
        if not bucket:
            return ReductionSummary(size, 0.0, 0.0, 0.0)
        mean_reduction = sum(b[0] for b in bucket) / len(bucket)
        mean_paxos = sum(b[1] for b in bucket) / len(bucket)
        return ReductionSummary(
            group_size=size,
            replica_fraction=len(bucket) / total,
            absolute_reduction_ms=mean_reduction,
            relative_reduction=mean_reduction / mean_paxos if mean_paxos else 0.0,
        )

    return _summary(wins), _summary(losses)


__all__ = [
    "enumerate_groups",
    "best_paxos_bcast_leader",
    "GroupComparison",
    "compare_group",
    "compare_all_groups",
    "AverageLatencies",
    "average_latency_by_group_size",
    "ReductionSummary",
    "aggregate_reduction",
]
