"""Closed-form commit latency (the paper's Table II).

Every function takes a :class:`~repro.net.latency.LatencyMatrix` of one-way
delays (µs) and replica indices, and returns the expected commit latency in
µs.  ``median`` is the majority-forming delay — the ⌊N/2⌋-th smallest entry
of a row that includes the replica's own zero delay — exactly the paper's
``median({d(ri, rk) | ∀rk ∈ R})``.
"""

from __future__ import annotations

from typing import Iterable

from ..net.latency import LatencyMatrix
from ..types import Micros


def median_delay(matrix: LatencyMatrix, replica: int) -> Micros:
    """``median({d(replica, k) | k ∈ R})`` (majority-forming one-way delay)."""
    return matrix.median_delay_from(replica)


def max_delay(matrix: LatencyMatrix, replica: int) -> Micros:
    """``max({d(replica, k) | k ∈ R})`` (delay to the farthest replica)."""
    return matrix.max_delay_from(replica)


def _median_of(values: Iterable[Micros]) -> Micros:
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


# ---------------------------------------------------------------------------
# Clock-RSM
# ---------------------------------------------------------------------------


def clock_rsm_majority_replication(matrix: LatencyMatrix, origin: int) -> Micros:
    """lc1: one round trip to the closest majority."""
    return 2 * median_delay(matrix, origin)


def clock_rsm_stable_order_best(matrix: LatencyMatrix, origin: int) -> Micros:
    """lc2 (best case): one-way delay from the farthest replica."""
    return max_delay(matrix, origin)


def clock_rsm_stable_order_worst(matrix: LatencyMatrix, origin: int) -> Micros:
    """lc2 (worst case): a full round trip to the farthest replica."""
    return 2 * max_delay(matrix, origin)


def clock_rsm_prefix_replication_worst(matrix: LatencyMatrix, origin: int) -> Micros:
    """lc3 (worst case): two-hop delay from any replica via its majority.

    ``max over j of median over k of (d(j, k) + d(k, origin))`` — the time for
    replica j's concurrent slightly-earlier command to reach a majority whose
    acknowledgements reach the origin.
    """
    n = matrix.size
    worst = 0
    for j in range(n):
        two_hop = [matrix.delay(j, k) + matrix.delay(k, origin) for k in range(n)]
        worst = max(worst, _median_of(two_hop))
    return worst


def clock_rsm_balanced(matrix: LatencyMatrix, origin: int) -> Micros:
    """Clock-RSM commit latency under balanced workloads (Table II)."""
    return max(
        clock_rsm_majority_replication(matrix, origin),
        clock_rsm_stable_order_best(matrix, origin),
        clock_rsm_prefix_replication_worst(matrix, origin),
    )


def clock_rsm_imbalanced(matrix: LatencyMatrix, origin: int) -> Micros:
    """Clock-RSM latency when only *origin* serves (moderate/heavy) requests."""
    return max(
        clock_rsm_majority_replication(matrix, origin),
        clock_rsm_stable_order_best(matrix, origin),
    )


def clock_rsm_light_imbalanced(
    matrix: LatencyMatrix, origin: int, clocktime_interval: Micros = 0
) -> Micros:
    """Clock-RSM latency for a single lightly-loaded origin.

    Without the CLOCKTIME extension the stable-order condition needs a full
    round trip to the farthest replica; with the extension (broadcast every Δ)
    it needs ``max one-way + Δ``.
    """
    if clocktime_interval <= 0:
        return max(
            clock_rsm_majority_replication(matrix, origin),
            clock_rsm_stable_order_worst(matrix, origin),
        )
    return max(
        clock_rsm_majority_replication(matrix, origin),
        clock_rsm_stable_order_best(matrix, origin) + clocktime_interval,
    )


# ---------------------------------------------------------------------------
# Paxos and Paxos-bcast
# ---------------------------------------------------------------------------


def paxos_latency(matrix: LatencyMatrix, origin: int, leader: int) -> Micros:
    """Multi-Paxos commit latency at *origin* with the given *leader*."""
    leader_round_trip = 2 * median_delay(matrix, leader)
    if origin == leader:
        return leader_round_trip
    return 2 * matrix.delay(origin, leader) + leader_round_trip


def paxos_bcast_latency(matrix: LatencyMatrix, origin: int, leader: int) -> Micros:
    """Paxos-bcast commit latency at *origin* with the given *leader*."""
    if origin == leader:
        return 2 * median_delay(matrix, leader)
    n = matrix.size
    two_hop = [matrix.delay(leader, k) + matrix.delay(k, origin) for k in range(n)]
    return matrix.delay(origin, leader) + _median_of(two_hop)


# ---------------------------------------------------------------------------
# Mencius-bcast
# ---------------------------------------------------------------------------


def mencius_bcast_imbalanced(matrix: LatencyMatrix, origin: int) -> Micros:
    """Mencius-bcast latency when only *origin* proposes commands."""
    return 2 * max_delay(matrix, origin)


def mencius_bcast_balanced_bounds(matrix: LatencyMatrix, origin: int) -> tuple[Micros, Micros]:
    """Mencius-bcast latency bounds under balanced workloads: [q, q + max].

    ``q`` is Clock-RSM's balanced latency at the same replica; the upper
    bound adds one one-way delay to the farthest replica (the delayed-commit
    penalty).
    """
    q = clock_rsm_balanced(matrix, origin)
    return q, q + max_delay(matrix, origin)


# ---------------------------------------------------------------------------
# Uniform entry point
# ---------------------------------------------------------------------------


def protocol_latency(
    protocol: str,
    matrix: LatencyMatrix,
    origin: int,
    *,
    leader: int = 0,
    balanced: bool = True,
) -> Micros:
    """Expected commit latency of *protocol* at *origin* (Table II).

    For Mencius-bcast under balanced workloads the midpoint of the paper's
    [q, q + max] interval is returned as the expectation (the delayed-commit
    penalty is uniformly distributed between zero and one one-way delay).
    """
    if protocol == "clock-rsm":
        return clock_rsm_balanced(matrix, origin) if balanced else clock_rsm_imbalanced(matrix, origin)
    if protocol == "paxos":
        return paxos_latency(matrix, origin, leader)
    if protocol == "paxos-bcast":
        return paxos_bcast_latency(matrix, origin, leader)
    if protocol in ("mencius", "mencius-bcast"):
        if not balanced:
            return mencius_bcast_imbalanced(matrix, origin)
        low, high = mencius_bcast_balanced_bounds(matrix, origin)
        return (low + high) // 2
    raise ValueError(f"unknown protocol {protocol!r}")


__all__ = [
    "median_delay",
    "max_delay",
    "clock_rsm_majority_replication",
    "clock_rsm_stable_order_best",
    "clock_rsm_stable_order_worst",
    "clock_rsm_prefix_replication_worst",
    "clock_rsm_balanced",
    "clock_rsm_imbalanced",
    "clock_rsm_light_imbalanced",
    "paxos_latency",
    "paxos_bcast_latency",
    "mencius_bcast_imbalanced",
    "mencius_bcast_balanced_bounds",
    "protocol_latency",
]
