"""Analytical latency model (the paper's Section IV and Table II).

* :mod:`repro.analysis.ec2` — the EC2 round-trip measurements of Table III.
* :mod:`repro.analysis.latency_model` — closed-form commit latency of
  Clock-RSM, Paxos, Paxos-bcast and Mencius-bcast for an arbitrary one-way
  latency matrix.
* :mod:`repro.analysis.comparison` — the numerical comparison over every
  3/5/7-replica EC2 placement (Figure 7 and Table IV).
"""

from .comparison import (
    GroupComparison,
    ReductionSummary,
    aggregate_reduction,
    average_latency_by_group_size,
    compare_group,
    enumerate_groups,
)
from .ec2 import EC2_RTT_MS, EC2_SITES, ec2_latency_matrix
from .latency_model import (
    clock_rsm_balanced,
    clock_rsm_imbalanced,
    clock_rsm_light_imbalanced,
    max_delay,
    median_delay,
    mencius_bcast_balanced_bounds,
    mencius_bcast_imbalanced,
    paxos_bcast_latency,
    paxos_latency,
    protocol_latency,
)

__all__ = [
    "EC2_SITES",
    "EC2_RTT_MS",
    "ec2_latency_matrix",
    "median_delay",
    "max_delay",
    "clock_rsm_balanced",
    "clock_rsm_imbalanced",
    "clock_rsm_light_imbalanced",
    "paxos_latency",
    "paxos_bcast_latency",
    "mencius_bcast_imbalanced",
    "mencius_bcast_balanced_bounds",
    "protocol_latency",
    "enumerate_groups",
    "compare_group",
    "GroupComparison",
    "average_latency_by_group_size",
    "aggregate_reduction",
    "ReductionSummary",
]
