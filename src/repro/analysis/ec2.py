"""The paper's Table III: average RTTs between Amazon EC2 data centers.

The seven sites are California (CA), Virginia (VA), Ireland (IR), Tokyo (JP),
Singapore (SG), Australia (AU) and São Paulo (BR).  Values are milliseconds
of round-trip time measured with ping; the analytical model and the simulator
assume symmetric one-way delays of half the RTT.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..net.latency import LatencyMatrix

#: Site names in the order the paper lists them.
EC2_SITES: tuple[str, ...] = ("CA", "VA", "IR", "JP", "SG", "AU", "BR")

#: Round-trip times in milliseconds (Table III).
EC2_RTT_MS: dict[tuple[str, str], float] = {
    ("CA", "VA"): 83.0,
    ("CA", "IR"): 170.0,
    ("CA", "JP"): 125.0,
    ("CA", "SG"): 171.0,
    ("CA", "AU"): 187.0,
    ("CA", "BR"): 212.0,
    ("VA", "IR"): 101.0,
    ("VA", "JP"): 215.0,
    ("VA", "SG"): 254.0,
    ("VA", "AU"): 220.0,
    ("VA", "BR"): 137.0,
    ("IR", "JP"): 280.0,
    ("IR", "SG"): 216.0,
    ("IR", "AU"): 305.0,
    ("IR", "BR"): 216.0,
    ("JP", "SG"): 77.0,
    ("JP", "AU"): 129.0,
    ("JP", "BR"): 368.0,
    ("SG", "AU"): 188.0,
    ("SG", "BR"): 369.0,
    ("AU", "BR"): 349.0,
}

#: Typical intra-data-center RTT reported by the paper (Section VI-B).
EC2_LOCAL_RTT_MS = 0.6

#: The replica placements used by the paper's EC2 experiments.
THREE_REPLICA_SITES: tuple[str, ...] = ("CA", "VA", "IR")
FIVE_REPLICA_SITES: tuple[str, ...] = ("CA", "VA", "IR", "JP", "SG")


def ec2_latency_matrix(
    sites: Optional[Sequence[str]] = None, include_local: bool = False
) -> LatencyMatrix:
    """Build the one-way latency matrix for *sites* (default: all seven).

    ``include_local`` adds the ~0.6 ms intra-data-center RTT on the diagonal;
    the analytical model ignores it (as the paper does), the simulator may
    include it for realism.
    """
    selected = tuple(sites) if sites is not None else EC2_SITES
    full = LatencyMatrix.from_rtt_ms(
        EC2_SITES, EC2_RTT_MS, local_rtt_ms=EC2_LOCAL_RTT_MS if include_local else 0.0
    )
    if selected == EC2_SITES:
        return full
    return full.restricted_to(selected)


__all__ = [
    "EC2_SITES",
    "EC2_RTT_MS",
    "EC2_LOCAL_RTT_MS",
    "THREE_REPLICA_SITES",
    "FIVE_REPLICA_SITES",
    "ec2_latency_matrix",
]
