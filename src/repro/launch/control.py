"""The control channel between the supervisor and its workers.

Deliberately boring: length-prefixed (u32 big-endian) UTF-8 JSON messages on
one TCP connection per worker.  The protocol wire format
(:mod:`repro.net.wire`) is reserved for replica↔replica traffic; control
messages carry spec fragments and result payloads, which are plain
dictionaries anyway, and JSON keeps worker stderr dumps human-readable when
a deployment is being debugged.

Every message is a JSON object with a ``type`` key.  The conversation is
strictly request/response-free — each side knows whose turn it is from the
deployment phase — so the helpers here are just framing plus a
connect-with-retry (the supervisor's listener is up before workers spawn,
but the retry keeps worker startup robust to slow loops).
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Optional

from ..errors import LaunchError

_LENGTH = struct.Struct(">I")

#: Control messages carry whole operation histories; allow them to be large,
#: but still bound the frame so a corrupt prefix cannot ask for gigabytes.
MAX_CONTROL_FRAME = 256 * 1024 * 1024


async def send_json(writer: asyncio.StreamWriter, message: dict[str, Any]) -> None:
    """Write one length-prefixed JSON control message."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_CONTROL_FRAME:
        raise LaunchError(f"control message too large: {len(body)} bytes")
    writer.write(_LENGTH.pack(len(body)) + body)
    await writer.drain()


async def read_json(
    reader: asyncio.StreamReader, timeout: Optional[float] = None, who: str = "peer"
) -> dict[str, Any]:
    """Read one control message; raises :class:`LaunchError` on EOF/timeout.

    *who* names the other side in error messages (e.g. ``"worker 2"``).
    """
    try:
        header = await asyncio.wait_for(reader.readexactly(_LENGTH.size), timeout)
        (length,) = _LENGTH.unpack(header)
        if length > MAX_CONTROL_FRAME:
            raise LaunchError(f"control frame from {who} exceeds limit: {length}")
        body = await asyncio.wait_for(reader.readexactly(length), timeout)
    except asyncio.TimeoutError as exc:
        raise LaunchError(f"timed out waiting for a control message from {who}") from exc
    except (asyncio.IncompleteReadError, ConnectionResetError) as exc:
        raise LaunchError(f"control connection to {who} closed unexpectedly") from exc
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise LaunchError(f"malformed control message from {who}: {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise LaunchError(f"control message from {who} lacks a type")
    return message


async def expect(
    reader: asyncio.StreamReader,
    kind: str,
    timeout: Optional[float] = None,
    who: str = "peer",
) -> dict[str, Any]:
    """Read one message and require its ``type`` to be *kind*.

    A worker that hits an exception mid-handshake reports it as an ``error``
    message; surfacing its traceback here beats a generic phase timeout.
    """
    message = await read_json(reader, timeout=timeout, who=who)
    if message["type"] == "error":
        detail = message.get("traceback") or message.get("error", "unknown error")
        raise LaunchError(f"{who} failed: {detail}")
    if message["type"] != kind:
        raise LaunchError(
            f"expected a {kind!r} message from {who}, got {message['type']!r}"
        )
    return message


async def connect_with_retry(
    host: str, port: int, timeout: float, backoff_s: float = 0.05
) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Open a connection, retrying with linear backoff until *timeout*."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    attempt = 0
    while True:
        try:
            return await asyncio.open_connection(host, port)
        except OSError as exc:
            attempt += 1
            delay = backoff_s * attempt
            if loop.time() + delay >= deadline:
                raise LaunchError(
                    f"could not reach the supervisor at {host}:{port} "
                    f"within {timeout} s: {exc}"
                ) from exc
            await asyncio.sleep(delay)


__all__ = [
    "MAX_CONTROL_FRAME",
    "connect_with_retry",
    "expect",
    "read_json",
    "send_json",
]
