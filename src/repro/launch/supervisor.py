"""The deployment supervisor: spawns, drives, and tears down workers.

The supervisor is the only stateful piece of the control plane.  It listens
on an ephemeral control port, spawns one ``python -m repro.launch.worker``
process per replica, and walks every worker through the deployment phases in
lock-step::

    hello   worker → supervisor   (identify: replica id, token, pid)
    setup   supervisor → worker   (full spec + time_scale + submit_timeout)
    bound   worker → supervisor   (the replica transport's real address)
    peers   supervisor → worker   (everyone's address — the port map)
    running worker → supervisor   (replica server started)
    run     supervisor → worker   (start the workload clock, everywhere)
    result  worker → supervisor   (latencies, counts, history, split)
    exit    supervisor → worker   (tear down cleanly)

Port allocation is race-free by construction: each worker binds port 0 and
*reports* the address it got, so the supervisor never guesses a free port.

Every phase has a deadline.  A worker that crashes or stalls mid-phase
surfaces as a :class:`~repro.errors.LaunchError` carrying that worker's
stderr tail — never a hang — and triggers teardown of every other process.
Teardown is escalating: ask politely (``exit`` message), then SIGTERM, then
SIGKILL at the ``shutdown_grace_s`` deadline; the per-worker outcome is
recorded in :attr:`Supervisor.worker_exits` so tests (and the result
metadata) can assert that no process was left behind.
"""

from __future__ import annotations

import asyncio
import logging
import os
import secrets
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

import repro

from ..errors import LaunchError
from ..experiment.spec import ExperimentSpec, ProcessesSpec
from ..types import ReplicaId
from .control import read_json, send_json

_LOGGER = logging.getLogger(__name__)

#: How many trailing stderr bytes per worker are kept for error reports.
_STDERR_TAIL = 8192


@dataclass
class _WorkerHandle:
    """Everything the supervisor tracks about one spawned worker."""

    replica_id: ReplicaId
    process: asyncio.subprocess.Process
    connected: asyncio.Future
    reader: Optional[asyncio.StreamReader] = None
    writer: Optional[asyncio.StreamWriter] = None
    stderr_tail: bytearray = field(default_factory=bytearray)

    def tail(self) -> str:
        return self.stderr_tail.decode("utf-8", errors="replace").strip()


class Supervisor:
    """Runs one spec's replicas as separate OS processes and collects results.

    Args:
        spec: The experiment to deploy; ``spec.processes`` (or defaults)
            controls the control-plane host and timeouts.
        time_scale: Same contract as the async backend — delays and durations
            divided on the way in, latencies multiplied back on the way out.
        submit_timeout: Per-command commit timeout inside each worker.
    """

    def __init__(
        self,
        spec: ExperimentSpec,
        time_scale: float = 1.0,
        submit_timeout: float = 30.0,
    ) -> None:
        self.spec = spec
        self.processes = spec.processes or ProcessesSpec()
        self.time_scale = time_scale
        self.submit_timeout = submit_timeout
        self.token = secrets.token_hex(8)
        #: replica id → {"exit": "clean"|"exited"|"sigterm"|"sigkill",
        #: "returncode": int} — filled during teardown; tests assert on it.
        self.worker_exits: dict[ReplicaId, dict[str, Any]] = {}
        self._handles: dict[ReplicaId, _WorkerHandle] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._stderr_tasks: list[asyncio.Task] = []

    # ------------------------------------------------------------------
    # Control listener and spawning
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Accept a worker's ``hello`` and hand the stream to its handle."""
        try:
            hello = await read_json(reader, timeout=30.0, who="a connecting worker")
        except LaunchError as exc:
            _LOGGER.warning("rejecting control connection: %s", exc)
            writer.close()
            return
        rid = hello.get("replica_id")
        handle = self._handles.get(rid)
        if (
            hello.get("type") != "hello"
            or hello.get("token") != self.token
            or handle is None
            or handle.connected.done()
        ):
            _LOGGER.warning("rejecting unexpected hello: %r", hello)
            writer.close()
            return
        handle.reader = reader
        handle.writer = writer
        handle.connected.set_result(None)

    async def _drain_stderr(self, handle: _WorkerHandle) -> None:
        assert handle.process.stderr is not None
        while True:
            chunk = await handle.process.stderr.read(4096)
            if not chunk:
                return
            handle.stderr_tail.extend(chunk)
            if len(handle.stderr_tail) > _STDERR_TAIL:
                del handle.stderr_tail[: len(handle.stderr_tail) - _STDERR_TAIL]

    async def _spawn(self, address: str, rid: ReplicaId) -> _WorkerHandle:
        env = dict(os.environ)
        # The workers must import the same repro tree the supervisor runs,
        # regardless of how it was put on the path (editable install, test
        # run with PYTHONPATH=src, ...).
        package_root = str(Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = os.pathsep.join(
            [package_root, env.get("PYTHONPATH", "")]
        ).rstrip(os.pathsep)
        process = await asyncio.create_subprocess_exec(
            sys.executable,
            "-m",
            "repro.launch.worker",
            "--supervisor",
            address,
            "--replica-id",
            str(rid),
            "--token",
            self.token,
            env=env,
            stdout=asyncio.subprocess.DEVNULL,
            stderr=asyncio.subprocess.PIPE,
        )
        handle = _WorkerHandle(
            replica_id=rid,
            process=process,
            connected=asyncio.get_running_loop().create_future(),
        )
        self._stderr_tasks.append(asyncio.create_task(self._drain_stderr(handle)))
        return handle

    # ------------------------------------------------------------------
    # Phase driving
    # ------------------------------------------------------------------

    def _who(self, rid: ReplicaId) -> str:
        return f"worker {rid}"

    def _fail(self, rid: ReplicaId, why: str) -> LaunchError:
        handle = self._handles.get(rid)
        tail = handle.tail() if handle is not None else ""
        detail = f"{why}"
        if handle is not None and handle.process.returncode is not None:
            detail += f" (process exited with code {handle.process.returncode})"
        if tail:
            detail += f"\n--- worker {rid} stderr ---\n{tail}"
        return LaunchError(detail)

    async def _await_hello(self, handle: _WorkerHandle, timeout: float) -> None:
        rid = handle.replica_id
        waiters = {
            asyncio.ensure_future(handle.connected): "connected",
            asyncio.ensure_future(handle.process.wait()): "died",
        }
        done, pending = await asyncio.wait(
            waiters, timeout=timeout, return_when=asyncio.FIRST_COMPLETED
        )
        for task in pending:
            task.cancel()
        outcomes = {waiters[task] for task in done}
        if "connected" in outcomes:
            return
        if "died" in outcomes:
            raise self._fail(rid, f"worker {rid} exited before connecting")
        raise self._fail(
            rid, f"worker {rid} did not connect within {timeout} s"
        )

    async def _expect_all(
        self, kind: str, timeout: float
    ) -> dict[ReplicaId, dict[str, Any]]:
        """Read one *kind* message from every worker, concurrently."""

        async def one(handle: _WorkerHandle) -> dict[str, Any]:
            assert handle.reader is not None
            message = await read_json(
                handle.reader, timeout=timeout, who=self._who(handle.replica_id)
            )
            if message["type"] == "error":
                detail = message.get("traceback") or message.get("error", "?")
                raise self._fail(
                    handle.replica_id, f"worker {handle.replica_id} failed: {detail}"
                )
            if message["type"] != kind:
                raise self._fail(
                    handle.replica_id,
                    f"expected {kind!r} from worker {handle.replica_id}, "
                    f"got {message['type']!r}",
                )
            return message

        results = await asyncio.gather(
            *(one(handle) for handle in self._handles.values()),
            return_exceptions=True,
        )
        messages: dict[ReplicaId, dict[str, Any]] = {}
        for handle, outcome in zip(self._handles.values(), results):
            if isinstance(outcome, LaunchError):
                raise outcome
            if isinstance(outcome, BaseException):
                raise self._fail(
                    handle.replica_id,
                    f"worker {handle.replica_id} control failure: {outcome}",
                ) from outcome
            messages[handle.replica_id] = outcome
        return messages

    async def _send_all(self, message: dict[str, Any]) -> None:
        for handle in self._handles.values():
            assert handle.writer is not None
            await send_json(handle.writer, message)

    # ------------------------------------------------------------------
    # The deployment itself
    # ------------------------------------------------------------------

    async def run(self) -> dict[ReplicaId, dict[str, Any]]:
        """Deploy, run the workload, and return every worker's result payload.

        Always tears every spawned process down before returning or raising.
        """
        spec = self.spec
        startup = self.processes.startup_timeout_s
        host = self.processes.host
        self._server = await asyncio.start_server(self._handle_connection, host, 0)
        port = self._server.sockets[0].getsockname()[1]
        address = f"{host}:{port}"
        try:
            for rid in spec.cluster_spec().replica_ids:
                self._handles[rid] = await self._spawn(address, rid)
            await asyncio.gather(
                *(self._await_hello(h, startup) for h in self._handles.values())
            )

            spec_dict = spec.to_dict()
            for rid, handle in self._handles.items():
                assert handle.writer is not None
                await send_json(
                    handle.writer,
                    {
                        "type": "setup",
                        "spec": spec_dict,
                        "replica_id": rid,
                        "time_scale": self.time_scale,
                        "submit_timeout": self.submit_timeout,
                    },
                )

            bound = await self._expect_all("bound", startup)
            peers = {str(rid): message["address"] for rid, message in bound.items()}
            await self._send_all({"type": "peers", "peers": peers})
            await self._expect_all("running", startup)

            await self._send_all({"type": "run"})
            # The run phase deadline: the scaled workload window plus the
            # drain timeout plus startup-grade slack for result marshalling.
            run_timeout = (
                (spec.warmup_s + spec.duration_s) / self.time_scale
                + self.submit_timeout
                + startup
            )
            results = await self._expect_all("result", run_timeout)
            return results
        finally:
            await self._teardown()

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    async def _teardown(self) -> None:
        """Escalating teardown: exit message → SIGTERM → SIGKILL.

        Records each worker's outcome in :attr:`worker_exits`; after this
        returns, every spawned process has been reaped (no orphans).
        """
        grace = self.processes.shutdown_grace_s
        for handle in self._handles.values():
            if handle.writer is not None and not handle.writer.is_closing():
                try:
                    await send_json(handle.writer, {"type": "exit"})
                except (ConnectionResetError, LaunchError, OSError):
                    pass

        async def reap(handle: _WorkerHandle) -> None:
            process = handle.process
            rid = handle.replica_id
            try:
                await asyncio.wait_for(process.wait(), grace)
                kind = "clean" if process.returncode == 0 else "exited"
                self.worker_exits[rid] = {
                    "exit": kind, "returncode": process.returncode
                }
                return
            except asyncio.TimeoutError:
                pass
            try:
                process.terminate()
                await asyncio.wait_for(process.wait(), grace)
                self.worker_exits[rid] = {
                    "exit": "sigterm", "returncode": process.returncode
                }
                return
            except asyncio.TimeoutError:
                pass
            except ProcessLookupError:
                self.worker_exits[rid] = {
                    "exit": "exited", "returncode": process.returncode
                }
                return
            try:
                process.kill()
            except ProcessLookupError:
                pass
            await process.wait()
            self.worker_exits[rid] = {
                "exit": "sigkill", "returncode": process.returncode
            }

        if self._handles:
            await asyncio.gather(*(reap(h) for h in self._handles.values()))
        for task in self._stderr_tasks:
            if not task.done():
                task.cancel()
        await asyncio.gather(*self._stderr_tasks, return_exceptions=True)
        self._stderr_tasks.clear()
        for handle in self._handles.values():
            if handle.writer is not None:
                handle.writer.close()
            if not handle.connected.done():
                handle.connected.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None


__all__ = ["Supervisor"]
