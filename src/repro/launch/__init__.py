"""Multi-process deployment of experiment specs over real TCP.

``repro.launch`` is the control plane that turns one
:class:`~repro.experiment.spec.ExperimentSpec` into a set of OS processes:

* :mod:`~repro.launch.worker` — the per-replica entrypoint
  (``python -m repro.launch.worker``) that builds a
  :class:`~repro.runtime.server.ReplicaServer` over a real
  :class:`~repro.net.tcp.TcpTransport` from a serialized spec fragment, runs
  its own site's workload clients, and ships measurements back;
* :class:`~repro.launch.supervisor.Supervisor` — spawns the workers, drives
  the handshake (hello → setup → bound → peers → running → run → result →
  exit) with per-phase timeouts, allocates ports by letting each worker bind
  ephemerally and report back, and guarantees teardown (ask politely, then
  SIGTERM, then SIGKILL — a crashed worker surfaces as a
  :class:`~repro.errors.LaunchError`, never a hang);
* :class:`~repro.launch.backend.ProcessBackend` — the ``proc`` entry in
  :data:`~repro.experiment.deployment.BACKENDS`, reducing the workers'
  payloads to the uniform :class:`~repro.experiment.result.ExperimentResult`.

Composed with ``[sharding]``, every shard group's replicas get their own
processes (``ShardedDeployment`` gathers one supervisor per group), which is
the state-partitioning scaling path the paper proposes — here with real OS
parallelism instead of one event loop.
"""

from .backend import ProcessBackend
from .supervisor import Supervisor

__all__ = ["ProcessBackend", "Supervisor"]
