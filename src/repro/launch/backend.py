"""The ``proc`` deployment backend: one OS process per replica, real TCP.

:class:`ProcessBackend` reads the same :class:`~repro.experiment.spec.
ExperimentSpec` as the sim and async backends and reduces the workers'
shipped payloads (see :mod:`repro.launch.worker`) to the uniform
:class:`~repro.experiment.result.ExperimentResult`.  What differs from the
async backend is *where* things run: every replica server and its site's
workload clients live in their own process, so protocol execution, state
machine application and serialization use real OS parallelism instead of
sharing one event loop.

Like the async backend, wall time is the clock: a ``time_scale`` divides
durations and think times going in and multiplies recorded latencies coming
back out.  Unlike the async backend, the spec's latency matrix is **not**
injected — messages cross the real loopback stack, which is the point — and
fault schedules are rejected outright (killing processes mid-run is the
supervisor's error path, not a workload feature yet).
"""

from __future__ import annotations

import asyncio
from typing import Any, Optional

from ..checker.history import OpHistory, OpRecord
from ..errors import ConfigurationError
from ..metrics.stats import LatencySummary, cdf_points, summarize_micros
from ..types import CommandId, ReplicaId, micros_to_ms
from .supervisor import Supervisor
from ..experiment.result import ExperimentResult, SiteResult
from ..experiment.spec import ExperimentSpec


class ProcessBackend:
    """Runs experiments as one OS process per replica over real TCP.

    Args:
        time_scale: Divide durations and think times by this factor;
            recorded latencies are scaled back into spec-time units.
        submit_timeout: Per-command commit timeout in (unscaled) seconds.
    """

    name = "proc"

    def __init__(self, time_scale: float = 1.0, submit_timeout: float = 30.0) -> None:
        if time_scale <= 0:
            raise ConfigurationError("time_scale must be positive")
        self.time_scale = time_scale
        self.submit_timeout = submit_timeout

    def _check_supported(self, spec: ExperimentSpec) -> None:
        if spec.faults:
            raise ConfigurationError(
                "the proc backend cannot inject fault schedules; run this "
                "spec on the sim or async backend"
            )
        if spec.cpu is not None:
            raise ConfigurationError(
                "the proc backend has no CPU cost model (real processes are "
                "the CPU); remove the [cpu] section or use the sim backend"
            )

    def run(self, spec: ExperimentSpec) -> ExperimentResult:
        return asyncio.run(self.run_in_loop(spec))

    async def run_in_loop(self, spec: ExperimentSpec) -> ExperimentResult:
        """Deploy one spec's processes inside the current event loop.

        Several invocations can be gathered concurrently — each runs its own
        supervisor and worker set — which is how sharded deployments put
        every shard group in its own set of processes.
        """
        self._check_supported(spec)
        loop = asyncio.get_running_loop()
        start_wall = loop.time()
        supervisor = Supervisor(
            spec, time_scale=self.time_scale, submit_timeout=self.submit_timeout
        )
        payloads = await supervisor.run()
        return self._assemble(spec, payloads, supervisor, loop.time() - start_wall)

    # ------------------------------------------------------------------
    # Result assembly
    # ------------------------------------------------------------------

    def _assemble(
        self,
        spec: ExperimentSpec,
        payloads: dict[ReplicaId, dict[str, Any]],
        supervisor: Supervisor,
        wall_clock_s: float,
    ) -> ExperimentResult:
        sites: dict[str, SiteResult] = {}
        replica_metrics: dict[ReplicaId, dict[str, float]] = {}
        history: Optional[OpHistory] = OpHistory() if spec.record_history else None
        apply_orders: dict[ReplicaId, tuple[CommandId, ...]] = {}
        total = 0

        for replica_spec in spec.cluster_spec().replicas:
            rid = replica_spec.replica_id
            payload = payloads[rid]
            latencies = [int(v) for v in payload.get("latencies_us", [])]
            total += len(latencies)
            summary: Optional[LatencySummary] = None
            cdf = None
            if latencies:
                summary = summarize_micros(latencies)
                if replica_spec.site in spec.cdf_sites:
                    cdf = cdf_points([micros_to_ms(v) for v in latencies])
            sites[replica_spec.site] = SiteResult(
                site=replica_spec.site,
                replica_id=rid,
                committed=len(latencies),
                summary=summary,
                cdf_ms=cdf,
            )
            replica_metrics[rid] = {"executed": float(payload.get("executed", 0.0))}
            split = payload.get("split")
            if split is not None:
                to_us = 1_000_000.0 * self.time_scale
                replica_metrics[rid].update(
                    {
                        "queue_wait_mean_us": round(split["queue_wait_s"] * to_us, 1),
                        "protocol_mean_us": round(split["protocol_s"] * to_us, 1),
                        "split_samples": float(split["samples"]),
                    }
                )
            if history is not None and payload.get("history") is not None:
                for record in OpHistory.from_dict(payload["history"]).ops:
                    history.add(record)
                apply_orders[rid] = tuple(
                    CommandId(client, seqno)
                    for client, seqno in payload.get("apply_order", [])
                )

        if history is not None:
            history.record_apply_orders(apply_orders)

        return ExperimentResult(
            name=spec.name,
            protocol=spec.protocol,
            backend=self.name,
            duration_s=spec.duration_s,
            sites=sites,
            total_committed=total,
            throughput_kops=total / spec.duration_s / 1_000.0,
            replica_metrics=replica_metrics,
            metadata={
                "seed": spec.seed,
                "time_scale": self.time_scale,
                "wall_clock_s": round(wall_clock_s, 3),
                # Real loopback TCP carries the messages: neither the spec's
                # latency matrix nor its synthetic jitter is injected.
                "latency_applied": False,
                "jitter_applied": False,
                "host": supervisor.processes.host,
                "workers": {
                    str(rid): dict(outcome)
                    for rid, outcome in sorted(supervisor.worker_exits.items())
                },
            },
            history=history,
        )


__all__ = ["ProcessBackend"]
