"""The per-replica worker process (``python -m repro.launch.worker``).

One worker runs one replica of the experiment as its own OS process: a
:class:`~repro.runtime.server.ReplicaServer` over a real
:class:`~repro.net.tcp.TcpTransport`, plus the workload clients of its own
site (clients are co-located with their replica so client traffic scales
with the process count instead of funnelling through the supervisor).

The worker is driven entirely by the supervisor over the control channel:

1. connect back (with retry) and send ``hello`` (replica id, token, pid);
2. receive ``setup`` — the full serialized spec, this worker's replica id,
   ``time_scale`` and ``submit_timeout``;
3. bind the replica transport on an ephemeral port and report ``bound``
   (bind-then-report makes port allocation race-free by construction);
4. receive ``peers`` (every replica's bound address), start the replica
   server, report ``running``;
5. receive ``run``, play this site's workload for the spec's warmup plus
   duration (scaled), drain, and ship ``result`` — raw spec-time latencies,
   executed counts, the driver's queue-wait/protocol-time split, and (when
   the spec records history) this site's operation history and the
   replica's apply order;
6. receive ``exit`` and stop cleanly.

A failure in any phase is reported as an ``error`` message (with the
traceback) before the worker exits non-zero; SIGTERM at any point tears the
worker down gracefully.  The spec's latency matrix is *not* injected —
message delay in process mode is the real network stack.
"""

from __future__ import annotations

import argparse
import asyncio
import itertools
import logging
import os
import random
import signal
import sys
import traceback
from typing import Any, Optional

from ..checker.history import OpHistory
from ..config import ProtocolConfig
from ..errors import RequestTimeout
from ..experiment.async_backend import AsyncBackend
from ..experiment.spec import ExperimentSpec, ProcessesSpec
from ..metrics.collector import LatencyCollector
from ..net.tcp import TcpTransport
from ..runtime.server import ReplicaServer
from ..types import Command, CommandId, ms_to_micros
from ..workload.apps import payload_factory, state_machine_factory
from .control import connect_with_retry, expect, send_json

_LOGGER = logging.getLogger(__name__)


def _scaled_protocol_config(spec: ExperimentSpec, time_scale: float) -> ProtocolConfig:
    """The spec's protocol config with time-valued knobs in wall-clock units."""
    config = spec.protocol_config()
    return ProtocolConfig(
        leader=config.leader,
        clocktime_interval=max(
            ms_to_micros(1.0), int(config.clocktime_interval / time_scale)
        ),
        wait_for_clock=config.wait_for_clock,
    )


async def _run_workload(
    spec: ExperimentSpec,
    server: ReplicaServer,
    rid: int,
    site: str,
    time_scale: float,
    submit_timeout: float,
) -> dict[str, Any]:
    """Play this site's share of the workload; return the result payload.

    Mirrors the async backend's client model exactly (same scenarios, same
    per-client seeded streams, same commit cutoff) so proc and async results
    are comparable run for run.
    """
    workload = spec.workload
    collector = LatencyCollector(warmup_until=spec.warmup_micros)
    loop = asyncio.get_running_loop()
    start_wall = loop.time()

    def virtual_micros() -> int:
        return int((loop.time() - start_wall) * time_scale * 1_000_000)

    uid = itertools.count(1)
    app_payloads = payload_factory(workload.app, workload.payload_size)
    history = OpHistory() if spec.record_history else None
    # Null-app payloads are a constant; share one bytes object per worker.
    null_payload = bytes(workload.payload_size)

    def make_payload(rng: random.Random) -> bytes:
        if app_payloads is not None:
            return app_payloads(rng)
        return null_payload

    stop = asyncio.Event()
    pipeline_depth = spec.batching.pipeline_depth if spec.batching is not None else 1

    async def run_command(name: str, rng: random.Random) -> None:
        command = Command(CommandId(name, next(uid)), make_payload(rng))
        submitted_at = virtual_micros()
        if history is not None:
            history.invoke(command.command_id, rid, command.payload, submitted_at)
        try:
            output = await server.submit(command, timeout=submit_timeout)
        except RequestTimeout:
            if history is not None:
                history.fail(command.command_id, virtual_micros())
            return
        committed_at = virtual_micros()
        if history is not None:
            history.complete(command.command_id, output, committed_at)
        if committed_at <= spec.total_runtime_micros:
            collector.record_span(rid, submitted_at, committed_at)

    async def client(index: int, think: bool) -> None:
        rng = random.Random(spec.seed * 1_000_003 + rid * 1_009 + index)
        think_min = workload.think_time_min_ms / 1_000.0 / time_scale
        think_max = workload.think_time_max_ms / 1_000.0 / time_scale
        name = f"{spec.name}/{site}/proc{index}"
        in_flight: set[asyncio.Task] = set()
        while not stop.is_set():
            if think and think_max > 0:
                await asyncio.sleep(rng.uniform(think_min, think_max))
            if pipeline_depth == 1:
                await run_command(name, rng)
                continue
            in_flight.add(asyncio.create_task(run_command(name, rng)))
            if len(in_flight) >= pipeline_depth:
                done, in_flight = await asyncio.wait(
                    in_flight, return_when=asyncio.FIRST_COMPLETED
                )
                for task in done:
                    task.result()
        if in_flight:
            await asyncio.gather(*in_flight, return_exceptions=True)

    tasks: list[asyncio.Task] = []
    serves_clients = not (
        workload.scenario == "imbalanced" and site != workload.origin_site
    )
    if serves_clients:
        if workload.scenario == "saturating":
            count, think = workload.outstanding_per_site, False
        else:
            count, think = workload.clients_per_site, True
        for index in range(count):
            tasks.append(asyncio.create_task(client(index, think)))

    await asyncio.sleep((spec.warmup_s + spec.duration_s) / time_scale)
    stop.set()
    if tasks:
        _done, pending = await asyncio.wait(tasks, timeout=submit_timeout)
        for task in pending:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)

    payload: dict[str, Any] = {
        "type": "result",
        "site": site,
        "replica_id": rid,
        "latencies_us": collector.latencies_micros(rid),
        "executed": float(server.replica.executed_count),
        "wall_clock_s": round(loop.time() - start_wall, 3),
    }
    split = server.driver.latency_split()
    if split is not None:
        payload["split"] = split
    if history is not None:
        payload["history"] = history.to_dict()
        payload["apply_order"] = [
            [cid.client, cid.seqno] for cid in server.replica.execution_order
        ]
    return payload


async def run_worker(supervisor: str, replica_id: int, token: str) -> None:
    """Run one worker's full conversation with the supervisor."""
    host, _, port = supervisor.rpartition(":")
    reader, writer = await connect_with_retry(host, int(port), timeout=20.0)
    server: Optional[ReplicaServer] = None
    try:
        await send_json(
            writer,
            {"type": "hello", "replica_id": replica_id, "token": token,
             "pid": os.getpid()},
        )
        setup = await expect(reader, "setup", timeout=60.0, who="supervisor")
        spec = ExperimentSpec.from_dict(setup["spec"])
        time_scale = float(setup["time_scale"])
        submit_timeout = float(setup["submit_timeout"])
        processes = spec.processes or ProcessesSpec()

        # The async backend already knows how to scale clocks and batching
        # windows from spec time to wall time; reuse its rules verbatim.
        scaling = AsyncBackend(time_scale=time_scale, submit_timeout=submit_timeout)
        batching = scaling._scaled_batching(spec)
        clock_factory = scaling._clock_factory(spec)

        transport = TcpTransport(
            replica_id,
            f"{processes.host}:0",
            {},
            batching=batching,
            connect_retries=40,
            connect_backoff_s=0.05,
        )
        await transport.start()
        await send_json(writer, {"type": "bound", "address": transport.bound_address})

        peers = await expect(reader, "peers", timeout=60.0, who="supervisor")
        transport.set_peers({int(r): a for r, a in peers["peers"].items()})

        cluster_spec = spec.cluster_spec()
        site = cluster_spec.replica(replica_id).site
        server = ReplicaServer(
            spec.protocol,
            replica_id,
            cluster_spec,
            state_machine_factory(spec.workload.app)(replica_id),
            transport=transport,
            protocol_config=_scaled_protocol_config(spec, time_scale),
            clock=clock_factory(replica_id) if clock_factory is not None else None,
            batching=batching,
        )
        await server.start()
        await send_json(writer, {"type": "running"})

        await expect(reader, "run", timeout=120.0, who="supervisor")
        result = await _run_workload(
            spec, server, replica_id, site, time_scale, submit_timeout
        )
        await send_json(writer, result)

        await expect(reader, "exit", timeout=120.0, who="supervisor")
    except asyncio.CancelledError:
        _LOGGER.info("worker %s interrupted; shutting down", replica_id)
        raise
    except Exception as exc:
        _LOGGER.error("worker %s failed: %s", replica_id, exc)
        try:
            await send_json(
                writer,
                {"type": "error", "error": str(exc),
                 "traceback": traceback.format_exc()},
            )
        except Exception:  # pragma: no cover - channel already gone
            pass
        raise
    finally:
        if server is not None:
            await server.stop()
        writer.close()


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.launch.worker",
        description="One replica process of a multi-process deployment.",
    )
    parser.add_argument("--supervisor", required=True, help="host:port to report to")
    parser.add_argument("--replica-id", type=int, required=True)
    parser.add_argument("--token", required=True, help="deployment token")
    args = parser.parse_args(argv)
    logging.basicConfig(
        stream=sys.stderr,
        level=logging.WARNING,
        format=f"worker[{args.replica_id}] %(levelname)s %(name)s: %(message)s",
    )

    async def runner() -> int:
        task = asyncio.ensure_future(
            run_worker(args.supervisor, args.replica_id, args.token)
        )
        loop = asyncio.get_running_loop()
        # A SIGTERM from the supervisor is a polite teardown request: cancel
        # the conversation, let the finally blocks stop the server, exit 0.
        loop.add_signal_handler(signal.SIGTERM, task.cancel)
        try:
            await task
            return 0
        except asyncio.CancelledError:
            return 0
        except Exception:
            return 1

    return asyncio.run(runner())


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
