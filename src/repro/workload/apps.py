"""The replicated applications selectable by experiment specs.

One place maps an app name (``kv`` / ``append-log`` / ``null``) to the
per-replica state-machine factory and the client payload factory, so the
simulator and asyncio experiment backends are guaranteed to run the same
workload for the same spec.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from ..kvstore.commands import random_update
from ..kvstore.kv import KVStateMachine
from ..statemachine import AppendLogStateMachine, NullStateMachine, StateMachine
from ..types import ReplicaId

#: App name -> per-replica state machine factory.
STATE_MACHINE_FACTORIES: dict[str, Callable[[ReplicaId], StateMachine]] = {
    "kv": lambda _rid: KVStateMachine(),
    "append-log": lambda _rid: AppendLogStateMachine(),
    "null": lambda _rid: NullStateMachine(),
}


def state_machine_factory(app: str) -> Callable[[ReplicaId], StateMachine]:
    """The per-replica state-machine factory for *app*."""
    return STATE_MACHINE_FACTORIES[app]


def payload_factory(
    app: str, payload_size: int
) -> Optional[Callable[[random.Random], bytes]]:
    """The client payload factory for *app*, or ``None`` for opaque blobs.

    The kv app cannot digest opaque byte blobs; its clients issue random
    updates of the configured value size (the paper's client model).
    """
    if app == "kv":
        return lambda rng: random_update(rng, value_size=payload_size)
    return None


__all__ = ["STATE_MACHINE_FACTORIES", "state_machine_factory", "payload_factory"]
