"""The paper's workload scenarios: balanced, imbalanced, and saturating."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..metrics.collector import LatencyCollector
from ..sim.cluster import SimulatedCluster
from ..types import Micros, ReplicaId
from .generator import ClosedLoopClients, SaturatingClients, WorkloadOptions


@dataclass
class WorkloadHandle:
    """A started workload plus its latency collector."""

    collector: LatencyCollector
    generators: list

    def stop(self) -> None:
        for generator in self.generators:
            generator.stop()


def balanced_workload(
    cluster: SimulatedCluster,
    options: WorkloadOptions = WorkloadOptions(),
    warmup: Micros = 0,
) -> WorkloadHandle:
    """Clients of every replica issue requests simultaneously (Figures 1-4)."""
    collector = LatencyCollector(warmup_until=warmup)
    generators = []
    for replica_id in cluster.spec.replica_ids:
        generator = ClosedLoopClients(cluster, replica_id, options, collector)
        generator.start()
        generators.append(generator)
    return WorkloadHandle(collector, generators)


def imbalanced_workload(
    cluster: SimulatedCluster,
    origin: ReplicaId,
    options: WorkloadOptions = WorkloadOptions(),
    warmup: Micros = 0,
) -> WorkloadHandle:
    """Only one replica serves client requests (Figures 5-6)."""
    collector = LatencyCollector(warmup_until=warmup)
    generator = ClosedLoopClients(cluster, origin, options, collector)
    generator.start()
    return WorkloadHandle(collector, [generator])


def saturating_workload(
    cluster: SimulatedCluster,
    payload_size: int,
    window_per_replica: int = 64,
    replicas: Optional[Sequence[ReplicaId]] = None,
    warmup: Micros = 0,
) -> WorkloadHandle:
    """Saturate every replica with outstanding commands (Figure 8)."""
    collector = LatencyCollector(warmup_until=warmup)
    generators = []
    for replica_id in replicas if replicas is not None else cluster.spec.replica_ids:
        generator = SaturatingClients(
            cluster, replica_id, payload_size, window=window_per_replica, collector=collector
        )
        generator.start()
        generators.append(generator)
    return WorkloadHandle(collector, generators)


__all__ = ["WorkloadHandle", "balanced_workload", "imbalanced_workload", "saturating_workload"]
