"""The paper's workload scenarios: balanced, imbalanced, and saturating.

Besides the scenario-specific helpers, this module hosts the scenario
registry used by the declarative experiment API: :func:`build_workload`
attaches the workload described by a :class:`repro.experiment.WorkloadSpec`
to a simulated cluster, dispatching on the spec's ``scenario`` name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from ..metrics.collector import LatencyCollector
from ..sim.cluster import SimulatedCluster
from ..types import Micros, ReplicaId, ms_to_micros
from .apps import payload_factory as app_payload_factory
from .generator import ClosedLoopClients, SaturatingClients, WorkloadOptions

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (experiment imports us)
    from ..experiment.spec import WorkloadSpec


@dataclass
class WorkloadHandle:
    """A started workload plus its latency collector."""

    collector: LatencyCollector
    generators: list

    def stop(self) -> None:
        for generator in self.generators:
            generator.stop()


def balanced_workload(
    cluster: SimulatedCluster,
    options: WorkloadOptions = WorkloadOptions(),
    warmup: Micros = 0,
) -> WorkloadHandle:
    """Clients of every replica issue requests simultaneously (Figures 1-4)."""
    collector = LatencyCollector(warmup_until=warmup)
    generators = []
    for replica_id in cluster.spec.replica_ids:
        generator = ClosedLoopClients(cluster, replica_id, options, collector)
        generator.start()
        generators.append(generator)
    return WorkloadHandle(collector, generators)


def imbalanced_workload(
    cluster: SimulatedCluster,
    origin: ReplicaId,
    options: WorkloadOptions = WorkloadOptions(),
    warmup: Micros = 0,
) -> WorkloadHandle:
    """Only one replica serves client requests (Figures 5-6)."""
    collector = LatencyCollector(warmup_until=warmup)
    generator = ClosedLoopClients(cluster, origin, options, collector)
    generator.start()
    return WorkloadHandle(collector, [generator])


def saturating_workload(
    cluster: SimulatedCluster,
    payload_size: int,
    window_per_replica: int = 64,
    replicas: Optional[Sequence[ReplicaId]] = None,
    warmup: Micros = 0,
    payload_factory=None,
) -> WorkloadHandle:
    """Saturate every replica with outstanding commands (Figure 8)."""
    collector = LatencyCollector(warmup_until=warmup)
    generators = []
    for replica_id in replicas if replicas is not None else cluster.spec.replica_ids:
        generator = SaturatingClients(
            cluster,
            replica_id,
            payload_size,
            window=window_per_replica,
            collector=collector,
            payload_factory=payload_factory,
        )
        generator.start()
        generators.append(generator)
    return WorkloadHandle(collector, generators)


# ---------------------------------------------------------------------------
# Scenario registry (declarative experiment API)
# ---------------------------------------------------------------------------


def _workload_options(spec: "WorkloadSpec") -> WorkloadOptions:
    return WorkloadOptions(
        clients_per_replica=spec.clients_per_site,
        payload_size=spec.payload_size,
        think_time_min=ms_to_micros(spec.think_time_min_ms),
        think_time_max=ms_to_micros(spec.think_time_max_ms),
        payload_factory=app_payload_factory(spec.app, spec.payload_size),
    )


def _build_balanced(
    cluster: SimulatedCluster, spec: "WorkloadSpec", warmup: Micros
) -> WorkloadHandle:
    return balanced_workload(cluster, _workload_options(spec), warmup=warmup)


def _build_imbalanced(
    cluster: SimulatedCluster, spec: "WorkloadSpec", warmup: Micros
) -> WorkloadHandle:
    origin = cluster.spec.by_site(spec.origin_site).replica_id
    return imbalanced_workload(cluster, origin, _workload_options(spec), warmup=warmup)


def _build_saturating(
    cluster: SimulatedCluster, spec: "WorkloadSpec", warmup: Micros
) -> WorkloadHandle:
    return saturating_workload(
        cluster,
        spec.payload_size,
        window_per_replica=spec.outstanding_per_site,
        warmup=warmup,
        payload_factory=app_payload_factory(spec.app, spec.payload_size),
    )


ScenarioBuilder = Callable[[SimulatedCluster, "WorkloadSpec", Micros], WorkloadHandle]

#: Scenario name -> builder; the experiment backends dispatch through this.
SCENARIO_BUILDERS: dict[str, ScenarioBuilder] = {
    "balanced": _build_balanced,
    "imbalanced": _build_imbalanced,
    "saturating": _build_saturating,
}


def build_workload(
    cluster: SimulatedCluster, spec: "WorkloadSpec", warmup: Micros = 0
) -> WorkloadHandle:
    """Attach the workload described by an experiment spec to *cluster*."""
    try:
        builder = SCENARIO_BUILDERS[spec.scenario]
    except KeyError:
        raise ValueError(
            f"unknown workload scenario {spec.scenario!r}; "
            f"available: {sorted(SCENARIO_BUILDERS)}"
        ) from None
    return builder(cluster, spec, warmup)


__all__ = [
    "WorkloadHandle",
    "balanced_workload",
    "imbalanced_workload",
    "saturating_workload",
    "SCENARIO_BUILDERS",
    "build_workload",
]
