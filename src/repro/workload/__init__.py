"""Workload generators matching the paper's experimental setup.

The latency experiments run 40 closed-loop clients per data center, each with
a uniformly random 0–80 ms think time and 64-byte update commands; the
throughput experiments saturate the replicas with enough outstanding
commands that the CPU becomes the bottleneck.  The generators here reproduce
both setups on top of a :class:`~repro.sim.cluster.SimulatedCluster`.
"""

from .generator import ClosedLoopClients, SaturatingClients, WorkloadOptions
from .scenarios import balanced_workload, imbalanced_workload, saturating_workload

__all__ = [
    "WorkloadOptions",
    "ClosedLoopClients",
    "SaturatingClients",
    "balanced_workload",
    "imbalanced_workload",
    "saturating_workload",
]
