"""Closed-loop and saturating client generators for simulated clusters."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from ..metrics.collector import LatencyCollector
from ..sim.cluster import ReplyEvent, SimulatedCluster
from ..types import Command, CommandId, Micros, ReplicaId, ms_to_micros


@dataclass(frozen=True, slots=True)
class WorkloadOptions:
    """Client behaviour knobs.

    Defaults mirror the paper's latency experiments: 40 clients per replica,
    64-byte commands, think time uniform in [0, 80] ms.

    ``payload_factory`` customises command payloads; it receives the
    simulation's :class:`random.Random` and must return bytes (e.g.
    :func:`repro.kvstore.commands.random_update` for key-value workloads).
    When unset, clients send opaque ``payload_size``-byte blobs.
    """

    clients_per_replica: int = 40
    payload_size: int = 64
    think_time_min: Micros = 0
    think_time_max: Micros = ms_to_micros(80.0)
    payload_factory: Optional[object] = None

    def __post_init__(self) -> None:
        if self.clients_per_replica <= 0:
            raise ValueError("clients_per_replica must be positive")
        if self.payload_size < 0:
            raise ValueError("payload_size must be non-negative")
        if self.think_time_max < self.think_time_min:
            raise ValueError("think_time_max must be >= think_time_min")
        if self.payload_factory is not None and not callable(self.payload_factory):
            raise ValueError("payload_factory must be callable")


class ClosedLoopClients:
    """Closed-loop clients attached to one replica of a simulated cluster.

    Each client keeps exactly one command outstanding: submit, wait for the
    commit reply from the local replica, think for a uniformly random
    duration, submit again.  This is the client model the paper uses for all
    latency experiments.
    """

    _pool_ids = itertools.count(1)

    def __init__(
        self,
        cluster: SimulatedCluster,
        replica_id: ReplicaId,
        options: WorkloadOptions = WorkloadOptions(),
        collector: Optional[LatencyCollector] = None,
        payload_factory=None,
    ) -> None:
        self.cluster = cluster
        self.replica_id = replica_id
        self.options = options
        self.collector = collector
        self.submitted = 0
        self.completed = 0
        self._stopped = False
        self._pool_id = next(self._pool_ids)
        self._payload_factory = payload_factory or options.payload_factory
        self._command_seq = itertools.count(1)
        #: Maps an outstanding command to the client index that issued it.
        self._outstanding: dict[CommandId, int] = {}
        cluster.on_reply(self._on_reply)

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> None:
        """Schedule every client's first request with a random initial offset."""
        self.cluster.start()
        for client_index in range(self.options.clients_per_replica):
            offset = self._think_time()
            self.cluster.env.schedule(
                offset, lambda idx=client_index: self._submit_next(idx)
            )

    def stop(self) -> None:
        """Stop issuing new requests (outstanding ones still complete)."""
        self._stopped = True

    # -- internals ------------------------------------------------------------------

    def _client_name(self, client_index: int) -> str:
        site = self.cluster.spec.replica(self.replica_id).site
        return f"{site}/pool{self._pool_id}/client{client_index}"

    def _think_time(self) -> Micros:
        options = self.options
        if options.think_time_max == options.think_time_min:
            return options.think_time_min
        return self.cluster.env.random.randint(options.think_time_min, options.think_time_max)

    def _make_payload(self) -> bytes:
        if self._payload_factory is None:
            return bytes(self.options.payload_size)
        return self._payload_factory(self.cluster.env.random)

    def _submit_next(self, client_index: int) -> None:
        if self._stopped:
            return
        command = Command(
            CommandId(self._client_name(client_index), next(self._command_seq)),
            self._make_payload(),
            created_at=self.cluster.env.now,
        )
        self._outstanding[command.command_id] = client_index
        if self.collector is not None:
            self.collector.record_submit(command.command_id, self.replica_id, self.cluster.env.now)
        self.submitted += 1
        self.cluster.submit(self.replica_id, command)

    def _on_reply(self, event: ReplyEvent) -> None:
        client_index = self._outstanding.pop(event.command_id, None)
        if client_index is None:
            return
        self.completed += 1
        if self.collector is not None:
            self.collector.record_commit(event.command_id, event.time)
        if not self._stopped:
            self.cluster.env.schedule(
                self._think_time(), lambda idx=client_index: self._submit_next(idx)
            )


class SaturatingClients:
    """Window-based clients that keep a replica saturated (throughput runs).

    Keeps ``window`` commands outstanding at the replica at all times; as
    soon as one commits, another is submitted.  With a CPU model installed,
    this drives the replicas to their processing limit, which is what the
    paper's local-cluster throughput experiment measures.
    """

    _pool_ids = itertools.count(1)

    def __init__(
        self,
        cluster: SimulatedCluster,
        replica_id: ReplicaId,
        payload_size: int,
        window: int = 64,
        collector: Optional[LatencyCollector] = None,
        payload_factory=None,
    ) -> None:
        self.cluster = cluster
        self.replica_id = replica_id
        self.payload_size = payload_size
        self.window = window
        self.collector = collector
        self._payload_factory = payload_factory
        self.submitted = 0
        self.completed = 0
        self._stopped = False
        self._pool_id = next(self._pool_ids)
        self._command_seq = itertools.count(1)
        self._outstanding: set[CommandId] = set()
        cluster.on_reply(self._on_reply)

    def start(self) -> None:
        self.cluster.start()
        for _ in range(self.window):
            self.cluster.env.schedule(0, self._submit_one)

    def stop(self) -> None:
        self._stopped = True

    def _submit_one(self) -> None:
        if self._stopped:
            return
        site = self.cluster.spec.replica(self.replica_id).site
        if self._payload_factory is None:
            payload = bytes(self.payload_size)
        else:
            payload = self._payload_factory(self.cluster.env.random)
        command = Command(
            CommandId(f"{site}/sat{self._pool_id}", next(self._command_seq)),
            payload,
            created_at=self.cluster.env.now,
        )
        self._outstanding.add(command.command_id)
        if self.collector is not None:
            self.collector.record_submit(command.command_id, self.replica_id, self.cluster.env.now)
        self.submitted += 1
        self.cluster.submit(self.replica_id, command)

    def _on_reply(self, event: ReplyEvent) -> None:
        if event.command_id not in self._outstanding:
            return
        self._outstanding.discard(event.command_id)
        self.completed += 1
        if self.collector is not None:
            self.collector.record_commit(event.command_id, event.time)
        if not self._stopped:
            self._submit_one()


__all__ = ["WorkloadOptions", "ClosedLoopClients", "SaturatingClients"]
