"""Deploy an experiment spec on the asyncio runtime.

The asyncio backend runs the very same sans-IO protocol objects as live
services inside one event loop (:class:`~repro.runtime.local.LocalAsyncCluster`),
with the spec's latency matrix injected into message delivery and real
asyncio client tasks playing the workload.  Because wide-area delays at real
scale make wall-clock runs slow, the backend supports a ``time_scale``: all
delays, think times, clock offsets and durations are divided by it, and the
recorded latencies are multiplied back, so the same spec produces results in
the same units as the simulator backend.

Fault schedules run here too: the same :class:`~repro.experiment.spec.FaultSpec`
events that drive the simulator (crash, recover — optionally with rejoin —,
partition/heal, isolate, clock-jump) are scheduled as event-loop timers
against the live cluster, with times divided by the ``time_scale`` like
every other delay.  Fault kinds this backend has no implementation for are
rejected at validation time, never silently dropped.  The CPU cost model
remains simulator-only (the real event loop is the CPU).  A spec's synthetic
``jitter_fraction`` is not injected either — the live event loop contributes
its own scheduling jitter (the result's metadata records
``jitter_applied: False``).
"""

from __future__ import annotations

import asyncio
import itertools
import logging
import random
from typing import Callable, Optional

from ..checker.history import OpHistory
from ..clocks.base import Clock, TimeSource
from ..clocks.physical import DriftingClock, SkewedClock, SystemClock
from ..config import ProtocolConfig
from ..errors import ConfigurationError, RequestTimeout
from ..metrics.collector import LatencyCollector
from ..metrics.stats import LatencySummary
from ..net.latency import LatencyMatrix
from ..runtime.local import LocalAsyncCluster
from ..runtime.server import ReplicaServer
from ..types import Command, CommandId, ReplicaId, ms_to_micros
from ..workload.apps import payload_factory, state_machine_factory
from .result import ExperimentResult, SiteResult
from .spec import ExperimentSpec, FaultSpec

_LOGGER = logging.getLogger(__name__)

#: Fault kinds this backend knows how to inject.  Kinds outside this set are
#: a configuration error, so new FAULT_KINDS entries can never be silently
#: ignored on the live runtime.
ASYNC_FAULT_KINDS: frozenset[str] = frozenset(
    {"crash", "recover", "partition", "isolate", "clock-jump"}
)


def resolve_loop_factory(use_uvloop: bool) -> Optional[Callable[[], asyncio.AbstractEventLoop]]:
    """The event-loop factory to run under, or ``None`` for the stdlib loop.

    ``uvloop`` is an optional dependency; requesting it when the package is
    not importable degrades to the stdlib loop with a warning rather than
    failing the run.  Which loop actually ran is recorded in the result's
    ``metadata["event_loop"]``.
    """
    if not use_uvloop:
        return None
    try:
        import uvloop
    except ImportError:
        _LOGGER.warning(
            "uvloop requested but not installed; running on the stdlib event loop"
        )
        return None
    return uvloop.new_event_loop


class _WallTimeSource(TimeSource):
    """Adapts the asyncio runtime's system clock to the TimeSource interface."""

    def __init__(self) -> None:
        self._clock = SystemClock()

    def true_now(self) -> int:
        return self._clock.now()


def _scaled_matrix(matrix: LatencyMatrix, scale: float) -> LatencyMatrix:
    if scale == 1:
        return matrix
    return LatencyMatrix(
        matrix.sites,
        tuple(tuple(int(delay / scale) for delay in row) for row in matrix.one_way),
    )


class AsyncBackend:
    """Runs experiments as live asyncio services in the current process.

    Args:
        time_scale: Divide every delay and duration by this factor to keep
            wall-clock runtime manageable; recorded latencies are scaled back
            so results stay in simulated-time units.
        submit_timeout: Per-command commit timeout in (unscaled) seconds.
        uvloop: Force the uvloop event loop on (``True``) or off (``False``);
            ``None`` defers to the spec's ``[runtime] uvloop`` setting.
            Requesting uvloop when it is not installed falls back to the
            stdlib loop (see :func:`resolve_loop_factory`).
    """

    name = "async"

    def __init__(
        self,
        time_scale: float = 1.0,
        submit_timeout: float = 30.0,
        uvloop: Optional[bool] = None,
    ) -> None:
        if time_scale <= 0:
            raise ConfigurationError("time_scale must be positive")
        self.time_scale = time_scale
        self.submit_timeout = submit_timeout
        self.uvloop = uvloop

    def loop_factory(
        self, spec: ExperimentSpec
    ) -> Optional[Callable[[], asyncio.AbstractEventLoop]]:
        """The event-loop factory this spec should run under (``None`` = stdlib).

        The constructor's ``uvloop`` override (e.g. the CLI's ``--uvloop``
        flag) wins over the spec's ``[runtime]`` table.
        """
        if self.uvloop is not None:
            use_uvloop = self.uvloop
        else:
            use_uvloop = spec.runtime.uvloop if spec.runtime is not None else False
        return resolve_loop_factory(use_uvloop)

    # ------------------------------------------------------------------
    # Cluster construction
    # ------------------------------------------------------------------

    def _clock_factory(self, spec: ExperimentSpec):
        offsets = spec.clock_offsets()
        drifts = spec.clock_drift_ppm()
        # Clock-jump faults step clocks mid-run, so every replica then needs
        # an adjustable clock even if it starts perfectly synchronized.
        jumpy = any(fault.kind == "clock-jump" for fault in spec.faults)
        if not offsets and not drifts and not jumpy:
            return None
        scale = self.time_scale

        def factory(replica_id: ReplicaId) -> Optional[Clock]:
            offset = int(offsets.get(replica_id, 0) / scale)
            drift = drifts.get(replica_id, 0.0)
            if drift:
                return DriftingClock(_WallTimeSource(), skew=offset, drift_ppm=drift)
            if offset or jumpy:
                return SkewedClock(_WallTimeSource(), skew=offset)
            return None

        return factory

    def build_cluster(self, spec: ExperimentSpec) -> LocalAsyncCluster:
        """Wire the asyncio cluster a spec describes (without workload)."""
        self._check_supported(spec)
        config = spec.protocol_config()
        return LocalAsyncCluster(
            spec.protocol,
            spec.cluster_spec(),
            latency=_scaled_matrix(spec.latency_matrix(), self.time_scale),
            protocol_config=ProtocolConfig(
                leader=config.leader,
                clocktime_interval=max(
                    ms_to_micros(1.0),
                    int(config.clocktime_interval / self.time_scale),
                ),
                wait_for_clock=config.wait_for_clock,
            ),
            state_machine_factory=state_machine_factory(spec.workload.app),
            clock_factory=self._clock_factory(spec),
            batching=self._scaled_batching(spec),
        )

    def _scaled_batching(self, spec: ExperimentSpec):
        """The spec's batching options with the window in wall-clock time.

        ``window_us`` is a spec-time duration like every other delay, so it
        is divided by ``time_scale`` (sizes and depths are dimensionless).
        """
        if spec.batching is None:
            return None
        options = spec.batching.options()
        if options.window_us == 0 or self.time_scale == 1:
            return options
        from ..config import BatchingOptions

        return BatchingOptions(
            max_batch=options.max_batch,
            window_us=max(1, int(options.window_us / self.time_scale)),
            pipeline_depth=options.pipeline_depth,
        )

    def _check_supported(self, spec: ExperimentSpec) -> None:
        unsupported = sorted(
            {fault.kind for fault in spec.faults} - ASYNC_FAULT_KINDS
        )
        if unsupported:
            raise ConfigurationError(
                f"the async backend cannot inject fault kinds {unsupported}; "
                "run this spec on the sim backend"
            )
        if spec.cpu is not None:
            raise ConfigurationError(
                "the async backend has no CPU cost model (the real event loop "
                "is the CPU); remove the [cpu] section or use the sim backend"
            )

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------

    def _fault_actions(
        self, spec: ExperimentSpec, cluster: LocalAsyncCluster
    ) -> list[tuple[float, "callable"]]:
        """(delay-seconds, thunk) pairs implementing the spec's fault schedule."""
        cluster_spec = spec.cluster_spec()
        rid = lambda site: cluster_spec.by_site(site).replica_id
        scale = self.time_scale
        actions: list[tuple[float, "callable"]] = []
        for fault in spec.faults:
            at = fault.at_s / scale
            heal_at = fault.heal_at_s / scale if fault.heal_at_s is not None else None
            if fault.kind == "crash":
                actions.append((at, lambda f=fault: cluster.crash(rid(f.site))))
            elif fault.kind == "recover":
                actions.append(
                    (at, lambda f=fault: cluster.recover(rid(f.site), rejoin=f.rejoin))
                )
            elif fault.kind == "partition":
                actions.append(
                    (at, lambda f=fault: cluster.partition(rid(f.site), rid(f.peer)))
                )
                if heal_at is not None:
                    actions.append(
                        (heal_at, lambda f=fault: cluster.heal(rid(f.site), rid(f.peer)))
                    )
            elif fault.kind == "isolate":
                actions.append((at, lambda f=fault: cluster.isolate(rid(f.site))))
                if heal_at is not None:
                    def _heal_isolation(f: FaultSpec = fault) -> None:
                        isolated = rid(f.site)
                        for other in cluster_spec.replica_ids:
                            if other != isolated:
                                cluster.heal(isolated, other)

                    actions.append((heal_at, _heal_isolation))
            elif fault.kind == "clock-jump":
                delta = int(ms_to_micros(fault.offset_ms) / scale)
                actions.append(
                    (at, lambda f=fault, d=delta: cluster.clock_jump(rid(f.site), d))
                )
            else:  # pragma: no cover - _check_supported validates kinds
                raise AssertionError(f"unhandled fault kind {fault.kind!r}")
        return actions

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run(self, spec: ExperimentSpec) -> ExperimentResult:
        factory = self.loop_factory(spec)
        if factory is None:
            return asyncio.run(self.run_in_loop(spec))
        with asyncio.Runner(loop_factory=factory) as runner:
            return runner.run(self.run_in_loop(spec))

    async def run_in_loop(self, spec: ExperimentSpec) -> ExperimentResult:
        """Run one spec inside the current event loop.

        Several invocations can be gathered concurrently in one loop — each
        builds its own cluster and client tasks — which is how sharded
        deployments run their groups side by side.
        """
        cluster = self.build_cluster(spec)  # validates backend support
        workload = spec.workload
        cluster_spec = spec.cluster_spec()
        collector = LatencyCollector(warmup_until=spec.warmup_micros)
        loop = asyncio.get_running_loop()
        start_wall = loop.time()

        def virtual_micros() -> int:
            # Wall seconds since start, scaled back to spec-time microseconds.
            return int((loop.time() - start_wall) * self.time_scale * 1_000_000)

        uid = itertools.count(1)
        app_payloads = payload_factory(workload.app, workload.payload_size)
        history = OpHistory() if spec.record_history else None
        # Null-app payloads are a constant; one shared bytes object instead
        # of a fresh allocation per command.
        null_payload = bytes(workload.payload_size)

        def make_payload(rng: random.Random) -> bytes:
            if app_payloads is not None:
                return app_payloads(rng)
            return null_payload

        stop = asyncio.Event()
        pipeline_depth = (
            spec.batching.pipeline_depth if spec.batching is not None else 1
        )

        async def run_command(
            server: ReplicaServer, rid: ReplicaId, name: str, rng: random.Random
        ) -> None:
            command = Command(CommandId(name, next(uid)), make_payload(rng))
            submitted_at = virtual_micros()
            if history is not None:
                history.invoke(
                    command.command_id, rid, command.payload, submitted_at
                )
            try:
                output = await server.submit(command, timeout=self.submit_timeout)
            except RequestTimeout:
                if history is not None:
                    history.fail(command.command_id, virtual_micros())
                return
            committed_at = virtual_micros()
            if history is not None:
                history.complete(command.command_id, output, committed_at)
            # Commands draining after the measurement window ended would
            # never have committed on the sim backend (it hard-stops at
            # total_runtime_micros); keep the two backends comparable.  The
            # submit timestamp is in hand across the await, so the span is
            # recorded directly — no per-command collector dict entry.
            if committed_at <= spec.total_runtime_micros:
                collector.record_span(rid, submitted_at, committed_at)

        async def closed_loop_client(
            server: ReplicaServer, rid: ReplicaId, site: str, index: int, think: bool
        ) -> None:
            # Deterministic per-client stream (independent of PYTHONHASHSEED).
            rng = random.Random(spec.seed * 1_000_003 + rid * 1_009 + index)
            think_min = workload.think_time_min_ms / 1_000.0 / self.time_scale
            think_max = workload.think_time_max_ms / 1_000.0 / self.time_scale
            # Scoped by the spec name so concurrent deployments in one loop
            # (sharded runs) never produce colliding client ids.
            name = f"{spec.name}/{site}/async{index}"
            # Loop on the stop event rather than relying on cancellation:
            # Python 3.11's wait_for can swallow a cancellation that races
            # with the commit future resolving, which would leave this loop
            # running (and the run hanging) forever.
            #
            # With pipeline_depth > 1 the client does not await each commit
            # before issuing the next command: up to `depth` submissions stay
            # in flight concurrently (message pipelining).
            in_flight: set[asyncio.Task] = set()
            while not stop.is_set():
                if think and think_max > 0:
                    await asyncio.sleep(rng.uniform(think_min, think_max))
                if pipeline_depth == 1:
                    await run_command(server, rid, name, rng)
                    continue
                in_flight.add(
                    asyncio.create_task(run_command(server, rid, name, rng))
                )
                if len(in_flight) >= pipeline_depth:
                    done, in_flight = await asyncio.wait(
                        in_flight, return_when=asyncio.FIRST_COMPLETED
                    )
                    for task in done:
                        task.result()  # propagate failures like depth == 1
            if in_flight:
                # Drain phase: stop is set, stragglers may be cancelled by
                # the teardown — swallow only that, not real failures.
                await asyncio.gather(*in_flight, return_exceptions=True)

        tasks: list[asyncio.Task] = []
        fault_handles: list[asyncio.TimerHandle] = []
        async with cluster:
            for delay, thunk in self._fault_actions(spec, cluster):
                fault_handles.append(loop.call_later(delay, thunk))
            for replica_spec in cluster_spec.replicas:
                rid = replica_spec.replica_id
                site = replica_spec.site
                if workload.scenario == "imbalanced" and site != workload.origin_site:
                    continue
                server = cluster.servers[rid]
                if workload.scenario == "saturating":
                    count, think = workload.outstanding_per_site, False
                else:
                    count, think = workload.clients_per_site, True
                for index in range(count):
                    tasks.append(
                        asyncio.create_task(
                            closed_loop_client(server, rid, site, index, think)
                        )
                    )
            await asyncio.sleep((spec.warmup_s + spec.duration_s) / self.time_scale)
            stop.set()
            # Faults scheduled past the end of the run (e.g. a heal_at after
            # duration_s) must not fire into the tear-down.
            for handle in fault_handles:
                handle.cancel()
            # Let in-flight submissions drain, then cancel stragglers.
            _done, pending = await asyncio.wait(tasks, timeout=self.submit_timeout)
            for task in pending:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)

            sites: dict[str, SiteResult] = {}
            replica_metrics: dict[ReplicaId, dict[str, float]] = {}
            for replica_spec in cluster_spec.replicas:
                rid = replica_spec.replica_id
                committed = collector.count(rid)
                summary: LatencySummary | None = None
                cdf = None
                if committed:
                    summary = collector.summary(rid)
                    if replica_spec.site in spec.cdf_sites:
                        cdf = collector.cdf_ms(rid)
                sites[replica_spec.site] = SiteResult(
                    site=replica_spec.site,
                    replica_id=rid,
                    committed=committed,
                    summary=summary,
                    cdf_ms=cdf,
                )
                replica_metrics[rid] = {
                    "executed": float(cluster.servers[rid].replica.executed_count),
                }
                split = cluster.servers[rid].driver.latency_split()
                if split is not None:
                    # Wall seconds × time_scale → spec-time microseconds,
                    # like every recorded latency.
                    to_us = 1_000_000.0 * self.time_scale
                    replica_metrics[rid].update(
                        {
                            "queue_wait_mean_us": round(split["queue_wait_s"] * to_us, 1),
                            "protocol_mean_us": round(split["protocol_s"] * to_us, 1),
                            "split_samples": split["samples"],
                        }
                    )
            if history is not None:
                history.record_apply_orders(
                    {
                        rid: tuple(server.replica.execution_order)
                        for rid, server in cluster.servers.items()
                    }
                )

        total = collector.count()
        return ExperimentResult(
            name=spec.name,
            protocol=spec.protocol,
            backend=self.name,
            duration_s=spec.duration_s,
            sites=sites,
            total_committed=total,
            throughput_kops=total / spec.duration_s / 1_000.0,
            replica_metrics=replica_metrics,
            metadata={
                "seed": spec.seed,
                "time_scale": self.time_scale,
                "wall_clock_s": round(loop.time() - start_wall, 3),
                # The spec's synthetic jitter is not injected here: the live
                # event loop contributes its own natural scheduling jitter.
                "jitter_applied": False,
                # Which loop implementation actually ran — "uvloop" when the
                # opt-in took effect, "asyncio" otherwise (including the
                # requested-but-not-installed fallback).
                "event_loop": type(loop).__module__.partition(".")[0],
            },
            history=history,
        )


__all__ = ["ASYNC_FAULT_KINDS", "AsyncBackend", "resolve_loop_factory"]
