"""Deploy an experiment spec on the asyncio runtime.

The asyncio backend runs the very same sans-IO protocol objects as live
services inside one event loop (:class:`~repro.runtime.local.LocalAsyncCluster`),
with the spec's latency matrix injected into message delivery and real
asyncio client tasks playing the workload.  Because wide-area delays at real
scale make wall-clock runs slow, the backend supports a ``time_scale``: all
delays, think times, clock offsets and durations are divided by it, and the
recorded latencies are multiplied back, so the same spec produces results in
the same units as the simulator backend.

Fault schedules and the CPU cost model are simulator-only features; specs
using them are rejected up front.  A spec's synthetic ``jitter_fraction`` is
not injected either — the live event loop contributes its own scheduling
jitter (the result's metadata records ``jitter_applied: False``).
"""

from __future__ import annotations

import asyncio
import itertools
import random
from typing import Optional

from ..clocks.base import Clock, TimeSource
from ..clocks.physical import DriftingClock, SkewedClock, SystemClock
from ..config import ProtocolConfig
from ..errors import ConfigurationError, RequestTimeout
from ..metrics.collector import LatencyCollector
from ..metrics.stats import LatencySummary
from ..net.latency import LatencyMatrix
from ..runtime.local import LocalAsyncCluster
from ..runtime.server import ReplicaServer
from ..types import Command, CommandId, ReplicaId, ms_to_micros
from ..workload.apps import payload_factory, state_machine_factory
from .result import ExperimentResult, SiteResult
from .spec import ExperimentSpec


class _WallTimeSource(TimeSource):
    """Adapts the asyncio runtime's system clock to the TimeSource interface."""

    def __init__(self) -> None:
        self._clock = SystemClock()

    def true_now(self) -> int:
        return self._clock.now()


def _scaled_matrix(matrix: LatencyMatrix, scale: float) -> LatencyMatrix:
    if scale == 1:
        return matrix
    return LatencyMatrix(
        matrix.sites,
        tuple(tuple(int(delay / scale) for delay in row) for row in matrix.one_way),
    )


class AsyncBackend:
    """Runs experiments as live asyncio services in the current process.

    Args:
        time_scale: Divide every delay and duration by this factor to keep
            wall-clock runtime manageable; recorded latencies are scaled back
            so results stay in simulated-time units.
        submit_timeout: Per-command commit timeout in (unscaled) seconds.
    """

    name = "async"

    def __init__(self, time_scale: float = 1.0, submit_timeout: float = 30.0) -> None:
        if time_scale <= 0:
            raise ConfigurationError("time_scale must be positive")
        self.time_scale = time_scale
        self.submit_timeout = submit_timeout

    # ------------------------------------------------------------------
    # Cluster construction
    # ------------------------------------------------------------------

    def _clock_factory(self, spec: ExperimentSpec):
        offsets = spec.clock_offsets()
        drifts = spec.clock_drift_ppm()
        if not offsets and not drifts:
            return None
        scale = self.time_scale

        def factory(replica_id: ReplicaId) -> Optional[Clock]:
            offset = int(offsets.get(replica_id, 0) / scale)
            drift = drifts.get(replica_id, 0.0)
            if drift:
                return DriftingClock(_WallTimeSource(), skew=offset, drift_ppm=drift)
            if offset:
                return SkewedClock(_WallTimeSource(), skew=offset)
            return None

        return factory

    def build_cluster(self, spec: ExperimentSpec) -> LocalAsyncCluster:
        """Wire the asyncio cluster a spec describes (without workload)."""
        self._check_supported(spec)
        config = spec.protocol_config()
        return LocalAsyncCluster(
            spec.protocol,
            spec.cluster_spec(),
            latency=_scaled_matrix(spec.latency_matrix(), self.time_scale),
            protocol_config=ProtocolConfig(
                leader=config.leader,
                clocktime_interval=max(
                    ms_to_micros(1.0),
                    int(config.clocktime_interval / self.time_scale),
                ),
                wait_for_clock=config.wait_for_clock,
            ),
            state_machine_factory=state_machine_factory(spec.workload.app),
            clock_factory=self._clock_factory(spec),
        )

    def _check_supported(self, spec: ExperimentSpec) -> None:
        if spec.faults:
            raise ConfigurationError(
                "the async backend does not support fault schedules; "
                "run this spec on the sim backend"
            )
        if spec.cpu is not None:
            raise ConfigurationError(
                "the async backend has no CPU cost model (the real event loop "
                "is the CPU); remove the [cpu] section or use the sim backend"
            )

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run(self, spec: ExperimentSpec) -> ExperimentResult:
        return asyncio.run(self._run(spec))

    async def _run(self, spec: ExperimentSpec) -> ExperimentResult:
        cluster = self.build_cluster(spec)  # validates backend support
        workload = spec.workload
        cluster_spec = spec.cluster_spec()
        collector = LatencyCollector(warmup_until=spec.warmup_micros)
        loop = asyncio.get_running_loop()
        start_wall = loop.time()

        def virtual_micros() -> int:
            # Wall seconds since start, scaled back to spec-time microseconds.
            return int((loop.time() - start_wall) * self.time_scale * 1_000_000)

        uid = itertools.count(1)
        app_payloads = payload_factory(workload.app, workload.payload_size)

        def make_payload(rng: random.Random) -> bytes:
            if app_payloads is not None:
                return app_payloads(rng)
            return bytes(workload.payload_size)

        stop = asyncio.Event()

        async def closed_loop_client(
            server: ReplicaServer, rid: ReplicaId, site: str, index: int, think: bool
        ) -> None:
            # Deterministic per-client stream (independent of PYTHONHASHSEED).
            rng = random.Random(spec.seed * 1_000_003 + rid * 1_009 + index)
            think_min = workload.think_time_min_ms / 1_000.0 / self.time_scale
            think_max = workload.think_time_max_ms / 1_000.0 / self.time_scale
            name = f"{site}/async{index}"
            # Loop on the stop event rather than relying on cancellation:
            # Python 3.11's wait_for can swallow a cancellation that races
            # with the commit future resolving, which would leave this loop
            # running (and the run hanging) forever.
            while not stop.is_set():
                if think and think_max > 0:
                    await asyncio.sleep(rng.uniform(think_min, think_max))
                command = Command(CommandId(name, next(uid)), make_payload(rng))
                collector.record_submit(command.command_id, rid, virtual_micros())
                try:
                    await server.submit(command, timeout=self.submit_timeout)
                except RequestTimeout:
                    continue
                committed_at = virtual_micros()
                # Commands draining after the measurement window ended would
                # never have committed on the sim backend (it hard-stops at
                # total_runtime_micros); keep the two backends comparable.
                if committed_at <= spec.total_runtime_micros:
                    collector.record_commit(command.command_id, committed_at)

        tasks: list[asyncio.Task] = []
        async with cluster:
            for replica_spec in cluster_spec.replicas:
                rid = replica_spec.replica_id
                site = replica_spec.site
                if workload.scenario == "imbalanced" and site != workload.origin_site:
                    continue
                server = cluster.servers[rid]
                if workload.scenario == "saturating":
                    count, think = workload.outstanding_per_site, False
                else:
                    count, think = workload.clients_per_site, True
                for index in range(count):
                    tasks.append(
                        asyncio.create_task(
                            closed_loop_client(server, rid, site, index, think)
                        )
                    )
            await asyncio.sleep((spec.warmup_s + spec.duration_s) / self.time_scale)
            stop.set()
            # Let in-flight submissions drain, then cancel stragglers.
            _done, pending = await asyncio.wait(tasks, timeout=self.submit_timeout)
            for task in pending:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)

            sites: dict[str, SiteResult] = {}
            replica_metrics: dict[ReplicaId, dict[str, float]] = {}
            for replica_spec in cluster_spec.replicas:
                rid = replica_spec.replica_id
                committed = collector.count(rid)
                summary: LatencySummary | None = None
                cdf = None
                if committed:
                    summary = collector.summary(rid)
                    if replica_spec.site in spec.cdf_sites:
                        cdf = collector.cdf_ms(rid)
                sites[replica_spec.site] = SiteResult(
                    site=replica_spec.site,
                    replica_id=rid,
                    committed=committed,
                    summary=summary,
                    cdf_ms=cdf,
                )
                replica_metrics[rid] = {
                    "executed": float(cluster.servers[rid].replica.executed_count),
                }

        total = collector.count()
        return ExperimentResult(
            name=spec.name,
            protocol=spec.protocol,
            backend=self.name,
            duration_s=spec.duration_s,
            sites=sites,
            total_committed=total,
            throughput_kops=total / spec.duration_s / 1_000.0,
            replica_metrics=replica_metrics,
            metadata={
                "seed": spec.seed,
                "time_scale": self.time_scale,
                "wall_clock_s": round(loop.time() - start_wall, 3),
                # The spec's synthetic jitter is not injected here: the live
                # event loop contributes its own natural scheduling jitter.
                "jitter_applied": False,
            },
        )


__all__ = ["AsyncBackend"]
