"""Backend-agnostic deployment runner for experiment specs.

:class:`Deployment` is the single entry point that turns a declarative
:class:`~repro.experiment.spec.ExperimentSpec` into an
:class:`~repro.experiment.result.ExperimentResult`::

    spec = ExperimentSpec.from_file("examples/specs/fig1_balanced_5.toml")
    result = Deployment(spec).run()                      # simulator
    result = Deployment(spec, backend="async", time_scale=20).run()  # asyncio

Backends are looked up by name in :data:`BACKENDS`; all three ship with the
library (``sim`` — the deterministic discrete-event simulator, ``async`` —
live asyncio services in this process, ``proc`` — one OS process per replica
over real TCP, see :mod:`repro.launch`) and all return the same result
shape.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from ..errors import ConfigurationError
from .async_backend import AsyncBackend
from .result import ExperimentResult
from .sim_backend import SimBackend
from .spec import ExperimentSpec


def _process_backend(**options: Any) -> Any:
    # Imported lazily: repro.launch builds on this package, so a top-level
    # import here would be circular — and most runs never spawn processes.
    from ..launch.backend import ProcessBackend

    return ProcessBackend(**options)


#: Backend name -> factory; factories accept backend-specific options.
BACKENDS: dict[str, Callable[..., Any]] = {
    SimBackend.name: SimBackend,
    AsyncBackend.name: AsyncBackend,
    "proc": _process_backend,
}


def build_backend(backend: str, **options: Any) -> Any:
    """Resolve a backend name in :data:`BACKENDS` and construct it.

    The one place backend names and options are validated — shared by
    :class:`Deployment` and :class:`repro.shard.ShardedDeployment`.
    """
    factory = BACKENDS.get(backend)
    if factory is None:
        raise ConfigurationError(
            f"unknown backend {backend!r}; available: {sorted(BACKENDS)}"
        )
    try:
        return factory(**options)
    except TypeError as exc:
        raise ConfigurationError(
            f"invalid options for the {backend!r} backend: {exc}"
        ) from exc


class Deployment:
    """One experiment spec bound to a backend, ready to run."""

    def __init__(self, spec: ExperimentSpec, backend: str = "sim", **options: Any) -> None:
        self.spec = spec
        self.backend_name = backend
        self.backend = build_backend(backend, **options)

    def run(self) -> ExperimentResult:
        """Deploy, run the workload (and faults), and summarize the run."""
        if self.spec.sharding is not None and self.spec.sharding.shards > 1:
            # Sharded specs fan out to one deployment per shard group; the
            # import is lazy because repro.shard builds on this module.
            from ..shard.deployment import ShardedDeployment

            return ShardedDeployment(
                self.spec, self.backend_name, backend_instance=self.backend
            ).run()
        return self.backend.run(self.spec)


def run_spec(
    spec: ExperimentSpec, backend: str = "sim", **options: Any
) -> ExperimentResult:
    """Convenience: ``Deployment(spec, backend, **options).run()``."""
    return Deployment(spec, backend, **options).run()


def run_comparison(
    spec: ExperimentSpec,
    protocols: Sequence[str],
    backend: str = "sim",
    **options: Any,
) -> dict[str, ExperimentResult]:
    """Run the same experiment once per protocol (the paper's figures)."""
    return {
        protocol: run_spec(spec.with_protocol(protocol), backend, **options)
        for protocol in protocols
    }


__all__ = ["BACKENDS", "Deployment", "build_backend", "run_spec", "run_comparison"]
