"""Declarative experiments: one spec, any backend.

This package is the single entry point for running Clock-RSM experiments:

* :class:`ExperimentSpec` — a frozen, serializable description of a
  deployment (protocol, sites + latency, clock models, workload, faults,
  durations) with ``from_dict``/``to_dict`` and TOML/JSON file loading;
* :class:`Deployment` — binds a spec to a backend (``sim`` or ``async``)
  and runs it;
* :class:`ExperimentResult` — the uniform result shape both backends return.

Example::

    from repro.experiment import Deployment, ExperimentSpec

    spec = ExperimentSpec.from_file("examples/specs/fig1_balanced_5.toml")
    result = Deployment(spec).run()
    print(result.mean_ms("CA"))
"""

from .check import CheckedRun, check_spec
from .deployment import BACKENDS, Deployment, run_comparison, run_spec
from .result import ExperimentResult, SiteResult
from .spec import (
    APPS,
    CLOCK_KINDS,
    FAULT_KINDS,
    PLACEMENTS,
    SCENARIOS,
    BatchingSpec,
    ClockSpec,
    CpuSpec,
    ExperimentSpec,
    FaultSpec,
    ProcessesSpec,
    RuntimeSpec,
    ShardingSpec,
    ShardOverride,
    WorkloadSpec,
)

__all__ = [
    "APPS",
    "CLOCK_KINDS",
    "FAULT_KINDS",
    "PLACEMENTS",
    "SCENARIOS",
    "BACKENDS",
    "BatchingSpec",
    "CheckedRun",
    "ClockSpec",
    "CpuSpec",
    "Deployment",
    "check_spec",
    "ExperimentResult",
    "ExperimentSpec",
    "FaultSpec",
    "ProcessesSpec",
    "RuntimeSpec",
    "ShardingSpec",
    "ShardOverride",
    "SiteResult",
    "WorkloadSpec",
    "run_comparison",
    "run_spec",
]
