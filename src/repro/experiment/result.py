"""The uniform result of one experiment run, backend-agnostic.

Both the simulator backend and the asyncio backend reduce their runs to an
:class:`ExperimentResult`: per-site commit-latency summaries (and optional
CDFs), committed-command counts, aggregate throughput, and per-replica
metrics.  Consumers — the CLI, the bench harness, tests — never need to know
which backend produced a result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..checker.history import OpHistory
from ..metrics.stats import LatencySummary
from ..types import ReplicaId


@dataclass
class SiteResult:
    """Measurements taken at one site (its originating replica)."""

    site: str
    replica_id: ReplicaId
    committed: int
    summary: Optional[LatencySummary] = None
    cdf_ms: Optional[list[tuple[float, float]]] = None

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "site": self.site,
            "replica_id": self.replica_id,
            "committed": self.committed,
        }
        if self.summary is not None:
            data["latency"] = self.summary.as_row()
        if self.cdf_ms is not None:
            data["cdf_ms"] = self.cdf_ms
        return data


@dataclass
class ExperimentResult:
    """What one deployment run measured, in the same shape for all backends."""

    name: str
    protocol: str
    backend: str
    duration_s: float
    sites: dict[str, SiteResult]
    total_committed: int
    throughput_kops: float
    replica_metrics: dict[ReplicaId, dict[str, float]] = field(default_factory=dict)
    metadata: dict[str, Any] = field(default_factory=dict)
    #: Operation history (set when the spec enabled ``record_history``).
    history: Optional[OpHistory] = None
    #: Per-shard results when this is the aggregate of a sharded deployment
    #: (see :mod:`repro.shard`); ``None`` for single-group runs.
    shards: Optional[list["ExperimentResult"]] = None

    # -- latency accessors (mirroring the bench harness result API) --------

    def summary(self, site: str) -> LatencySummary:
        result = self.sites[site].summary
        if result is None:
            raise KeyError(f"no latency samples recorded at {site!r}")
        return result

    def mean_ms(self, site: str) -> float:
        return self.summary(site).mean_ms

    def p95_ms(self, site: str) -> float:
        return self.summary(site).p95_ms

    def measured_sites(self) -> list[str]:
        """Sites with at least one latency sample."""
        return [site for site, r in self.sites.items() if r.summary is not None]

    def average_over_sites(self) -> float:
        values = [r.summary.mean_ms for r in self.sites.values() if r.summary is not None]
        if not values:
            raise ValueError(f"experiment {self.name!r} recorded no latency samples")
        return sum(values) / len(values)

    def highest_over_sites(self) -> float:
        values = [r.summary.mean_ms for r in self.sites.values() if r.summary is not None]
        if not values:
            raise ValueError(f"experiment {self.name!r} recorded no latency samples")
        return max(values)

    def latency_split(self) -> Optional[dict[str, float]]:
        """The queue-wait vs protocol-time split, averaged over replicas.

        Backends that instrument their drivers (async, proc) report
        per-replica ``queue_wait_mean_us`` / ``protocol_mean_us`` /
        ``split_samples`` metrics; this reduces them to one sample-weighted
        aggregate, or ``None`` when the backend recorded no split (sim).
        """
        queue_total = protocol_total = samples = 0.0
        for metrics in self.replica_metrics.values():
            n = metrics.get("split_samples", 0.0)
            if n <= 0:
                continue
            queue_total += metrics.get("queue_wait_mean_us", 0.0) * n
            protocol_total += metrics.get("protocol_mean_us", 0.0) * n
            samples += n
        if samples == 0:
            return None
        return {
            "queue_wait_mean_us": round(queue_total / samples, 1),
            "protocol_mean_us": round(protocol_total / samples, 1),
            "samples": samples,
        }

    # -- reporting ---------------------------------------------------------

    def per_site_rows(self) -> list[dict[str, Any]]:
        """Rows for :func:`repro.bench.reporting.format_table`."""
        rows = []
        for site, result in self.sites.items():
            row: dict[str, Any] = {"site": site, "committed": result.committed}
            if result.summary is not None:
                row["mean_ms"] = round(result.summary.mean_ms, 1)
                row["p95_ms"] = round(result.summary.p95_ms, 1)
            rows.append(row)
        return rows

    def to_dict(self) -> dict[str, Any]:
        data = {
            "name": self.name,
            "protocol": self.protocol,
            "backend": self.backend,
            "duration_s": self.duration_s,
            "total_committed": self.total_committed,
            "throughput_kops": round(self.throughput_kops, 3),
            "sites": {site: result.to_dict() for site, result in self.sites.items()},
            "replica_metrics": {
                str(rid): metrics for rid, metrics in self.replica_metrics.items()
            },
            "metadata": self.metadata,
        }
        if self.history is not None:
            # A size summary only; OpHistory.to_dict() serializes full events.
            data["history"] = {
                "ops": len(self.history),
                "completed": self.history.count("ok"),
                "pending": self.history.count("pending"),
                "failed": self.history.count("fail"),
            }
        if self.shards is not None:
            data["shards"] = [shard.to_dict() for shard in self.shards]
        return data


__all__ = ["SiteResult", "ExperimentResult"]
